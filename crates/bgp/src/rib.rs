//! Routing Information Bases: Adj-RIB-In, Loc-RIB, Adj-RIB-Out.
//!
//! vBGP's memory behaviour — the subject of the paper's Figure 6a — is
//! dominated by these structures: the router keeps every route from every
//! neighbor (Adj-RIB-In), and per-interconnection forwarding state on top.
//! [`route_memory_bytes`] reports the same accounting the paper plots.

use std::collections::{BTreeMap, BTreeSet};
use std::net::IpAddr;
use std::sync::Arc;

use crate::attrs::PathAttributes;
use crate::trie::PrefixTrie;
use crate::types::{PathId, Prefix, RouterId};

/// Identifies a configured peer within a [`crate::speaker::Speaker`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PeerId(pub u32);

/// Where a route came from, with the fields the decision process needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteSource {
    /// Locally originated (networks we inject).
    Local,
    /// Learned from a peer.
    Peer {
        /// The peer it came from.
        peer: PeerId,
        /// True for eBGP, false for iBGP.
        ebgp: bool,
        /// Peer's router id (decision tie-break).
        router_id: RouterId,
        /// Peer's transport address (final tie-break).
        addr: IpAddr,
    },
}

impl RouteSource {
    /// Whether the route was learned over eBGP.
    pub fn is_ebgp(&self) -> bool {
        matches!(self, RouteSource::Peer { ebgp: true, .. })
    }

    /// The peer id, if any.
    pub fn peer(&self) -> Option<PeerId> {
        match self {
            RouteSource::Peer { peer, .. } => Some(*peer),
            RouteSource::Local => None,
        }
    }
}

/// A route: prefix + path id + attributes + provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Route {
    /// Destination prefix.
    pub prefix: Prefix,
    /// ADD-PATH id it was received with (0 on plain sessions).
    pub path_id: PathId,
    /// Path attributes, shared via the speaker's hash-consing
    /// [`crate::attrs::AttrStore`]: every RIB holding the same attribute
    /// set points at one allocation (the Fig. 6a memory lever).
    pub attrs: Arc<PathAttributes>,
    /// Provenance.
    pub source: RouteSource,
    /// Arrival order stamp: lower = older (decision prefers older routes to
    /// damp oscillation, a common BGP implementation behaviour).
    pub stamp: u64,
}

impl Route {
    /// Mutable access to the attributes, copy-on-write: if the set is
    /// shared (interned), it is cloned first so other holders are
    /// untouched. The result is un-interned; re-intern it before storing
    /// back into a RIB.
    pub fn attrs_mut(&mut self) -> &mut PathAttributes {
        Arc::make_mut(&mut self.attrs)
    }
}

/// Key identifying one path within a RIB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RouteKey {
    /// Source peer (`None` = local origination).
    pub peer: Option<PeerId>,
    /// ADD-PATH id on that session.
    pub path_id: PathId,
}

/// Per-peer Adj-RIB-In: every route the peer has advertised and not
/// withdrawn, keyed by (prefix, path id).
#[derive(Default)]
pub struct AdjRibIn {
    routes: PrefixTrie<BTreeMap<PathId, Route>>,
    /// Count of currently held paths (not prefixes).
    pub path_count: usize,
    /// Routes retained from a down session (graceful-restart-style
    /// retention): still valid for decision, but swept unless the peer
    /// re-announces them before the retention deadline.
    stale: BTreeSet<(Prefix, PathId)>,
}

impl AdjRibIn {
    /// Empty RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert or replace; returns the displaced route. A (re-)announcement
    /// refreshes any stale mark on the path.
    pub fn insert(&mut self, route: Route) -> Option<Route> {
        self.stale.remove(&(route.prefix, route.path_id));
        let map = match self.routes.get_mut(&route.prefix) {
            Some(m) => m,
            None => {
                self.routes.insert(route.prefix, BTreeMap::new());
                self.routes.get_mut(&route.prefix).unwrap()
            }
        };
        let old = map.insert(route.path_id, route);
        if old.is_none() {
            self.path_count += 1;
        }
        old
    }

    /// Remove one path; returns it if present.
    pub fn remove(&mut self, prefix: &Prefix, path_id: PathId) -> Option<Route> {
        self.stale.remove(&(*prefix, path_id));
        let map = self.routes.get_mut(prefix)?;
        let old = map.remove(&path_id);
        if old.is_some() {
            self.path_count -= 1;
            if map.is_empty() {
                self.routes.remove(prefix);
            }
        }
        old
    }

    /// Remove every path for a prefix (plain-session implicit withdraw).
    pub fn remove_prefix(&mut self, prefix: &Prefix) -> Vec<Route> {
        match self.routes.remove(prefix) {
            Some(map) => {
                self.path_count -= map.len();
                for pid in map.keys() {
                    self.stale.remove(&(*prefix, *pid));
                }
                map.into_values().collect()
            }
            None => Vec::new(),
        }
    }

    /// Mark every held path stale (session went down with retention).
    pub fn mark_all_stale(&mut self) {
        self.stale = self
            .routes
            .iter()
            .flat_map(|(p, m)| m.keys().map(move |pid| (p, *pid)))
            .collect();
    }

    /// Remove and return every still-stale path (retention deadline, or
    /// End-of-RIB after re-establishment).
    pub fn sweep_stale(&mut self) -> Vec<Route> {
        let keys: Vec<(Prefix, PathId)> = std::mem::take(&mut self.stale).into_iter().collect();
        keys.iter()
            .filter_map(|(p, pid)| self.remove(p, *pid))
            .collect()
    }

    /// Number of paths currently marked stale.
    pub fn stale_count(&self) -> usize {
        self.stale.len()
    }

    /// Whether a specific path is marked stale.
    pub fn is_stale(&self, prefix: &Prefix, path_id: PathId) -> bool {
        self.stale.contains(&(*prefix, path_id))
    }

    /// All paths for a prefix.
    pub fn paths(&self, prefix: &Prefix) -> impl Iterator<Item = &Route> {
        self.routes.get(prefix).into_iter().flat_map(|m| m.values())
    }

    /// Iterate over every route.
    pub fn iter(&self) -> impl Iterator<Item = &Route> {
        self.routes.iter().flat_map(|(_, m)| m.values())
    }

    /// Drain the whole table (session reset).
    pub fn clear(&mut self) -> Vec<Route> {
        let mut out = Vec::with_capacity(self.path_count);
        let prefixes: Vec<Prefix> = self.routes.iter().map(|(p, _)| p).collect();
        for p in prefixes {
            out.extend(self.remove_prefix(&p));
        }
        out
    }

    /// Number of prefixes present.
    pub fn prefix_count(&self) -> usize {
        self.routes.len()
    }
}

/// The Loc-RIB: all decision candidates per prefix, best first.
#[derive(Default)]
pub struct LocRib {
    entries: PrefixTrie<Vec<Route>>,
    /// Total candidate paths held.
    pub path_count: usize,
}

impl LocRib {
    /// Empty Loc-RIB.
    pub fn new() -> Self {
        Self::default()
    }

    /// Replace the candidate set for a prefix (already decision-sorted,
    /// best first). An empty set removes the prefix. Returns the previous
    /// best and the new best.
    pub fn set_candidates(
        &mut self,
        prefix: Prefix,
        sorted: Vec<Route>,
    ) -> (Option<Route>, Option<Route>) {
        let old_best = self.entries.get(&prefix).and_then(|v| v.first()).cloned();
        if let Some(old) = self.entries.get(&prefix) {
            self.path_count -= old.len();
        }
        let new_best = sorted.first().cloned();
        if sorted.is_empty() {
            self.entries.remove(&prefix);
        } else {
            self.path_count += sorted.len();
            self.entries.insert(prefix, sorted);
        }
        (old_best, new_best)
    }

    /// Best route for a prefix.
    pub fn best(&self, prefix: &Prefix) -> Option<&Route> {
        self.entries.get(prefix).and_then(|v| v.first())
    }

    /// All candidates for a prefix, best first.
    pub fn candidates(&self, prefix: &Prefix) -> &[Route] {
        self.entries.get(prefix).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Longest-prefix-match forwarding lookup on best routes.
    pub fn lookup(&self, addr: IpAddr) -> Option<&Route> {
        self.entries.lookup(addr).and_then(|(_, v)| v.first())
    }

    /// Iterate `(prefix, candidates)`.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &Vec<Route>)> {
        self.entries.iter()
    }

    /// Number of prefixes present.
    pub fn prefix_count(&self) -> usize {
        self.entries.len()
    }
}

/// Bytes of one attribute-set allocation: the `PathAttributes` struct plus
/// its owned heap (AS-path segments, communities, unknown attrs). With
/// interning this is paid once per *distinct* attribute set, however many
/// routes share it.
pub fn attr_body_bytes(attrs: &PathAttributes) -> usize {
    use std::mem::size_of;
    let mut bytes = size_of::<PathAttributes>();
    bytes += attrs
        .as_path
        .segments
        .iter()
        .map(|s| {
            let v = match s {
                crate::attrs::AsPathSegment::Sequence(v) | crate::attrs::AsPathSegment::Set(v) => v,
            };
            size_of::<crate::types::Asn>() * v.len() + 24
        })
        .sum::<usize>();
    bytes += attrs.communities.len() * 4;
    bytes += attrs.large_communities.len() * 12;
    bytes += attrs
        .unknown
        .iter()
        .map(|u| u.value.len() + 24)
        .sum::<usize>();
    bytes
}

/// Per-route bytes excluding the (possibly shared) attribute body: the
/// `Route` struct itself plus trie node + map entry overhead.
pub fn route_overhead_bytes() -> usize {
    std::mem::size_of::<Route>() + 48
}

/// Approximate heap bytes used by one route — the unit of the paper's
/// Fig. 6a memory accounting (they measure ~327 B/route in BIRD). This is
/// the *unshared* accounting: each route is charged its full attribute
/// body, as if attributes were stored inline per route. Interned
/// accounting (see `Speaker::rib_memory_bytes`) charges each distinct
/// attribute allocation once.
pub fn route_memory_bytes(route: &Route) -> usize {
    route_overhead_bytes() + attr_body_bytes(&route.attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::types::{prefix, Asn};

    fn route(p: &str, path_id: PathId, peer: u32) -> Route {
        Route {
            prefix: prefix(p),
            path_id,
            attrs: PathAttributes {
                as_path: AsPath::from_asns(&[Asn(peer)]),
                next_hop: Some("10.0.0.1".parse().unwrap()),
                ..Default::default()
            }
            .into(),
            source: RouteSource::Peer {
                peer: PeerId(peer),
                ebgp: true,
                router_id: RouterId(peer),
                addr: "10.0.0.1".parse().unwrap(),
            },
            stamp: 0,
        }
    }

    #[test]
    fn adj_in_insert_replace_remove() {
        let mut rib = AdjRibIn::new();
        assert!(rib.insert(route("10.0.0.0/8", 1, 7)).is_none());
        assert!(rib.insert(route("10.0.0.0/8", 2, 7)).is_none());
        assert_eq!(rib.path_count, 2);
        assert_eq!(rib.prefix_count(), 1);
        // Replace path 1.
        assert!(rib.insert(route("10.0.0.0/8", 1, 7)).is_some());
        assert_eq!(rib.path_count, 2);
        assert!(rib.remove(&prefix("10.0.0.0/8"), 1).is_some());
        assert_eq!(rib.path_count, 1);
        assert!(rib.remove(&prefix("10.0.0.0/8"), 1).is_none());
        let drained = rib.remove_prefix(&prefix("10.0.0.0/8"));
        assert_eq!(drained.len(), 1);
        assert_eq!(rib.path_count, 0);
        assert_eq!(rib.prefix_count(), 0);
    }

    #[test]
    fn adj_in_clear() {
        let mut rib = AdjRibIn::new();
        for i in 0..10 {
            rib.insert(route(&format!("10.{i}.0.0/16"), 0, 1));
        }
        let drained = rib.clear();
        assert_eq!(drained.len(), 10);
        assert_eq!(rib.path_count, 0);
        assert!(rib.iter().next().is_none());
    }

    #[test]
    fn stale_marking_refresh_and_sweep() {
        let mut rib = AdjRibIn::new();
        rib.insert(route("10.0.0.0/8", 1, 7));
        rib.insert(route("10.1.0.0/16", 1, 7));
        rib.insert(route("10.1.0.0/16", 2, 7));
        rib.mark_all_stale();
        assert_eq!(rib.stale_count(), 3);
        assert!(rib.is_stale(&prefix("10.0.0.0/8"), 1));
        // Re-announcement refreshes one path; explicit withdraw drops one.
        rib.insert(route("10.1.0.0/16", 1, 7));
        assert!(!rib.is_stale(&prefix("10.1.0.0/16"), 1));
        rib.remove(&prefix("10.1.0.0/16"), 2);
        assert_eq!(rib.stale_count(), 1);
        // Sweep removes only what is still stale.
        let swept = rib.sweep_stale();
        assert_eq!(swept.len(), 1);
        assert_eq!(swept[0].prefix, prefix("10.0.0.0/8"));
        assert_eq!(rib.path_count, 1);
        assert_eq!(rib.stale_count(), 0);
        assert!(rib.sweep_stale().is_empty());
    }

    #[test]
    fn loc_rib_best_and_lookup() {
        let mut rib = LocRib::new();
        let best = route("10.0.0.0/8", 1, 1);
        let backup = route("10.0.0.0/8", 2, 2);
        let (old, new) =
            rib.set_candidates(prefix("10.0.0.0/8"), vec![best.clone(), backup.clone()]);
        assert!(old.is_none());
        assert_eq!(new.as_ref(), Some(&best));
        assert_eq!(rib.best(&prefix("10.0.0.0/8")), Some(&best));
        assert_eq!(rib.candidates(&prefix("10.0.0.0/8")).len(), 2);
        assert_eq!(rib.path_count, 2);
        let found = rib.lookup("10.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(found, &best);
        // Withdraw everything.
        let (old, new) = rib.set_candidates(prefix("10.0.0.0/8"), vec![]);
        assert_eq!(old, Some(best));
        assert!(new.is_none());
        assert_eq!(rib.path_count, 0);
        assert!(rib.lookup("10.1.2.3".parse().unwrap()).is_none());
    }

    #[test]
    fn memory_accounting_scales_with_attributes() {
        let small = route("10.0.0.0/8", 1, 1);
        let mut big = small.clone();
        let mut big_attrs = (*big.attrs).clone();
        big_attrs.as_path = AsPath::from_asns(&[Asn(1); 50]);
        big_attrs.communities = vec![crate::types::Community(1); 20];
        big.attrs = big_attrs.into();
        assert!(route_memory_bytes(&big) > route_memory_bytes(&small));
        // Sanity: the paper reports ~327 B/route for BIRD; ours should be
        // the same order of magnitude for a plain route.
        let b = route_memory_bytes(&small);
        assert!((100..2000).contains(&b), "bytes/route = {b}");
    }

    #[test]
    fn route_source_helpers() {
        let r = route("10.0.0.0/8", 0, 3);
        assert!(r.source.is_ebgp());
        assert_eq!(r.source.peer(), Some(PeerId(3)));
        assert!(!RouteSource::Local.is_ebgp());
        assert_eq!(RouteSource::Local.peer(), None);
    }
}
