//! The BGP speaker: sessions + RIBs + policy + decision process.
//!
//! This is the from-scratch equivalent of the BIRD daemon in the paper's
//! deployment. It is sans-IO and synchronous: the embedding feeds it
//! transport notifications, received bytes and timer expirations, and it
//! returns encoded bytes to transmit plus structural events (session
//! up/down, routes learned/withdrawn, timers to arm).
//!
//! Two advertisement modes exist per peer:
//!
//! * [`AdvertiseMode::BestOnly`] — standard BGP: advertise only the
//!   decision-process winner (the visibility limitation of §2.2.2).
//! * [`AdvertiseMode::AllPaths`] — advertise every Loc-RIB candidate with a
//!   distinct ADD-PATH id. This is what vBGP uses toward experiments
//!   (§3.2.1), with per-neighbor next-hop rewriting layered on via generated
//!   export policies.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::IpAddr;
use std::sync::Arc;

use peering_obs::{EventKind as ObsEvent, Histogram, Obs};

use crate::attrs::{AttrStore, PathAttributes};
use crate::decision::sort_candidates;
use crate::fsm::{FsmAction, FsmConfig, FsmEvent, FsmState, SessionFsm, TimerConfig, TimerKind};
use crate::message::{
    CodecError, Message, NotificationMsg, SessionCodecCtx, UpdateMsg, MAX_MESSAGE_LEN,
};
use crate::policy::Policy;
use crate::rib::{AdjRibIn, LocRib, PeerId, Route, RouteSource};
use crate::trie::PrefixTrie;
use crate::types::{Asn, PathId, Prefix, RouterId};

pub use crate::rib::PeerId as SpeakerPeerId;

/// Speaker-wide configuration.
#[derive(Debug, Clone)]
pub struct SpeakerConfig {
    /// Local ASN.
    pub asn: Asn,
    /// Local BGP identifier.
    pub router_id: RouterId,
}

/// How routes are advertised to a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdvertiseMode {
    /// Only the best path per prefix.
    BestOnly,
    /// Every Loc-RIB candidate, with ADD-PATH ids.
    AllPaths,
}

/// Per-peer configuration.
#[derive(Debug, Clone)]
pub struct PeerConfig {
    /// The peer's ASN.
    pub remote_asn: Asn,
    /// The peer's transport address (decision tie-break; diagnostics).
    pub remote_addr: IpAddr,
    /// Our address on this session; default next-hop for eBGP exports.
    pub local_addr: IpAddr,
    /// Proposed hold time (seconds).
    pub hold_time: u16,
    /// Negotiate ADD-PATH.
    pub add_path: bool,
    /// Passive transport establishment.
    pub passive: bool,
    /// Advertisement mode.
    pub mode: AdvertiseMode,
    /// Import policy (applied to routes learned from this peer).
    pub import: Policy,
    /// Export policy (applied to routes advertised to this peer).
    pub export: Policy,
    /// Accept routes whose AS path contains our own ASN (normally a loop).
    pub allow_own_asn_in: bool,
    /// Do not apply next-hop-self on eBGP export (BIRD's
    /// `next hop keep`): required by vBGP so rewritten virtual next hops
    /// survive export to experiments (§3.2.2).
    pub next_hop_unchanged: bool,
    /// Route-server transparency: do not prepend our ASN on eBGP export
    /// (IXP route servers are not part of the data path and stay out of
    /// the AS path — paper §4.2's multilateral peering).
    pub transparent: bool,
    /// Connect-retry timing (backoff, jitter, idle-hold damping).
    pub timers: TimerConfig,
    /// Route retention on session loss, in seconds. Zero (the default)
    /// flushes the Adj-RIB-In immediately; non-zero keeps the routes,
    /// marked stale, until the peer re-announces or replaces them, the
    /// re-established session's End-of-RIB arrives, or this deadline
    /// sweeps the leftovers — graceful-restart-style damping so a brief
    /// session flap does not ripple withdrawals platform-wide.
    pub retention_secs: u16,
}

impl PeerConfig {
    /// A standard eBGP peer with accept-all policies.
    pub fn ebgp(remote_asn: Asn, remote_addr: IpAddr, local_addr: IpAddr) -> Self {
        PeerConfig {
            remote_asn,
            remote_addr,
            local_addr,
            hold_time: 90,
            add_path: false,
            passive: false,
            mode: AdvertiseMode::BestOnly,
            import: Policy::accept_all(),
            export: Policy::accept_all(),
            allow_own_asn_in: false,
            next_hop_unchanged: false,
            transparent: false,
            timers: TimerConfig::default(),
            retention_secs: 0,
        }
    }

    /// Builder: route-server transparency (no ASN prepend on export).
    pub fn with_transparent(mut self) -> Self {
        self.transparent = true;
        self
    }

    /// Builder: keep next hops unchanged on eBGP export.
    pub fn with_next_hop_unchanged(mut self) -> Self {
        self.next_hop_unchanged = true;
        self
    }

    /// Builder: negotiate ADD-PATH and advertise all paths (vBGP's
    /// experiment-facing configuration).
    pub fn with_all_paths(mut self) -> Self {
        self.add_path = true;
        self.mode = AdvertiseMode::AllPaths;
        self
    }

    /// Builder: passive open.
    pub fn with_passive(mut self) -> Self {
        self.passive = true;
        self
    }

    /// Builder: import policy.
    pub fn with_import(mut self, import: Policy) -> Self {
        self.import = import;
        self
    }

    /// Builder: export policy.
    pub fn with_export(mut self, export: Policy) -> Self {
        self.export = export;
        self
    }

    /// Builder: ADD-PATH negotiation without all-paths advertisement.
    pub fn with_add_path(mut self) -> Self {
        self.add_path = true;
        self
    }

    /// Builder: connect-retry timing policy.
    pub fn with_timers(mut self, timers: TimerConfig) -> Self {
        self.timers = timers;
        self
    }

    /// Builder: retain routes for `secs` seconds after session loss.
    pub fn with_retention(mut self, secs: u16) -> Self {
        self.retention_secs = secs;
        self
    }
}

/// Counters per peer (for tests, benches and the scalability harness).
#[derive(Debug, Clone, Copy, Default)]
pub struct PeerStats {
    /// Messages decoded.
    pub msgs_in: u64,
    /// Messages sent.
    pub msgs_out: u64,
    /// UPDATEs received.
    pub updates_in: u64,
    /// UPDATEs sent.
    pub updates_out: u64,
    /// Routes rejected by import policy.
    pub import_rejected: u64,
    /// Routes rejected by AS-path loop detection.
    pub loop_rejected: u64,
    /// Export-policy suppressions toward this peer (each time a Loc-RIB
    /// candidate was withheld by the session's export policy — the
    /// valley-free enforcement surface of the synthetic internet).
    pub export_rejected: u64,
    /// Codec errors on this session.
    pub codec_errors: u64,
    /// ADD-PATH re-announcements that replaced an already-held
    /// (prefix, path-id) entry in the Adj-RIB-In.
    pub addpath_dups: u64,
}

/// Per-peer dirty set of advertisements queued for the next flush. The
/// Adj-RIB-Out is updated eagerly at diff time; the wire lags until
/// [`Speaker`] flushes at the end of the public entry point, so N changes
/// to one prefix within a burst collapse into at most one emission.
#[derive(Debug, Default)]
struct PendingAdverts {
    /// (prefix, export path-id) → attributes to announce. Keys here are
    /// never simultaneously in `withdraw`.
    announce: BTreeMap<(Prefix, PathId), Arc<PathAttributes>>,
    /// (prefix, export path-id) pairs to withdraw.
    withdraw: BTreeSet<(Prefix, PathId)>,
}

impl PendingAdverts {
    fn is_empty(&self) -> bool {
        self.announce.is_empty() && self.withdraw.is_empty()
    }

    fn clear(&mut self) {
        self.announce.clear();
        self.withdraw.clear();
    }
}

struct Peer {
    cfg: PeerConfig,
    fsm: SessionFsm,
    adj_in: AdjRibIn,
    adj_out: PrefixTrie<BTreeMap<PathId, Arc<PathAttributes>>>,
    rx_buf: Vec<u8>,
    /// Stable export path-id per Loc-RIB route key.
    export_ids: HashMap<(Option<PeerId>, PathId), PathId>,
    next_export_id: PathId,
    pending: PendingAdverts,
    stats: PeerStats,
}

/// Structural events produced by the speaker.
#[derive(Debug, Clone, PartialEq)]
pub enum SpeakerEvent {
    /// Initiate the transport toward this peer.
    TransportOpen(PeerId),
    /// Close the transport.
    TransportClose(PeerId),
    /// Arm (or re-arm) a timer for `secs` seconds.
    ArmTimer(PeerId, TimerKind, u16),
    /// Cancel a timer.
    StopTimer(PeerId, TimerKind),
    /// The session reached Established.
    SessionUp(PeerId),
    /// The session went down.
    SessionDown(PeerId, &'static str),
    /// A route passed import policy and entered the Adj-RIB-In.
    RouteLearned(PeerId, Route),
    /// A route left the Adj-RIB-In.
    RouteWithdrawn(PeerId, Prefix, PathId),
}

/// Accumulated output of one speaker call.
#[derive(Debug, Default)]
pub struct SpeakerOutput {
    /// Encoded wire bytes to transmit, in order.
    pub send: Vec<(PeerId, Vec<u8>)>,
    /// Structural events.
    pub events: Vec<SpeakerEvent>,
}

impl SpeakerOutput {
    /// Merge another output into this one.
    pub fn merge(&mut self, other: SpeakerOutput) {
        self.send.extend(other.send);
        self.events.extend(other.events);
    }
}

/// The speaker.
pub struct Speaker {
    cfg: SpeakerConfig,
    peers: BTreeMap<PeerId, Peer>,
    loc_rib: LocRib,
    local_routes: PrefixTrie<Route>,
    stamp: u64,
    /// Hash-consed attribute store: every attribute set held by the RIBs
    /// is one shared allocation per distinct value.
    attr_store: AttrStore,
    /// Intern-store GC watermark (amortized sweeping of dead entries).
    gc_watermark: usize,
    /// Coalesce re-advertisements into multi-NLRI UPDATEs flushed once per
    /// entry-point round (the ADD-PATH fan-out optimisation). When off,
    /// every Adj-RIB-Out delta is emitted immediately as its own message.
    batching: bool,
    /// Fault-injection hook for the convergence oracle's self-test: when
    /// set, session re-establishment updates the Adj-RIB-Out bookkeeping
    /// but suppresses the wire replay — exactly the resync bug the oracle
    /// exists to catch. Never set outside tests.
    fault_skip_session_up_replay: bool,
    /// Observability handle: FSM transition matrix, resync replays and the
    /// coalescing flush-size histogram land here.
    obs: Obs,
    h_flush: Histogram,
    /// Journal every export-policy suppression (off by default: at a
    /// mid-tier AS the suppression is the steady state, so only nodes
    /// whose enforcement is under observation opt in).
    journal_export_rejects: bool,
    /// Reusable scratch: peer-id list for export fan-out (allocated once,
    /// refilled per recompute instead of collected fresh each time).
    scratch_ids: Vec<PeerId>,
    /// Reusable scratch: per-recompute export-transform memo. Keys are
    /// raw attribute pointers, so the map is cleared at the start of every
    /// recompute — entries never outlive the candidate set that keeps the
    /// pointed-at attributes alive.
    export_memo: HashMap<ExportMemoKey, Arc<PathAttributes>>,
}

/// Memo key for the per-route export transform: everything that
/// determines the transformed attribute set for an unconditional-accept
/// export policy. Two sessions sharing these fields advertise the same
/// (interned) attributes for a given source route, so the transform —
/// policy walk, copy-on-write edit, hash-consing — runs once per route
/// instead of once per peer.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct ExportMemoKey {
    /// Source attribute identity (interned ⇒ pointer equality is value
    /// equality), stored as an address so the key stays `Send`. Valid
    /// only within one recompute, while the candidate set holds the Arc
    /// alive.
    attrs: usize,
    ebgp: bool,
    transparent: bool,
    next_hop_unchanged: bool,
    local_addr: IpAddr,
}

/// Bucket bounds for the coalescing flush-size histogram (NLRI entries
/// put on the wire by one flush).
const FLUSH_NLRI_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Same route object: attribute identity (interned, so pointer equality is
/// value equality), provenance and arrival stamp. Used to prove a
/// recompute left the decision winner untouched.
fn routes_identical(a: &Route, b: &Route) -> bool {
    a.prefix == b.prefix
        && a.path_id == b.path_id
        && a.stamp == b.stamp
        && a.source == b.source
        && Arc::ptr_eq(&a.attrs, &b.attrs)
}

/// The standard eBGP export edits: prepend our ASN (unless the session is
/// route-server transparent), strip LOCAL_PREF, and apply next-hop-self
/// unless the export policy already rewrote the next hop or the peer is
/// configured next-hop-unchanged.
fn apply_ebgp_edits(
    attrs: &mut Arc<PathAttributes>,
    source_next_hop: Option<IpAddr>,
    local_asn: Asn,
    cfg: &PeerConfig,
) {
    let edited = Arc::make_mut(attrs);
    if !cfg.transparent {
        edited.as_path.prepend(local_asn, 1);
    }
    edited.local_pref = None;
    if !cfg.next_hop_unchanged && edited.next_hop == source_next_hop {
        edited.next_hop = Some(cfg.local_addr);
    }
}

impl Speaker {
    /// Create a speaker.
    pub fn new(cfg: SpeakerConfig) -> Self {
        let obs = Obs::new();
        Speaker {
            cfg,
            peers: BTreeMap::new(),
            loc_rib: LocRib::new(),
            local_routes: PrefixTrie::new(),
            stamp: 0,
            attr_store: AttrStore::new(),
            gc_watermark: 1024,
            batching: true,
            fault_skip_session_up_replay: false,
            h_flush: obs.histogram("bgp.flush_nlri", FLUSH_NLRI_BOUNDS),
            obs,
            journal_export_rejects: false,
            scratch_ids: Vec::new(),
            export_memo: HashMap::new(),
        }
    }

    /// Adopt a shared observability handle (replacing the speaker's
    /// private default registry).
    pub fn set_obs(&mut self, obs: Obs) {
        self.h_flush = obs.histogram("bgp.flush_nlri", FLUSH_NLRI_BOUNDS);
        self.obs = obs;
    }

    /// The speaker's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Enable the deliberate resync bug (skip the Adj-RIB-Out wire replay
    /// on session re-establishment). Oracle self-test only.
    pub fn set_fault_skip_session_up_replay(&mut self, on: bool) {
        self.fault_skip_session_up_replay = on;
    }

    /// Journal every export-policy suppression as an
    /// `ExportSuppressed` journal event. Off by default — at a
    /// mid-tier AS the suppression *is* the steady state, so only
    /// speakers whose enforcement surface is under observation (the
    /// adversarial-scenario nodes) should opt in. The per-peer
    /// `export_rejected` counter is maintained regardless.
    pub fn set_journal_export_rejects(&mut self, on: bool) {
        self.journal_export_rejects = on;
    }

    /// Local ASN.
    pub fn asn(&self) -> Asn {
        self.cfg.asn
    }

    /// Local router id.
    pub fn router_id(&self) -> RouterId {
        self.cfg.router_id
    }

    /// Register a peer. Ids must be unique.
    pub fn add_peer(&mut self, id: PeerId, cfg: PeerConfig) {
        // Mix the peer id into the jitter seed so sessions sharing one
        // config (and even one remote ASN) still de-synchronize.
        let timers = cfg
            .timers
            .with_jitter_seed(cfg.timers.jitter_seed ^ ((id.0 as u64 + 1) << 40));
        let fsm_cfg = FsmConfig {
            local_asn: self.cfg.asn,
            local_id: self.cfg.router_id,
            peer_asn: cfg.remote_asn,
            hold_time: cfg.hold_time,
            add_path: cfg.add_path,
            timers,
            passive: cfg.passive,
        };
        let peer = Peer {
            cfg,
            fsm: SessionFsm::new(fsm_cfg),
            adj_in: AdjRibIn::new(),
            adj_out: PrefixTrie::new(),
            rx_buf: Vec::new(),
            export_ids: HashMap::new(),
            next_export_id: 1,
            pending: PendingAdverts::default(),
            stats: PeerStats::default(),
        };
        self.peers.insert(id, peer);
    }

    /// Toggle update batching. Turning it off first flushes anything
    /// pending so no advertisement is stranded, then reverts to immediate
    /// per-delta emission (the pre-batching behaviour; the Fig. 6b
    /// baseline and the differential tests rely on it).
    pub fn set_batching(&mut self, on: bool) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        if !on {
            self.flush_all(&mut out);
        }
        self.batching = on;
        out
    }

    /// Whether update batching is enabled.
    pub fn batching(&self) -> bool {
        self.batching
    }

    /// The hash-consed attribute store (interning stats; Fig. 6a).
    pub fn attr_store(&self) -> &AttrStore {
        &self.attr_store
    }

    /// Drop interned attribute sets no longer referenced by any RIB;
    /// returns how many were released.
    pub fn gc_attrs(&mut self) -> usize {
        self.attr_store.gc()
    }

    /// Remove a peer entirely (used by the platform when an experiment
    /// disconnects); returns whether it existed.
    pub fn remove_peer(&mut self, id: PeerId) -> (bool, SpeakerOutput) {
        let mut out = SpeakerOutput::default();
        let existed = self.peers.contains_key(&id);
        if existed {
            self.drop_peer_routes(id, &mut out);
            self.peers.remove(&id);
            self.flush_all(&mut out);
        }
        (existed, out)
    }

    /// Session state for a peer.
    pub fn session_state(&self, id: PeerId) -> Option<FsmState> {
        self.peers.get(&id).map(|p| p.fsm.state())
    }

    /// Whether a session is Established.
    pub fn is_established(&self, id: PeerId) -> bool {
        self.session_state(id) == Some(FsmState::Established)
    }

    /// Per-peer stats.
    pub fn peer_stats(&self, id: PeerId) -> Option<PeerStats> {
        self.peers.get(&id).map(|p| p.stats)
    }

    /// The negotiated codec context for a session.
    pub fn codec_ctx(&self, id: PeerId) -> SessionCodecCtx {
        self.peers
            .get(&id)
            .map(|p| p.fsm.codec_ctx())
            .unwrap_or_default()
    }

    /// Peer ids in deterministic order.
    pub fn peer_ids(&self) -> Vec<PeerId> {
        self.peers.keys().copied().collect()
    }

    /// Access a peer's Adj-RIB-In.
    pub fn adj_rib_in(&self, id: PeerId) -> Option<&AdjRibIn> {
        self.peers.get(&id).map(|p| &p.adj_in)
    }

    /// The Loc-RIB.
    pub fn loc_rib(&self) -> &LocRib {
        &self.loc_rib
    }

    /// Replace a peer's import policy. Takes effect for routes received
    /// from now on; previously imported routes are re-evaluated on the next
    /// refresh or re-announcement (ask the peer with
    /// [`Speaker::request_route_refresh`] to force it).
    pub fn set_import_policy(&mut self, id: PeerId, import: Policy) {
        if let Some(peer) = self.peers.get_mut(&id) {
            peer.cfg.import = import;
        }
    }

    /// Replace a peer's export policy (vBGP regenerates these as experiments
    /// connect/disconnect) and re-advertise accordingly.
    pub fn set_export_policy(&mut self, id: PeerId, export: Policy) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        if let Some(peer) = self.peers.get_mut(&id) {
            peer.cfg.export = export;
        }
        // Re-evaluate everything we may have advertised.
        let prefixes: Vec<Prefix> = self.loc_rib.iter().map(|(p, _)| p).collect();
        for prefix in prefixes {
            self.export_prefix_to(id, prefix, &mut out);
        }
        self.flush_peer(id, &mut out);
        out
    }

    /// Start a peer's session.
    pub fn start_peer(&mut self, id: PeerId) -> SpeakerOutput {
        let mut out = self.drive(id, FsmEvent::ManualStart);
        self.flush_all(&mut out);
        out
    }

    /// Stop a peer's session (sends CEASE when established).
    pub fn stop_peer(&mut self, id: PeerId) -> SpeakerOutput {
        let mut out = self.drive(id, FsmEvent::ManualStop);
        self.flush_all(&mut out);
        out
    }

    /// Transport came up for a peer.
    pub fn on_transport_up(&mut self, id: PeerId) -> SpeakerOutput {
        let mut out = self.drive(id, FsmEvent::TcpConnected);
        self.flush_all(&mut out);
        out
    }

    /// Transport failed/closed.
    pub fn on_transport_down(&mut self, id: PeerId) -> SpeakerOutput {
        let mut out = self.drive(id, FsmEvent::TcpClosed);
        self.flush_all(&mut out);
        out
    }

    /// A timer armed via [`SpeakerEvent::ArmTimer`] fired.
    pub fn on_timer(&mut self, id: PeerId, kind: TimerKind) -> SpeakerOutput {
        // The stale sweep is the speaker's own timer, not an FSM input:
        // retained routes from a down session expire now.
        if kind == TimerKind::StaleSweep {
            let mut out = SpeakerOutput::default();
            self.sweep_stale_routes(id, &mut out);
            self.flush_all(&mut out);
            return out;
        }
        let mut out = self.drive(id, FsmEvent::Timer(kind));
        self.flush_all(&mut out);
        out
    }

    /// Bytes arrived from the peer's transport. Partial messages are
    /// buffered; complete ones are decoded and processed.
    pub fn on_bytes(&mut self, id: PeerId, bytes: &[u8]) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        peer.rx_buf.extend_from_slice(bytes);
        while let Some(peer) = self.peers.get_mut(&id) {
            let ctx = peer.fsm.codec_ctx();
            match Message::decode(&peer.rx_buf, &ctx) {
                Ok((msg, used)) => {
                    peer.rx_buf.drain(..used);
                    peer.stats.msgs_in += 1;
                    if matches!(msg, Message::Update(_)) {
                        peer.stats.updates_in += 1;
                    }
                    let o = self.drive(id, FsmEvent::Msg(msg));
                    out.merge(o);
                }
                Err(CodecError::Truncated) => break,
                Err(_) => {
                    // Corrupt stream: send a message-header-error
                    // NOTIFICATION (RFC 4271 §6.1) and drop the session —
                    // the paper's security engines count on sessions
                    // failing closed.
                    peer.stats.codec_errors += 1;
                    peer.rx_buf.clear();
                    let ctx = peer.fsm.codec_ctx();
                    let notify = Message::Notification(NotificationMsg::new(
                        crate::message::ERR_MSG_HEADER,
                        1, // connection not synchronized
                    ));
                    peer.stats.msgs_out += 1;
                    out.send.push((id, notify.encode(&ctx)));
                    let o = self.drive(id, FsmEvent::TcpClosed);
                    out.merge(o);
                    break;
                }
            }
        }
        self.flush_all(&mut out);
        out
    }

    /// Originate a route locally with the given attributes.
    pub fn originate(&mut self, prefix: Prefix, attrs: PathAttributes) -> SpeakerOutput {
        self.stamp += 1;
        let route = Route {
            prefix,
            path_id: 0,
            attrs: self.attr_store.intern(attrs),
            source: RouteSource::Local,
            stamp: self.stamp,
        };
        self.local_routes.insert(prefix, route);
        let mut out = SpeakerOutput::default();
        self.recompute(prefix, &mut out);
        self.flush_all(&mut out);
        out
    }

    /// Originate many routes with one coalesced flush at the end.
    ///
    /// Semantically identical to calling [`Speaker::originate`] per route,
    /// but that flushes after every insertion — one UPDATE per route on the
    /// wire. Bulk feeds (a route-server member announcing its slice of a
    /// synthetic full table) want the multi-NLRI packing the batching layer
    /// exists for: insert and recompute everything first, then let a single
    /// flush group announcements by shared attribute set.
    pub fn originate_many(
        &mut self,
        routes: impl IntoIterator<Item = (Prefix, PathAttributes)>,
    ) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        for (prefix, attrs) in routes {
            self.stamp += 1;
            let route = Route {
                prefix,
                path_id: 0,
                attrs: self.attr_store.intern(attrs),
                source: RouteSource::Local,
                stamp: self.stamp,
            };
            self.local_routes.insert(prefix, route);
            self.recompute(prefix, &mut out);
        }
        self.flush_all(&mut out);
        out
    }

    /// Withdraw a locally-originated route.
    pub fn withdraw_origin(&mut self, prefix: Prefix) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        if self.local_routes.remove(&prefix).is_some() {
            self.recompute(prefix, &mut out);
            self.flush_all(&mut out);
        }
        out
    }

    /// Send a raw UPDATE to a specific established peer, bypassing Loc-RIB
    /// export (vBGP's mux uses this to steer announcements per neighbor).
    pub fn advertise_raw(&mut self, id: PeerId, update: UpdateMsg) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        if !peer.fsm.is_established() {
            return out;
        }
        let ctx = peer.fsm.codec_ctx();
        peer.stats.msgs_out += 1;
        peer.stats.updates_out += 1;
        out.send.push((id, Message::Update(update).encode(&ctx)));
        out
    }

    // ---- internals ----

    fn drive(&mut self, id: PeerId, event: FsmEvent) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        let was_established = peer.fsm.is_established();
        let state_before = peer.fsm.state();
        let actions = peer.fsm.handle(event);
        let state_after = peer.fsm.state();
        let failures = peer.fsm.consecutive_failures();
        if state_after != state_before {
            self.obs
                .counter(&format!(
                    "bgp.fsm_transition{{edge={}->{}}}",
                    state_before.name(),
                    state_after.name()
                ))
                .inc();
            self.obs.record(ObsEvent::SessionTransition {
                peer: id.0,
                from: state_before.name(),
                to: state_after.name(),
            });
            if state_after == FsmState::Idle && failures > 0 {
                self.obs.record(ObsEvent::SessionBackoff {
                    peer: id.0,
                    level: failures,
                });
            }
        }
        let mut updates = Vec::new();
        let mut refreshes = Vec::new();
        let mut session_up = false;
        let mut session_down: Option<&'static str> = None;
        for action in actions {
            match action {
                FsmAction::OpenTransport => out.events.push(SpeakerEvent::TransportOpen(id)),
                FsmAction::CloseTransport => out.events.push(SpeakerEvent::TransportClose(id)),
                FsmAction::ArmTimer(kind, secs) => {
                    out.events.push(SpeakerEvent::ArmTimer(id, kind, secs))
                }
                FsmAction::StopTimer(kind) => out.events.push(SpeakerEvent::StopTimer(id, kind)),
                FsmAction::Send(msg) => {
                    let peer = self.peers.get_mut(&id).unwrap();
                    let ctx = peer.fsm.codec_ctx();
                    peer.stats.msgs_out += 1;
                    if matches!(msg, Message::Update(_)) {
                        peer.stats.updates_out += 1;
                    }
                    out.send.push((id, msg.encode(&ctx)));
                }
                FsmAction::SessionUp => session_up = true,
                FsmAction::SessionDown(reason) => session_down = Some(reason),
                FsmAction::DeliverUpdate(update) => updates.push(update),
                FsmAction::DeliverRouteRefresh { afi, .. } => refreshes.push(afi),
            }
        }
        if session_up {
            out.events.push(SpeakerEvent::SessionUp(id));
            self.on_session_up(id, &mut out);
        }
        if let Some(reason) = session_down {
            out.events.push(SpeakerEvent::SessionDown(id, reason));
            if was_established {
                let retention = self
                    .peers
                    .get(&id)
                    .map(|p| p.cfg.retention_secs)
                    .unwrap_or(0);
                if retention > 0 {
                    self.retain_peer_routes(id, retention, &mut out);
                } else {
                    self.drop_peer_routes(id, &mut out);
                }
            }
        }
        for update in updates {
            self.process_update(id, update, &mut out);
        }
        for afi in refreshes {
            self.process_route_refresh(id, afi, &mut out);
        }
        out
    }

    /// RFC 2918: re-send the entire Adj-RIB-Out for the requested family.
    fn process_route_refresh(&mut self, id: PeerId, afi: u16, out: &mut SpeakerOutput) {
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        // Forget what we advertised for the family so the export diff
        // re-sends everything current.
        let prefixes: Vec<Prefix> = peer
            .adj_out
            .iter()
            .map(|(p, _)| p)
            .filter(|p| match p {
                Prefix::V4 { .. } => afi == 1,
                Prefix::V6 { .. } => afi == 2,
            })
            .collect();
        for p in &prefixes {
            peer.adj_out.remove(p);
        }
        let all: Vec<Prefix> = self
            .loc_rib
            .iter()
            .map(|(p, _)| p)
            .filter(|p| match p {
                Prefix::V4 { .. } => afi == 1,
                Prefix::V6 { .. } => afi == 2,
            })
            .collect();
        for prefix in all {
            self.export_prefix_to(id, prefix, out);
        }
    }

    /// Ask a peer to re-send its routes (RFC 2918). Useful after a local
    /// policy change.
    pub fn request_route_refresh(&mut self, id: PeerId, afi: u16) -> SpeakerOutput {
        let mut out = SpeakerOutput::default();
        let Some(peer) = self.peers.get_mut(&id) else {
            return out;
        };
        if !peer.fsm.is_established() {
            return out;
        }
        let ctx = peer.fsm.codec_ctx();
        peer.stats.msgs_out += 1;
        out.send
            .push((id, Message::RouteRefresh { afi, safi: 1 }.encode(&ctx)));
        out
    }

    fn on_session_up(&mut self, id: PeerId, out: &mut SpeakerOutput) {
        // Advertise the current table to the new peer, then End-of-RIB.
        // (Re-establishment resynchronizes the Adj-RIB-Out from scratch: it
        // was cleared when the session dropped, so the diff below replays
        // the full table.)
        let prefixes: Vec<Prefix> = self.loc_rib.iter().map(|(p, _)| p).collect();
        if self.fault_skip_session_up_replay {
            // Deliberate resync bug (oracle self-test): keep the Adj-RIB-Out
            // bookkeeping but never let the replay reach the wire.
            let mut discard = SpeakerOutput::default();
            for prefix in prefixes {
                self.export_prefix_to(id, prefix, &mut discard);
            }
            if let Some(peer) = self.peers.get_mut(&id) {
                peer.pending.clear();
            }
        } else {
            let routes = prefixes.len() as u64;
            for prefix in prefixes {
                self.export_prefix_to(id, prefix, out);
            }
            // The initial table must hit the wire before the End-of-RIB marker.
            self.flush_peer(id, out);
            self.obs.counter("bgp.resync_replays").inc();
            self.obs
                .record(ObsEvent::ResyncReplay { peer: id.0, routes });
        }
        if let Some(peer) = self.peers.get_mut(&id) {
            let ctx = peer.fsm.codec_ctx();
            peer.stats.msgs_out += 1;
            peer.stats.updates_out += 1;
            out.send
                .push((id, Message::Update(UpdateMsg::end_of_rib()).encode(&ctx)));
        }
    }

    /// Session loss with retention: keep the Adj-RIB-In, marked stale, so
    /// the routes survive a brief flap; clear everything outbound so
    /// re-establishment replays a fresh Adj-RIB-Out. The armed
    /// [`TimerKind::StaleSweep`] bounds how long leftovers may linger.
    fn retain_peer_routes(&mut self, id: PeerId, retention_secs: u16, out: &mut SpeakerOutput) {
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        peer.rx_buf.clear();
        peer.adj_out = PrefixTrie::new();
        peer.export_ids.clear();
        peer.pending.clear();
        peer.adj_in.mark_all_stale();
        out.events.push(SpeakerEvent::ArmTimer(
            id,
            TimerKind::StaleSweep,
            retention_secs,
        ));
    }

    /// Withdraw every route still marked stale for `id` (retention deadline
    /// passed, or the re-established session's End-of-RIB said the peer is
    /// done re-announcing).
    fn sweep_stale_routes(&mut self, id: PeerId, out: &mut SpeakerOutput) {
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        let swept = peer.adj_in.sweep_stale();
        if swept.is_empty() {
            return;
        }
        let mut prefixes: Vec<Prefix> = swept.iter().map(|r| r.prefix).collect();
        prefixes.sort();
        prefixes.dedup();
        for r in &swept {
            out.events
                .push(SpeakerEvent::RouteWithdrawn(id, r.prefix, r.path_id));
        }
        for prefix in prefixes {
            self.recompute(prefix, out);
        }
        self.attr_store.gc();
    }

    fn drop_peer_routes(&mut self, id: PeerId, out: &mut SpeakerOutput) {
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        peer.rx_buf.clear();
        peer.adj_out = PrefixTrie::new();
        peer.export_ids.clear();
        peer.pending.clear();
        let dropped = peer.adj_in.clear();
        let mut prefixes: Vec<Prefix> = dropped.iter().map(|r| r.prefix).collect();
        prefixes.sort();
        prefixes.dedup();
        for r in &dropped {
            out.events
                .push(SpeakerEvent::RouteWithdrawn(id, r.prefix, r.path_id));
        }
        for prefix in prefixes {
            self.recompute(prefix, out);
        }
        self.attr_store.gc();
    }

    fn process_update(&mut self, id: PeerId, mut update: UpdateMsg, out: &mut SpeakerOutput) {
        if update.is_end_of_rib() {
            // The peer finished (re-)announcing: any retained route it did
            // not refresh is gone for real. The retention timer becomes
            // redundant once the sweep runs here.
            let retained = self
                .peers
                .get(&id)
                .is_some_and(|p| p.cfg.retention_secs > 0);
            if retained {
                self.sweep_stale_routes(id, out);
                out.events
                    .push(SpeakerEvent::StopTimer(id, TimerKind::StaleSweep));
            }
            return;
        }
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        let negotiated = *peer.fsm.negotiated();
        let ebgp = peer.cfg.remote_asn != self.cfg.asn;
        let mut touched: Vec<Prefix> = Vec::new();
        // Every NLRI in the update shares one attribute set: intern it once
        // so all resulting Adj-RIB-In entries share one allocation. The
        // message is ours, so move the attributes out instead of cloning.
        let shared_attrs = update.attrs.take().map(|a| self.attr_store.intern(a));

        for (prefix, path_id) in &update.withdrawn {
            let peer = self.peers.get_mut(&id).unwrap();
            let removed = match path_id {
                Some(pid) => peer.adj_in.remove(prefix, *pid).into_iter().collect(),
                None => peer.adj_in.remove_prefix(prefix),
            };
            for r in removed {
                out.events
                    .push(SpeakerEvent::RouteWithdrawn(id, r.prefix, r.path_id));
                touched.push(r.prefix);
            }
        }

        if let Some(attrs) = &shared_attrs {
            for (prefix, path_id) in &update.announce {
                let peer = self.peers.get_mut(&id).unwrap();
                let path_id = path_id.unwrap_or(0);
                // Loop detection on eBGP sessions.
                if ebgp && !peer.cfg.allow_own_asn_in && attrs.as_path.contains(self.cfg.asn) {
                    peer.stats.loop_rejected += 1;
                    continue;
                }
                self.stamp += 1;
                let candidate = Route {
                    prefix: *prefix,
                    path_id,
                    attrs: Arc::clone(attrs),
                    source: RouteSource::Peer {
                        peer: id,
                        ebgp,
                        router_id: negotiated.peer_id,
                        addr: peer.cfg.remote_addr,
                    },
                    stamp: self.stamp,
                };
                match peer.cfg.import.evaluate(&candidate) {
                    Some(imported_attrs) => {
                        let mut imported = candidate;
                        imported.attrs = self.attr_store.intern_arc(imported_attrs);
                        // Replacing an existing path keeps the old stamp so
                        // re-announcement does not look "newer" to decision.
                        if let Some(old) = peer.adj_in.insert(imported.clone()) {
                            peer.stats.addpath_dups += 1;
                            let refreshed = Route {
                                stamp: old.stamp,
                                ..imported.clone()
                            };
                            peer.adj_in.insert(refreshed.clone());
                            out.events.push(SpeakerEvent::RouteLearned(id, refreshed));
                        } else {
                            out.events.push(SpeakerEvent::RouteLearned(id, imported));
                        }
                        touched.push(*prefix);
                    }
                    None => {
                        peer.stats.import_rejected += 1;
                        // An import-rejected re-announcement implicitly
                        // withdraws any previously accepted path.
                        if peer.adj_in.remove(prefix, path_id).is_some() {
                            out.events
                                .push(SpeakerEvent::RouteWithdrawn(id, *prefix, path_id));
                            touched.push(*prefix);
                        }
                    }
                }
            }
        }

        touched.sort();
        touched.dedup();
        for prefix in touched {
            self.recompute(prefix, out);
        }
        // Amortized sweep of interned sets that churn has orphaned.
        if self.attr_store.len() >= self.gc_watermark {
            self.attr_store.gc();
            self.gc_watermark = (self.attr_store.len() * 2).max(1024);
        }
    }

    fn recompute(&mut self, prefix: Prefix, out: &mut SpeakerOutput) {
        let mut candidates: Vec<Route> = Vec::new();
        if let Some(local) = self.local_routes.get(&prefix) {
            candidates.push(local.clone());
        }
        for peer in self.peers.values() {
            candidates.extend(peer.adj_in.paths(&prefix).cloned());
        }
        sort_candidates(&mut candidates);
        let (old_best, new_best) = self.loc_rib.set_candidates(prefix, candidates.clone());
        // If the decision winner is the exact same route object as before
        // (attribute identity, source, stamp), every best-only export is a
        // provable no-op: identical inputs reproduce the identical desired
        // set, so the diff against Adj-RIB-Out is empty. Skipping them
        // collapses the dominant convergence fan-out — during mesh
        // flooding most arrivals add a losing candidate without moving the
        // best. All-paths peers still see the full candidate set change.
        let best_unchanged = match (&old_best, &new_best) {
            (None, None) => true,
            (Some(a), Some(b)) => routes_identical(a, b),
            _ => false,
        };
        let mut ids = std::mem::take(&mut self.scratch_ids);
        ids.clear();
        ids.extend(self.peers.keys().copied());
        let mut memo = std::mem::take(&mut self.export_memo);
        memo.clear();
        for &id in &ids {
            self.export_prefix_with(id, prefix, &candidates, best_unchanged, &mut memo, out);
        }
        self.scratch_ids = ids;
        self.export_memo = memo;
    }

    /// Compute and transmit the delta between what `id` should see for
    /// `prefix` and what we previously advertised.
    fn export_prefix_to(&mut self, id: PeerId, prefix: Prefix, out: &mut SpeakerOutput) {
        let candidates: Vec<Route> = self.loc_rib.candidates(&prefix).to_vec();
        let mut memo = std::mem::take(&mut self.export_memo);
        memo.clear();
        self.export_prefix_with(id, prefix, &candidates, false, &mut memo, out);
        self.export_memo = memo;
    }

    /// [`Self::export_prefix_to`] with the candidate set and transform
    /// memo supplied by the caller: a recompute fanning one prefix out to
    /// every peer collects candidates once and runs each distinct export
    /// transform — policy walk, copy-on-write edit, hash-consing — once
    /// per route instead of once per peer (see [`ExportMemoKey`]).
    fn export_prefix_with(
        &mut self,
        id: PeerId,
        prefix: Prefix,
        candidates: &[Route],
        best_unchanged: bool,
        memo: &mut HashMap<ExportMemoKey, Arc<PathAttributes>>,
        out: &mut SpeakerOutput,
    ) {
        let Some(peer) = self.peers.get(&id) else {
            return;
        };
        if !peer.fsm.is_established() {
            return;
        }
        // A best-only peer's desired set is a pure function of the (same)
        // winning route and the (same) session config — recomputing it
        // would diff to nothing.
        if best_unchanged && peer.cfg.mode == AdvertiseMode::BestOnly {
            return;
        }
        // Feed-only sessions (reject-all export, nothing previously
        // advertised for this prefix) skip candidate collection and policy
        // evaluation outright. A route server carrying a full table for
        // hundreds of members would otherwise spend O(prefixes × members)
        // in this function computing empty advertisement sets.
        if peer.cfg.export.is_reject_all() && peer.adj_out.get(&prefix).is_none() {
            return;
        }
        let mode = peer.cfg.mode;
        let ebgp = peer.cfg.remote_asn != self.cfg.asn;
        // BestOnly considers exactly the decision winner (and advertises
        // nothing when the winner is filtered) — never the runner-up.
        let cands: &[Route] = match mode {
            AdvertiseMode::BestOnly => &candidates[..candidates.len().min(1)],
            AdvertiseMode::AllPaths => candidates,
        };

        // Desired advertisement set: path-id -> interned attrs.
        let mut desired: BTreeMap<PathId, Arc<PathAttributes>> = BTreeMap::new();
        {
            let peer = self.peers.get_mut(&id).unwrap();
            let use_add_path = peer.fsm.codec_ctx().add_path_v4 || peer.fsm.codec_ctx().add_path_v6;
            let memoizable = peer.cfg.export.is_pure_filter();
            for route in cands {
                // Split horizon: never advertise a route back to its source.
                if route.source.peer() == Some(id) {
                    continue;
                }
                // Sender-side loop avoidance on eBGP.
                if ebgp && route.attrs.as_path.contains(peer.cfg.remote_asn) {
                    continue;
                }
                let attrs = if memoizable {
                    // Pure-filter export: decide per peer (cheap walk, no
                    // route clone), but the accepted transform is fully
                    // determined by the memo key, so equal sessions reuse
                    // one computation (and one interned allocation).
                    if !peer.cfg.export.accepts(route) {
                        peer.stats.export_rejected += 1;
                        if self.journal_export_rejects {
                            self.obs.record(ObsEvent::ExportSuppressed { peer: id.0 });
                        }
                        continue;
                    }
                    let key = ExportMemoKey {
                        attrs: Arc::as_ptr(&route.attrs) as usize,
                        ebgp,
                        transparent: peer.cfg.transparent,
                        next_hop_unchanged: peer.cfg.next_hop_unchanged,
                        local_addr: peer.cfg.local_addr,
                    };
                    if let Some(hit) = memo.get(&key) {
                        Arc::clone(hit)
                    } else {
                        let mut attrs = Arc::clone(&route.attrs);
                        if ebgp {
                            apply_ebgp_edits(
                                &mut attrs,
                                route.attrs.next_hop,
                                self.cfg.asn,
                                &peer.cfg,
                            );
                        }
                        // Re-intern so equal exports share one allocation,
                        // and so pointer equality below means value
                        // equality.
                        let attrs = self.attr_store.intern_arc(attrs);
                        memo.insert(key, Arc::clone(&attrs));
                        attrs
                    }
                } else {
                    let Some(mut attrs) = peer.cfg.export.evaluate(route) else {
                        peer.stats.export_rejected += 1;
                        if self.journal_export_rejects {
                            self.obs.record(ObsEvent::ExportSuppressed { peer: id.0 });
                        }
                        continue;
                    };
                    if ebgp {
                        apply_ebgp_edits(&mut attrs, route.attrs.next_hop, self.cfg.asn, &peer.cfg);
                    }
                    // Re-intern so equal exports (e.g. one route fanned out
                    // to many experiment sessions) share one allocation, and
                    // so pointer equality below means value equality.
                    self.attr_store.intern_arc(attrs)
                };
                let export_id = if use_add_path && mode == AdvertiseMode::AllPaths {
                    let key = (route.source.peer(), route.path_id);
                    if let Some(&eid) = peer.export_ids.get(&key) {
                        eid
                    } else {
                        let eid = peer.next_export_id;
                        peer.next_export_id += 1;
                        peer.export_ids.insert(key, eid);
                        eid
                    }
                } else {
                    0
                };
                desired.insert(export_id, attrs);
                if mode == AdvertiseMode::BestOnly {
                    break;
                }
            }
        }

        // Diff against adj-out (the previously *desired* state; with
        // batching on, the wire may lag it until the flush).
        let batching = self.batching;
        let peer = self.peers.get_mut(&id).unwrap();
        let ctx = peer.fsm.codec_ctx();
        let add_path_session = match prefix {
            Prefix::V4 { .. } => ctx.add_path_v4,
            Prefix::V6 { .. } => ctx.add_path_v6,
        };
        // Take (not clone) the previous desired state: it is either
        // replaced by `desired` below or dropped, so cloning the map per
        // export call would be pure overhead.
        let current: BTreeMap<PathId, Arc<PathAttributes>> =
            peer.adj_out.remove(&prefix).unwrap_or_default();

        let mut msgs: Vec<UpdateMsg> = Vec::new();
        let mut withdrawals = Vec::new();
        for pid in current.keys() {
            if !desired.contains_key(pid) {
                if batching {
                    peer.pending.announce.remove(&(prefix, *pid));
                    peer.pending.withdraw.insert((prefix, *pid));
                } else {
                    withdrawals.push((prefix, add_path_session.then_some(*pid)));
                }
            }
        }
        if !withdrawals.is_empty() {
            msgs.push(UpdateMsg::withdraw(withdrawals));
        }
        for (pid, attrs) in &desired {
            // Both sides are interned, so pointer equality is value
            // equality (stale entries stay live in the store while the
            // Adj-RIB-Out holds them).
            let changed = !current.get(pid).is_some_and(|cur| Arc::ptr_eq(cur, attrs));
            if changed {
                if batching {
                    peer.pending.withdraw.remove(&(prefix, *pid));
                    peer.pending
                        .announce
                        .insert((prefix, *pid), Arc::clone(attrs));
                } else {
                    msgs.push(UpdateMsg::announce(
                        vec![(prefix, add_path_session.then_some(*pid))],
                        (**attrs).clone(),
                    ));
                }
            }
        }

        if !desired.is_empty() {
            peer.adj_out.insert(prefix, desired);
        }
        for msg in msgs {
            peer.stats.msgs_out += 1;
            peer.stats.updates_out += 1;
            out.send.push((id, Message::Update(msg).encode(&ctx)));
        }
    }

    /// Flush one peer's pending dirty set as packed multi-NLRI UPDATEs:
    /// withdrawals first (one message), then announcements grouped by
    /// shared attribute set, each split as needed to fit the 4096-byte
    /// message limit.
    fn flush_peer(&mut self, id: PeerId, out: &mut SpeakerOutput) {
        let Some(peer) = self.peers.get_mut(&id) else {
            return;
        };
        if peer.pending.is_empty() {
            return;
        }
        if !peer.fsm.is_established() {
            peer.pending.clear();
            return;
        }
        let ctx = peer.fsm.codec_ctx();
        let nlri = |p: Prefix, pid: PathId| {
            let add_path = match p {
                Prefix::V4 { .. } => ctx.add_path_v4,
                Prefix::V6 { .. } => ctx.add_path_v6,
            };
            (p, add_path.then_some(pid))
        };
        let withdraw = std::mem::take(&mut peer.pending.withdraw);
        let announce = std::mem::take(&mut peer.pending.announce);
        self.h_flush
            .observe((withdraw.len() + announce.len()) as u64);

        let mut msgs: Vec<UpdateMsg> = Vec::new();
        if !withdraw.is_empty() {
            let entries = withdraw.iter().map(|&(p, pid)| nlri(p, pid)).collect();
            push_chunked(&mut msgs, UpdateMsg::withdraw(entries), &ctx);
        }
        // Group announcements by attribute identity (interned, so pointer
        // identity suffices) AND address family, preserving
        // first-appearance order. The family split matters: one UPDATE
        // carries a single next-hop per family slot (classic NEXT_HOP for
        // v4, MP_REACH for v6), so packing both families under one shared
        // attribute set would ship the wrong next-hop to one of them.
        type AttrGroup = (Arc<PathAttributes>, Vec<(Prefix, Option<PathId>)>);
        let mut groups: Vec<AttrGroup> = Vec::new();
        let mut index: HashMap<(*const PathAttributes, bool), usize> = HashMap::new();
        for (&(p, pid), attrs) in &announce {
            let v6 = matches!(p, Prefix::V6 { .. });
            let slot = *index.entry((Arc::as_ptr(attrs), v6)).or_insert_with(|| {
                groups.push((Arc::clone(attrs), Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(nlri(p, pid));
        }
        for (attrs, entries) in groups {
            push_chunked(
                &mut msgs,
                UpdateMsg::announce(entries, (*attrs).clone()),
                &ctx,
            );
        }
        for msg in msgs {
            peer.stats.msgs_out += 1;
            peer.stats.updates_out += 1;
            out.send.push((id, Message::Update(msg).encode(&ctx)));
        }
    }

    /// Flush every peer's pending advertisements (deterministic order).
    fn flush_all(&mut self, out: &mut SpeakerOutput) {
        let ids: Vec<PeerId> = self.peers.keys().copied().collect();
        for id in ids {
            self.flush_peer(id, out);
        }
    }

    /// Mirror per-peer counters and RIB levels into the registry. The hot
    /// paths keep bumping plain [`PeerStats`] fields; this copies them into
    /// the shared registry so `Registry::snapshot()` sees current values.
    pub fn publish_obs(&self) {
        for (id, peer) in &self.peers {
            let s = &peer.stats;
            let set = |name: &str, v: u64| self.obs.counter_dim(name, "peer", id.0).set(v);
            set("bgp.msgs_in", s.msgs_in);
            set("bgp.msgs_out", s.msgs_out);
            set("bgp.updates_in", s.updates_in);
            set("bgp.updates_out", s.updates_out);
            set("bgp.import_rejected", s.import_rejected);
            set("bgp.loop_rejected", s.loop_rejected);
            set("bgp.export_rejected", s.export_rejected);
            set("bgp.codec_errors", s.codec_errors);
            set("bgp.addpath_dups", s.addpath_dups);
            self.obs
                .gauge_dim("bgp.adj_in_paths", "peer", id.0)
                .set(peer.adj_in.path_count as i64);
            self.obs
                .gauge_dim("bgp.backoff_level", "peer", id.0)
                .set(peer.fsm.consecutive_failures() as i64);
        }
        self.obs
            .gauge("bgp.interned_attrs")
            .set(self.attr_store.len() as i64);
        self.obs
            .gauge("bgp.adj_in_paths_total")
            .set(self.total_adj_in_paths() as i64);
    }

    /// Number of routes held across all Adj-RIBs-In (Fig. 6a's x-axis).
    pub fn total_adj_in_paths(&self) -> usize {
        self.peers.values().map(|p| p.adj_in.path_count).sum()
    }

    /// Approximate memory footprint of all RIBs, in bytes (Fig. 6a's
    /// y-axis): Adj-RIB-In + Loc-RIB candidates + Adj-RIB-Out entries.
    /// Attribute bodies are hash-consed, so each distinct set is charged
    /// once no matter how many RIB views reference it.
    pub fn rib_memory_bytes(&self) -> usize {
        let mut seen: std::collections::HashSet<*const PathAttributes> =
            std::collections::HashSet::new();
        let mut bytes = 0;
        let mut charge = |attrs: &Arc<PathAttributes>, bytes: &mut usize| {
            if seen.insert(Arc::as_ptr(attrs)) {
                *bytes += crate::rib::attr_body_bytes(attrs);
            }
        };
        for peer in self.peers.values() {
            for route in peer.adj_in.iter() {
                bytes += crate::rib::route_overhead_bytes();
                charge(&route.attrs, &mut bytes);
            }
            for (_, m) in peer.adj_out.iter() {
                bytes += 48 + m.len() * 40;
                for attrs in m.values() {
                    charge(attrs, &mut bytes);
                }
            }
        }
        for (_, candidates) in self.loc_rib.iter() {
            for route in candidates {
                bytes += crate::rib::route_overhead_bytes();
                charge(&route.attrs, &mut bytes);
            }
        }
        bytes
    }

    /// What the same tables would cost with per-route owned attribute
    /// copies (the pre-interning layout) — the Fig. 6a baseline.
    pub fn naive_rib_memory_bytes(&self) -> usize {
        let mut bytes = 0;
        for peer in self.peers.values() {
            for route in peer.adj_in.iter() {
                bytes += crate::rib::route_memory_bytes(route);
            }
            for (_, m) in peer.adj_out.iter() {
                bytes += 48 + m.len() * 64;
                for attrs in m.values() {
                    bytes += crate::rib::attr_body_bytes(attrs);
                }
            }
        }
        for (_, candidates) in self.loc_rib.iter() {
            for route in candidates {
                bytes += crate::rib::route_memory_bytes(route);
            }
        }
        bytes
    }

    /// Snapshot of a peer's Adj-RIB-Out as `(prefix, [(path-id, attrs)])`
    /// in deterministic order (differential-testing observability).
    pub fn adj_rib_out_snapshot(&self, id: PeerId) -> Vec<(Prefix, Vec<(PathId, PathAttributes)>)> {
        let Some(peer) = self.peers.get(&id) else {
            return Vec::new();
        };
        let mut entries: Vec<(Prefix, Vec<(PathId, PathAttributes)>)> = peer
            .adj_out
            .iter()
            .map(|(p, m)| (p, m.iter().map(|(pid, a)| (*pid, (**a).clone())).collect()))
            .collect();
        entries.sort_by_key(|(p, _)| *p);
        entries
    }

    /// Snapshot of a peer's Adj-RIB-In as `(prefix, [(path-id, attrs)])` in
    /// deterministic order (convergence-oracle observability).
    pub fn adj_rib_in_snapshot(&self, id: PeerId) -> Vec<(Prefix, Vec<(PathId, PathAttributes)>)> {
        let Some(peer) = self.peers.get(&id) else {
            return Vec::new();
        };
        let mut by_prefix: BTreeMap<Prefix, Vec<(PathId, PathAttributes)>> = BTreeMap::new();
        for route in peer.adj_in.iter() {
            by_prefix
                .entry(route.prefix)
                .or_default()
                .push((route.path_id, (*route.attrs).clone()));
        }
        for paths in by_prefix.values_mut() {
            paths.sort_by_key(|(pid, _)| *pid);
        }
        by_prefix.into_iter().collect()
    }

    /// Number of retained (stale) paths for a peer.
    pub fn stale_path_count(&self, id: PeerId) -> usize {
        self.peers.get(&id).map_or(0, |p| p.adj_in.stale_count())
    }

    /// What the import pipeline would do with an announcement of `attrs`
    /// for `prefix` from peer `id`: `None` if the AS-path loop check or the
    /// import policy rejects it, otherwise the post-import attributes.
    /// Convergence-oracle support: the oracle compares one side's
    /// Adj-RIB-Out against the other side's Adj-RIB-In, and legitimate
    /// differences (loop drops, next-hop rewrites, local-pref stamping)
    /// are exactly what this function predicts.
    pub fn would_accept(
        &self,
        id: PeerId,
        prefix: Prefix,
        path_id: PathId,
        attrs: &PathAttributes,
    ) -> Option<PathAttributes> {
        let peer = self.peers.get(&id)?;
        let ebgp = peer.cfg.remote_asn != self.cfg.asn;
        if ebgp && !peer.cfg.allow_own_asn_in && attrs.as_path.contains(self.cfg.asn) {
            return None;
        }
        let negotiated = *peer.fsm.negotiated();
        let candidate = Route {
            prefix,
            path_id,
            attrs: Arc::new(attrs.clone()),
            source: RouteSource::Peer {
                peer: id,
                ebgp,
                router_id: negotiated.peer_id,
                addr: peer.cfg.remote_addr,
            },
            stamp: 0,
        };
        peer.cfg.import.evaluate(&candidate).map(|a| (*a).clone())
    }
}

/// Append `msg` to `msgs`, recursively halving its NLRI list until each
/// piece encodes within [`MAX_MESSAGE_LEN`].
fn push_chunked(msgs: &mut Vec<UpdateMsg>, msg: UpdateMsg, ctx: &SessionCodecCtx) {
    let nlri_count = msg.withdrawn.len().max(msg.announce.len());
    if nlri_count <= 1 || Message::Update(msg.clone()).encode(ctx).len() <= MAX_MESSAGE_LEN {
        msgs.push(msg);
        return;
    }
    let mid = nlri_count / 2;
    if msg.announce.is_empty() {
        let (a, b) = msg.withdrawn.split_at(mid);
        push_chunked(msgs, UpdateMsg::withdraw(a.to_vec()), ctx);
        push_chunked(msgs, UpdateMsg::withdraw(b.to_vec()), ctx);
    } else {
        let attrs = msg.attrs.clone().unwrap_or_default();
        let (a, b) = msg.announce.split_at(mid);
        push_chunked(msgs, UpdateMsg::announce(a.to_vec(), attrs.clone()), ctx);
        push_chunked(msgs, UpdateMsg::announce(b.to_vec(), attrs), ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::policy::Verdict;
    use crate::types::prefix;
    use std::collections::VecDeque;

    /// In-memory multi-speaker harness: wires (speaker, peer-id) endpoints
    /// together and delivers bytes until the network is quiet.
    struct Harness {
        speakers: Vec<Speaker>,
        links: HashMap<(usize, u32), (usize, u32)>,
        queue: VecDeque<(usize, PeerId, Vec<u8>)>,
        transports_up: Vec<(usize, u32)>,
    }

    impl Harness {
        fn new(speakers: Vec<Speaker>) -> Self {
            Harness {
                speakers,
                links: HashMap::new(),
                queue: VecDeque::new(),
                transports_up: Vec::new(),
            }
        }

        fn link(&mut self, a: usize, a_pid: u32, b: usize, b_pid: u32) {
            self.links.insert((a, a_pid), (b, b_pid));
            self.links.insert((b, b_pid), (a, a_pid));
        }

        fn process(&mut self, idx: usize, out: SpeakerOutput) {
            for (pid, bytes) in out.send {
                let (di, dpid) = self.links[&(idx, pid.0)];
                self.queue.push_back((di, PeerId(dpid), bytes));
            }
            for ev in out.events {
                if let SpeakerEvent::TransportOpen(pid) = ev {
                    let (di, dpid) = self.links[&(idx, pid.0)];
                    if !self.transports_up.contains(&(idx, pid.0)) {
                        self.transports_up.push((idx, pid.0));
                        self.transports_up.push((di, dpid));
                        let o = self.speakers[idx].on_transport_up(pid);
                        self.process(idx, o);
                        let o = self.speakers[di].on_transport_up(PeerId(dpid));
                        self.process(di, o);
                    }
                }
            }
        }

        fn run(&mut self) {
            let mut steps = 0;
            while let Some((di, pid, bytes)) = self.queue.pop_front() {
                let out = self.speakers[di].on_bytes(pid, &bytes);
                self.process(di, out);
                steps += 1;
                assert!(steps < 100_000, "harness livelock");
            }
        }

        fn start(&mut self, idx: usize, pid: u32) {
            let out = self.speakers[idx].start_peer(PeerId(pid));
            self.process(idx, out);
            self.run();
        }

        fn originate(&mut self, idx: usize, p: Prefix, attrs: PathAttributes) {
            let out = self.speakers[idx].originate(p, attrs);
            self.process(idx, out);
            self.run();
        }

        fn withdraw(&mut self, idx: usize, p: Prefix) {
            let out = self.speakers[idx].withdraw_origin(p);
            self.process(idx, out);
            self.run();
        }
    }

    fn speaker(asn: u32, id: u32) -> Speaker {
        Speaker::new(SpeakerConfig {
            asn: Asn(asn),
            router_id: RouterId(id),
        })
    }

    fn addr(n: u32) -> IpAddr {
        format!("10.0.{}.{}", n / 256, n % 256).parse().unwrap()
    }

    /// Two speakers, one session. Returns harness; session ids are 0/0.
    fn pair(add_path: bool) -> Harness {
        let a = speaker(100, 1);
        let b = speaker(200, 2);
        let mut h = Harness::new(vec![a, b]);
        h.link(0, 0, 1, 0);
        let mut cfg_a = PeerConfig::ebgp(Asn(200), addr(2), addr(1));
        let mut cfg_b = PeerConfig::ebgp(Asn(100), addr(1), addr(2)).with_passive();
        if add_path {
            cfg_a = cfg_a.with_all_paths();
            cfg_b = cfg_b.with_all_paths();
        }
        h.speakers[0].add_peer(PeerId(0), cfg_a);
        h.speakers[1].add_peer(PeerId(0), cfg_b);
        h.start(1, 0);
        h.start(0, 0);
        assert!(h.speakers[0].is_established(PeerId(0)));
        assert!(h.speakers[1].is_established(PeerId(0)));
        h
    }

    #[test]
    fn establish_and_propagate_route() {
        let mut h = pair(false);
        h.originate(
            0,
            prefix("184.164.224.0/24"),
            PathAttributes::originated(addr(1)),
        );
        let best = h.speakers[1]
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .unwrap();
        assert_eq!(best.attrs.as_path.asns(), vec![Asn(100)]);
        assert_eq!(best.attrs.next_hop, Some(addr(1)));
        assert_eq!(h.speakers[1].total_adj_in_paths(), 1);
    }

    #[test]
    fn withdraw_propagates() {
        let mut h = pair(false);
        let p = prefix("184.164.224.0/24");
        h.originate(0, p, PathAttributes::originated(addr(1)));
        assert!(h.speakers[1].loc_rib().best(&p).is_some());
        h.withdraw(0, p);
        assert!(h.speakers[1].loc_rib().best(&p).is_none());
        assert_eq!(h.speakers[1].total_adj_in_paths(), 0);
    }

    #[test]
    fn routes_learned_before_session_are_advertised_on_up() {
        let a = speaker(100, 1);
        let b = speaker(200, 2);
        let mut h = Harness::new(vec![a, b]);
        h.link(0, 0, 1, 0);
        h.speakers[0].add_peer(PeerId(0), PeerConfig::ebgp(Asn(200), addr(2), addr(1)));
        h.speakers[1].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(100), addr(1), addr(2)).with_passive(),
        );
        let out =
            h.speakers[0].originate(prefix("10.10.0.0/16"), PathAttributes::originated(addr(1)));
        h.process(0, out);
        h.run();
        h.start(1, 0);
        h.start(0, 0);
        assert!(h.speakers[1]
            .loc_rib()
            .best(&prefix("10.10.0.0/16"))
            .is_some());
    }

    #[test]
    fn session_down_flushes_learned_routes() {
        let mut h = pair(false);
        h.originate(
            0,
            prefix("10.10.0.0/16"),
            PathAttributes::originated(addr(1)),
        );
        assert_eq!(h.speakers[1].loc_rib().prefix_count(), 1);
        let out = h.speakers[1].on_transport_down(PeerId(0));
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::SessionDown(_, _))));
        assert_eq!(h.speakers[1].loc_rib().prefix_count(), 0);
        assert_eq!(h.speakers[1].total_adj_in_paths(), 0);
    }

    #[test]
    fn loop_detection_sender_side_suppresses() {
        // Sender-side avoidance: a never exports a path containing b's ASN.
        let mut h = pair(false);
        let mut attrs = PathAttributes::originated(addr(1));
        attrs.as_path = AsPath::from_asns(&[Asn(200)]); // poison b's ASN
        h.originate(0, prefix("10.66.0.0/16"), attrs);
        assert!(h.speakers[1]
            .loc_rib()
            .best(&prefix("10.66.0.0/16"))
            .is_none());
        assert_eq!(h.speakers[1].total_adj_in_paths(), 0);
        // Only the End-of-RIB from session establishment arrived.
        assert_eq!(h.speakers[1].peer_stats(PeerId(0)).unwrap().updates_in, 1);
    }

    #[test]
    fn loop_detection_receiver_side_rejects() {
        // Receiver-side detection: a raw update (bypassing export filters)
        // whose AS path contains the receiver's own ASN is discarded.
        let mut h = pair(false);
        let mut attrs = PathAttributes::originated(addr(1));
        attrs.as_path = AsPath::from_asns(&[Asn(100), Asn(200)]);
        let update = UpdateMsg::announce(vec![(prefix("10.66.0.0/16"), None)], attrs);
        let out = h.speakers[0].advertise_raw(PeerId(0), update);
        h.process(0, out);
        h.run();
        assert!(h.speakers[1]
            .loc_rib()
            .best(&prefix("10.66.0.0/16"))
            .is_none());
        assert_eq!(
            h.speakers[1].peer_stats(PeerId(0)).unwrap().loop_rejected,
            1
        );
    }

    #[test]
    fn import_policy_rejects() {
        use crate::policy::{Match, Rule};
        let mut h = pair(false);
        let import = Policy::new(
            vec![Rule::reject(Match::PrefixIn {
                within: prefix("10.0.0.0/8"),
                ge: 8,
                le: 32,
            })],
            Verdict::Accept,
        );
        h.speakers[1].peers.get_mut(&PeerId(0)).unwrap().cfg.import = import;
        h.originate(
            0,
            prefix("10.1.0.0/16"),
            PathAttributes::originated(addr(1)),
        );
        h.originate(
            0,
            prefix("172.16.0.0/16"),
            PathAttributes::originated(addr(1)),
        );
        assert!(h.speakers[1]
            .loc_rib()
            .best(&prefix("10.1.0.0/16"))
            .is_none());
        assert!(h.speakers[1]
            .loc_rib()
            .best(&prefix("172.16.0.0/16"))
            .is_some());
        assert_eq!(
            h.speakers[1].peer_stats(PeerId(0)).unwrap().import_rejected,
            1
        );
    }

    #[test]
    fn export_policy_transforms_on_export() {
        use crate::policy::{Action, Match, Rule};
        let mut h = pair(false);
        let export = Policy::new(
            vec![Rule::transform(
                Match::Any,
                vec![Action::Prepend(Asn(100), 3)],
            )],
            Verdict::Accept,
        );
        let out = h.speakers[0].set_export_policy(PeerId(0), export);
        h.process(0, out);
        h.run();
        h.originate(
            0,
            prefix("184.164.224.0/24"),
            PathAttributes::originated(addr(1)),
        );
        let best = h.speakers[1]
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .unwrap();
        // 3 prepends + the normal eBGP prepend = path length 4.
        assert_eq!(best.attrs.as_path.path_len(), 4);
    }

    /// Hub-and-spokes: c1, c2 announce to hub; hub relays all paths to x.
    fn hub_topology() -> Harness {
        let hub = speaker(47065, 10);
        let c1 = speaker(101, 11);
        let c2 = speaker(102, 12);
        let x = speaker(61574, 13);
        let mut h = Harness::new(vec![hub, c1, c2, x]);
        h.link(0, 0, 1, 0);
        h.link(0, 1, 2, 0);
        h.link(0, 2, 3, 0);
        h.speakers[0].add_peer(PeerId(0), PeerConfig::ebgp(Asn(101), addr(11), addr(10)));
        h.speakers[0].add_peer(PeerId(1), PeerConfig::ebgp(Asn(102), addr(12), addr(10)));
        h.speakers[0].add_peer(
            PeerId(2),
            PeerConfig::ebgp(Asn(61574), addr(13), addr(10)).with_all_paths(),
        );
        h.speakers[1].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(47065), addr(10), addr(11)).with_passive(),
        );
        h.speakers[2].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(47065), addr(10), addr(12)).with_passive(),
        );
        h.speakers[3].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(47065), addr(10), addr(13))
                .with_all_paths()
                .with_passive(),
        );
        for i in 1..4 {
            h.start(i, 0);
        }
        for pid in 0..3 {
            h.start(0, pid);
        }
        h
    }

    #[test]
    fn add_path_advertises_all_candidates() {
        let mut h = hub_topology();
        assert!(h.speakers[3].codec_ctx(PeerId(0)).add_path_v4);
        let p = prefix("192.168.0.0/24");
        h.originate(1, p, PathAttributes::originated(addr(11)));
        h.originate(2, p, PathAttributes::originated(addr(12)));
        assert_eq!(h.speakers[0].loc_rib().candidates(&p).len(), 2);
        let candidates = h.speakers[3].loc_rib().candidates(&p);
        assert_eq!(candidates.len(), 2, "x should see both paths via ADD-PATH");
        let origins: Vec<Option<Asn>> = candidates
            .iter()
            .map(|r| r.attrs.as_path.origin_as())
            .collect();
        assert!(origins.contains(&Some(Asn(101))));
        assert!(origins.contains(&Some(Asn(102))));
        // Distinct path ids on the wire.
        assert_ne!(candidates[0].path_id, candidates[1].path_id);
    }

    #[test]
    fn add_path_withdraw_removes_one_path() {
        let mut h = hub_topology();
        let p = prefix("192.168.0.0/24");
        h.originate(1, p, PathAttributes::originated(addr(11)));
        h.originate(2, p, PathAttributes::originated(addr(12)));
        assert_eq!(h.speakers[3].loc_rib().candidates(&p).len(), 2);
        h.withdraw(1, p);
        let candidates = h.speakers[3].loc_rib().candidates(&p);
        assert_eq!(candidates.len(), 1);
        assert_eq!(candidates[0].attrs.as_path.origin_as(), Some(Asn(102)));
    }

    #[test]
    fn best_only_peer_sees_single_path() {
        let mut h = hub_topology();
        let p = prefix("192.168.0.0/24");
        h.originate(1, p, PathAttributes::originated(addr(11)));
        h.originate(2, p, PathAttributes::originated(addr(12)));
        // c2 is a BestOnly peer of the hub: it learns exactly one path (not
        // its own, due to split horizon: it learns c1's). Its Loc-RIB also
        // holds its own origination, hence 2 candidates but 1 learned.
        assert_eq!(h.speakers[2].total_adj_in_paths(), 1);
        let learned: Vec<&Route> = h.speakers[2]
            .loc_rib()
            .candidates(&p)
            .iter()
            .filter(|r| r.source.peer().is_some())
            .collect();
        assert_eq!(learned.len(), 1);
        assert_eq!(learned[0].attrs.as_path.origin_as(), Some(Asn(101)));
    }

    #[test]
    fn best_path_switch_readvertises() {
        let mut h = hub_topology();
        let p = prefix("192.168.0.0/24");
        // c2 announces with a longer path first -> c1's route (shorter) wins
        // when it arrives; x's best must track hub's best ordering.
        let mut long = PathAttributes::originated(addr(12));
        long.as_path = AsPath::from_asns(&[Asn(900), Asn(901)]);
        h.originate(2, p, long);
        let best = h.speakers[0].loc_rib().best(&p).unwrap().clone();
        assert_eq!(best.attrs.as_path.origin_as(), Some(Asn(901)));
        h.originate(1, p, PathAttributes::originated(addr(11)));
        let best = h.speakers[0].loc_rib().best(&p).unwrap().clone();
        assert_eq!(best.attrs.as_path.origin_as(), Some(Asn(101)));
    }

    #[test]
    fn route_propagation_is_transitive() {
        // a(100) -- b(200) -- c(300).
        let a = speaker(100, 1);
        let b = speaker(200, 2);
        let c = speaker(300, 3);
        let mut h = Harness::new(vec![a, b, c]);
        h.link(0, 0, 1, 0);
        h.link(1, 1, 2, 0);
        h.speakers[0].add_peer(PeerId(0), PeerConfig::ebgp(Asn(200), addr(2), addr(1)));
        h.speakers[1].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(100), addr(1), addr(2)).with_passive(),
        );
        h.speakers[1].add_peer(PeerId(1), PeerConfig::ebgp(Asn(300), addr(3), addr(22)));
        h.speakers[2].add_peer(
            PeerId(0),
            PeerConfig::ebgp(Asn(200), addr(22), addr(3)).with_passive(),
        );
        h.start(1, 0);
        h.start(0, 0);
        h.start(2, 0);
        h.start(1, 1);
        h.originate(
            0,
            prefix("184.164.224.0/24"),
            PathAttributes::originated(addr(1)),
        );
        let best = h.speakers[2]
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .unwrap();
        assert_eq!(best.attrs.as_path.asns(), vec![Asn(200), Asn(100)]);
        // Next-hop rewritten to b's address on the b--c session.
        assert_eq!(best.attrs.next_hop, Some(addr(22)));
    }

    #[test]
    fn remove_peer_withdraws_its_routes() {
        let mut h = hub_topology();
        let p = prefix("192.168.0.0/24");
        h.originate(1, p, PathAttributes::originated(addr(11)));
        h.originate(2, p, PathAttributes::originated(addr(12)));
        assert_eq!(h.speakers[3].loc_rib().candidates(&p).len(), 2);
        let (existed, out) = h.speakers[0].remove_peer(PeerId(0));
        assert!(existed);
        h.process(0, out);
        h.run();
        assert_eq!(h.speakers[3].loc_rib().candidates(&p).len(), 1);
    }

    #[test]
    fn corrupt_stream_drops_session() {
        let mut h = pair(false);
        let out = h.speakers[1].on_bytes(PeerId(0), &[0u8; 19]);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::SessionDown(_, _))));
        assert_eq!(h.speakers[1].peer_stats(PeerId(0)).unwrap().codec_errors, 1);
    }

    #[test]
    fn raw_advertise_reaches_specific_peer() {
        let mut h = hub_topology();
        let p = prefix("184.164.230.0/24");
        let mut attrs = PathAttributes::originated(addr(10));
        attrs.as_path = AsPath::from_asns(&[Asn(47065)]);
        let update = UpdateMsg::announce(vec![(p, None)], attrs);
        // Send only to c1 (peer 0), not c2.
        let out = h.speakers[0].advertise_raw(PeerId(0), update);
        h.process(0, out);
        h.run();
        assert!(h.speakers[1].loc_rib().best(&p).is_some());
        assert!(h.speakers[2].loc_rib().best(&p).is_none());
    }

    #[test]
    fn memory_accounting_grows_with_routes() {
        let mut h = pair(false);
        let before = h.speakers[1].rib_memory_bytes();
        for i in 0..100u32 {
            h.originate(
                0,
                Prefix::v4(
                    std::net::Ipv4Addr::new(10, (i / 256) as u8, (i % 256) as u8, 0),
                    24,
                )
                .unwrap(),
                PathAttributes::originated(addr(1)),
            );
        }
        let after = h.speakers[1].rib_memory_bytes();
        assert!(after > before + 100 * 100, "memory should grow per route");
        assert_eq!(h.speakers[1].total_adj_in_paths(), 100);
    }

    #[test]
    fn retention_keeps_routes_until_sweep_timer() {
        let mut h = pair(false);
        h.speakers[1]
            .peers
            .get_mut(&PeerId(0))
            .unwrap()
            .cfg
            .retention_secs = 30;
        let p = prefix("184.164.224.0/24");
        h.originate(0, p, PathAttributes::originated(addr(1)));
        assert!(h.speakers[1].loc_rib().best(&p).is_some());

        let out = h.speakers[1].on_transport_down(PeerId(0));
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::SessionDown(_, _))));
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::ArmTimer(_, TimerKind::StaleSweep, 30))));
        // The route survives the flap, marked stale.
        assert!(h.speakers[1].loc_rib().best(&p).is_some());
        assert_eq!(h.speakers[1].stale_path_count(PeerId(0)), 1);

        // Retention deadline: the leftover is withdrawn for real.
        let out = h.speakers[1].on_timer(PeerId(0), TimerKind::StaleSweep);
        assert!(out
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::RouteWithdrawn(_, _, _))));
        assert!(h.speakers[1].loc_rib().best(&p).is_none());
        assert_eq!(h.speakers[1].stale_path_count(PeerId(0)), 0);
    }

    #[test]
    fn reestablishment_refreshes_retained_routes() {
        let mut h = pair(false);
        h.speakers[1]
            .peers
            .get_mut(&PeerId(0))
            .unwrap()
            .cfg
            .retention_secs = 30;
        let p = prefix("184.164.224.0/24");
        h.originate(0, p, PathAttributes::originated(addr(1)));

        // Flap both ends of the transport.
        let out = h.speakers[0].on_transport_down(PeerId(0));
        h.process(0, out);
        let out = h.speakers[1].on_transport_down(PeerId(0));
        h.process(1, out);
        h.transports_up.clear();
        h.run();
        assert!(!h.speakers[1].is_established(PeerId(0)));
        assert!(
            h.speakers[1].loc_rib().best(&p).is_some(),
            "route retained across the flap"
        );
        assert_eq!(h.speakers[1].stale_path_count(PeerId(0)), 1);

        // Re-establish: the peer's replay + End-of-RIB resynchronize the
        // table; nothing is withdrawn, nothing stays stale.
        h.start(1, 0);
        h.start(0, 0);
        assert!(h.speakers[1].is_established(PeerId(0)));
        assert!(h.speakers[1].loc_rib().best(&p).is_some());
        assert_eq!(h.speakers[1].stale_path_count(PeerId(0)), 0);
        assert_eq!(h.speakers[1].total_adj_in_paths(), 1);
    }

    #[test]
    fn mixed_family_batch_keeps_per_family_next_hops() {
        // Two prefixes of different families sharing ONE interned
        // attribute set (the DFZ-workload shape) must not be packed into
        // a single UPDATE: one message carries one next-hop per family
        // slot, so family-blind attr grouping would ship the v6 MP_REACH
        // next-hop to the v4 routes (or vice versa). Regression for the
        // flush grouping key.
        let mut h = pair(false);
        let p4 = prefix("20.0.12.0/24");
        let p6 = prefix("2610:e0::/32");
        let shared = PathAttributes {
            as_path: AsPath::from_asns(&[Asn(777)]),
            ..Default::default()
        };
        let out = h.speakers[0].originate_many(vec![(p4, shared.clone()), (p6, shared)]);
        h.process(0, out);
        h.run();
        for (prefix, paths) in h.speakers[1].adj_rib_in_snapshot(PeerId(0)) {
            for (_, attrs) in paths {
                assert_eq!(
                    attrs.next_hop,
                    Some(addr(1)),
                    "wrong next-hop for {prefix} after mixed-family flush"
                );
            }
        }
        assert!(h.speakers[1].loc_rib().best(&p4).is_some());
        assert!(h.speakers[1].loc_rib().best(&p6).is_some());
    }

    #[test]
    fn stale_route_dropped_when_not_reannounced() {
        let mut h = pair(false);
        h.speakers[1]
            .peers
            .get_mut(&PeerId(0))
            .unwrap()
            .cfg
            .retention_secs = 30;
        let p = prefix("184.164.224.0/24");
        h.originate(0, p, PathAttributes::originated(addr(1)));

        // a withdraws the origin while b's view of the session is down: b
        // must not resurrect the route after resync.
        let out = h.speakers[1].on_transport_down(PeerId(0));
        h.process(1, out);
        let out = h.speakers[0].on_transport_down(PeerId(0));
        h.process(0, out);
        h.transports_up.clear();
        h.run();
        let out = h.speakers[0].withdraw_origin(p);
        h.process(0, out);
        h.run();
        assert!(h.speakers[1].loc_rib().best(&p).is_some(), "still retained");

        h.start(1, 0);
        h.start(0, 0);
        // End-of-RIB from a's replay sweeps the unrefreshed leftover.
        assert!(
            h.speakers[1].loc_rib().best(&p).is_none(),
            "stale route must not survive resync"
        );
        assert_eq!(h.speakers[1].stale_path_count(PeerId(0)), 0);
    }

    #[test]
    fn fault_skip_replay_desyncs_adj_out_from_peer() {
        let mut h = pair(false);
        let p = prefix("184.164.224.0/24");
        h.originate(0, p, PathAttributes::originated(addr(1)));
        h.speakers[0].set_fault_skip_session_up_replay(true);

        let out = h.speakers[0].on_transport_down(PeerId(0));
        h.process(0, out);
        let out = h.speakers[1].on_transport_down(PeerId(0));
        h.process(1, out);
        h.transports_up.clear();
        h.run();
        h.start(1, 0);
        h.start(0, 0);
        assert!(h.speakers[0].is_established(PeerId(0)));
        // The bug: a's Adj-RIB-Out says the route was advertised...
        assert_eq!(h.speakers[0].adj_rib_out_snapshot(PeerId(0)).len(), 1);
        // ...but it never hit the wire, so b has nothing — the exact
        // divergence the convergence oracle asserts against.
        assert_eq!(h.speakers[1].total_adj_in_paths(), 0);
        assert!(h.speakers[1].loc_rib().best(&p).is_none());
    }
}

#[cfg(test)]
mod refresh_tests {
    use super::*;
    use crate::attrs::PathAttributes;
    use crate::types::prefix;

    /// Minimal two-speaker wiring for refresh tests.
    fn wired() -> (Speaker, Speaker) {
        let mut a = Speaker::new(SpeakerConfig {
            asn: Asn(100),
            router_id: RouterId(1),
        });
        let mut b = Speaker::new(SpeakerConfig {
            asn: Asn(200),
            router_id: RouterId(2),
        });
        a.add_peer(
            PeerId(0),
            PeerConfig::ebgp(
                Asn(200),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.1".parse().unwrap(),
            ),
        );
        b.add_peer(
            PeerId(0),
            PeerConfig::ebgp(
                Asn(100),
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
            )
            .with_passive(),
        );
        (a, b)
    }

    /// Deliver `init` (produced by `a`) to `b`, then relay until quiet.
    fn pump2(a: &mut Speaker, b: &mut Speaker, mut init: SpeakerOutput) {
        let mut to_b: Vec<Vec<u8>> = Vec::new();
        let mut to_a: Vec<Vec<u8>> = Vec::new();
        if init
            .events
            .iter()
            .any(|e| matches!(e, SpeakerEvent::TransportOpen(_)))
        {
            init.merge(a.on_transport_up(PeerId(0)));
            let out_b = b.on_transport_up(PeerId(0));
            to_a.extend(out_b.send.into_iter().map(|(_, bytes)| bytes));
        }
        to_b.extend(init.send.drain(..).map(|(_, bytes)| bytes));
        for _ in 0..50 {
            if to_a.is_empty() && to_b.is_empty() {
                break;
            }
            for bytes in std::mem::take(&mut to_b) {
                let out = b.on_bytes(PeerId(0), &bytes);
                to_a.extend(out.send.into_iter().map(|(_, x)| x));
            }
            for bytes in std::mem::take(&mut to_a) {
                let out = a.on_bytes(PeerId(0), &bytes);
                to_b.extend(out.send.into_iter().map(|(_, x)| x));
            }
        }
    }

    #[test]
    fn route_refresh_resends_adj_out() {
        let (mut a, mut b) = wired();
        b.start_peer(PeerId(0));
        let init = a.start_peer(PeerId(0));
        pump2(&mut a, &mut b, init);
        assert!(a.is_established(PeerId(0)));
        let out = a.originate(
            prefix("184.164.224.0/24"),
            PathAttributes::originated("10.0.0.1".parse().unwrap()),
        );
        pump2(&mut a, &mut b, out);
        let updates_before = a.peer_stats(PeerId(0)).unwrap().updates_out;

        // b asks for a refresh; a must re-send the route.
        let req = b.request_route_refresh(PeerId(0), 1);
        pump2(&mut b, &mut a, req);
        let after = a.peer_stats(PeerId(0)).unwrap().updates_out;
        assert!(after > updates_before, "refresh must re-send routes");
        // And b still has exactly one copy (implicit replace).
        assert_eq!(b.total_adj_in_paths(), 1);
    }

    #[test]
    fn refresh_for_other_family_resends_nothing() {
        let (mut a, mut b) = wired();
        b.start_peer(PeerId(0));
        let init = a.start_peer(PeerId(0));
        pump2(&mut a, &mut b, init);
        let out = a.originate(
            prefix("184.164.224.0/24"),
            PathAttributes::originated("10.0.0.1".parse().unwrap()),
        );
        pump2(&mut a, &mut b, out);
        let before = a.peer_stats(PeerId(0)).unwrap().updates_out;
        // IPv6 refresh: nothing to re-send.
        let req = b.request_route_refresh(PeerId(0), 2);
        pump2(&mut b, &mut a, req);
        assert_eq!(a.peer_stats(PeerId(0)).unwrap().updates_out, before);
    }

    #[test]
    fn refresh_request_requires_established() {
        let (mut a, _) = wired();
        let out = a.request_route_refresh(PeerId(0), 1);
        assert!(out.send.is_empty());
    }
}
