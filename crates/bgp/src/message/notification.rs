//! NOTIFICATION messages (RFC 4271 §4.5).

use super::CodecError;
use std::fmt;

/// Error code 1: message header error.
pub const ERR_MSG_HEADER: u8 = 1;
/// Error code 2: OPEN message error.
pub const ERR_OPEN: u8 = 2;
/// Error code 3: UPDATE message error.
pub const ERR_UPDATE: u8 = 3;
/// Error code 4: hold timer expired.
pub const ERR_HOLD_TIMER: u8 = 4;
/// Error code 5: finite state machine error.
pub const ERR_FSM: u8 = 5;
/// Error code 6: cease.
pub const ERR_CEASE: u8 = 6;

/// A NOTIFICATION message; sending one closes the session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotificationMsg {
    /// Error code.
    pub code: u8,
    /// Error subcode (0 when unspecific).
    pub subcode: u8,
    /// Diagnostic data.
    pub data: Vec<u8>,
}

impl NotificationMsg {
    /// Build a notification.
    pub fn new(code: u8, subcode: u8) -> Self {
        NotificationMsg {
            code,
            subcode,
            data: Vec::new(),
        }
    }

    /// A cease notification (administrative shutdown and the like).
    pub fn cease() -> Self {
        Self::new(ERR_CEASE, 2)
    }

    /// Hold-timer-expired.
    pub fn hold_timer_expired() -> Self {
        Self::new(ERR_HOLD_TIMER, 0)
    }

    pub(super) fn encode_body(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.data.len());
        out.push(self.code);
        out.push(self.subcode);
        out.extend_from_slice(&self.data);
        out
    }

    pub(super) fn decode_body(body: &[u8]) -> Result<NotificationMsg, CodecError> {
        if body.len() < 2 {
            return Err(CodecError::Malformed("notification too short"));
        }
        Ok(NotificationMsg {
            code: body[0],
            subcode: body[1],
            data: body[2..].to_vec(),
        })
    }
}

impl fmt::Display for NotificationMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self.code {
            ERR_MSG_HEADER => "message-header-error",
            ERR_OPEN => "open-error",
            ERR_UPDATE => "update-error",
            ERR_HOLD_TIMER => "hold-timer-expired",
            ERR_FSM => "fsm-error",
            ERR_CEASE => "cease",
            _ => "unknown",
        };
        write!(f, "NOTIFICATION {name} ({}/{})", self.code, self.subcode)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, SessionCodecCtx};

    #[test]
    fn roundtrip_with_data() {
        let ctx = SessionCodecCtx::default();
        let mut notif = NotificationMsg::new(ERR_UPDATE, 3);
        notif.data = vec![0xde, 0xad];
        let wire = Message::Notification(notif.clone()).encode(&ctx);
        let (parsed, _) = Message::decode(&wire, &ctx).unwrap();
        assert_eq!(parsed, Message::Notification(notif));
    }

    #[test]
    fn constructors() {
        assert_eq!(NotificationMsg::cease().code, ERR_CEASE);
        assert_eq!(NotificationMsg::hold_timer_expired().code, ERR_HOLD_TIMER);
    }

    #[test]
    fn display() {
        assert_eq!(
            NotificationMsg::hold_timer_expired().to_string(),
            "NOTIFICATION hold-timer-expired (4/0)"
        );
    }

    #[test]
    fn short_body_rejected() {
        assert!(NotificationMsg::decode_body(&[1]).is_err());
    }
}
