//! UPDATE messages (RFC 4271 §4.3) with ADD-PATH and multiprotocol NLRI.

use super::nlri::{decode_nlri, encode_nlri, NlriEntry};
use super::{CodecError, SessionCodecCtx};
use crate::attrs::{decode_attrs, encode_attrs, PathAttributes};
use crate::types::{Afi, Prefix};

/// A decoded UPDATE. Announcements and withdrawals may be IPv4 (carried in
/// the classic NLRI / withdrawn-routes fields) or IPv6 (carried in
/// MP_REACH / MP_UNREACH attributes); this struct presents them uniformly.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UpdateMsg {
    /// Withdrawn routes.
    pub withdrawn: Vec<NlriEntry>,
    /// Attributes for the announced routes (`None` for pure withdrawals).
    pub attrs: Option<PathAttributes>,
    /// Announced routes.
    pub announce: Vec<NlriEntry>,
}

impl UpdateMsg {
    /// An update announcing `prefixes` with `attrs`.
    pub fn announce(prefixes: Vec<NlriEntry>, attrs: PathAttributes) -> Self {
        UpdateMsg {
            withdrawn: Vec::new(),
            attrs: Some(attrs),
            announce: prefixes,
        }
    }

    /// A pure withdrawal.
    pub fn withdraw(prefixes: Vec<NlriEntry>) -> Self {
        UpdateMsg {
            withdrawn: prefixes,
            attrs: None,
            announce: Vec::new(),
        }
    }

    /// End-of-RIB marker (RFC 4724 §2): an empty UPDATE.
    pub fn end_of_rib() -> Self {
        UpdateMsg::default()
    }

    /// Whether this is an End-of-RIB marker.
    pub fn is_end_of_rib(&self) -> bool {
        self.withdrawn.is_empty() && self.announce.is_empty() && self.attrs.is_none()
    }

    fn split_by_family(entries: &[NlriEntry]) -> (Vec<NlriEntry>, Vec<NlriEntry>) {
        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        for e in entries {
            match e.0 {
                Prefix::V4 { .. } => v4.push(*e),
                Prefix::V6 { .. } => v6.push(*e),
            }
        }
        (v4, v6)
    }

    pub(super) fn encode_body(&self, ctx: &SessionCodecCtx) -> Vec<u8> {
        let (w4, w6) = Self::split_by_family(&self.withdrawn);
        let (a4, a6) = Self::split_by_family(&self.announce);

        let mut withdrawn_buf = Vec::new();
        for e in &w4 {
            encode_nlri(&mut withdrawn_buf, e, ctx.add_path_v4);
        }

        let attrs_buf = match &self.attrs {
            Some(attrs) => encode_attrs(attrs, !a4.is_empty(), &a6, &w6, ctx),
            None if !w6.is_empty() => {
                // Withdraw-only updates still need MP_UNREACH for IPv6.
                encode_attrs(&PathAttributes::default(), false, &[], &w6, ctx)
            }
            None => Vec::new(),
        };

        let mut out = Vec::with_capacity(4 + withdrawn_buf.len() + attrs_buf.len());
        out.extend_from_slice(&(withdrawn_buf.len() as u16).to_be_bytes());
        out.extend_from_slice(&withdrawn_buf);
        out.extend_from_slice(&(attrs_buf.len() as u16).to_be_bytes());
        out.extend_from_slice(&attrs_buf);
        for e in &a4 {
            encode_nlri(&mut out, e, ctx.add_path_v4);
        }
        out
    }

    pub(super) fn decode_body(body: &[u8], ctx: &SessionCodecCtx) -> Result<UpdateMsg, CodecError> {
        if body.len() < 4 {
            return Err(CodecError::Malformed("update too short"));
        }
        let wlen = u16::from_be_bytes([body[0], body[1]]) as usize;
        if 2 + wlen + 2 > body.len() {
            return Err(CodecError::Malformed("withdrawn length"));
        }
        let mut withdrawn = decode_nlri(&body[2..2 + wlen], Afi::Ipv4, ctx.add_path_v4)?;
        let alen_pos = 2 + wlen;
        let alen = u16::from_be_bytes([body[alen_pos], body[alen_pos + 1]]) as usize;
        let attrs_start = alen_pos + 2;
        if attrs_start + alen > body.len() {
            return Err(CodecError::Malformed("attributes length"));
        }
        let nlri_buf = &body[attrs_start + alen..];
        let mut announce = decode_nlri(nlri_buf, Afi::Ipv4, ctx.add_path_v4)?;

        let attrs = if alen > 0 {
            let decoded = decode_attrs(&body[attrs_start..attrs_start + alen], ctx)?;
            announce.extend(decoded.mp_announce);
            withdrawn.extend(decoded.mp_withdraw);
            Some(decoded.attrs)
        } else {
            None
        };
        // A pure-withdrawal update that only carried MP_UNREACH decodes with
        // empty default attributes; normalize that back to `None`.
        let attrs = match attrs {
            Some(a) if announce.is_empty() && a == PathAttributes::default() => None,
            other => other,
        };
        if !announce.is_empty() && attrs.is_none() {
            return Err(CodecError::Malformed("nlri without attributes"));
        }
        Ok(UpdateMsg {
            withdrawn,
            attrs,
            announce,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AsPath;
    use crate::message::Message;
    use crate::types::{prefix, Asn};

    fn attrs_v4() -> PathAttributes {
        PathAttributes {
            as_path: AsPath::from_asns(&[Asn(47065), Asn(3356)]),
            next_hop: Some("100.65.0.1".parse().unwrap()),
            ..Default::default()
        }
    }

    fn roundtrip(msg: UpdateMsg, ctx: &SessionCodecCtx) -> UpdateMsg {
        let wire = Message::Update(msg).encode(ctx);
        match Message::decode(&wire, ctx).unwrap().0 {
            Message::Update(u) => u,
            other => panic!("decoded {other:?}"),
        }
    }

    #[test]
    fn v4_announce_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let msg = UpdateMsg::announce(
            vec![
                (prefix("184.164.224.0/24"), None),
                (prefix("10.0.0.0/8"), None),
            ],
            attrs_v4(),
        );
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn v4_announce_add_path_roundtrip() {
        let ctx = SessionCodecCtx::add_path_both();
        let msg = UpdateMsg::announce(
            vec![
                (prefix("192.168.0.0/24"), Some(1)),
                (prefix("192.168.0.0/24"), Some(2)),
            ],
            attrs_v4(),
        );
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn withdraw_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let msg = UpdateMsg::withdraw(vec![(prefix("184.164.224.0/24"), None)]);
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn v6_announce_roundtrip() {
        let ctx = SessionCodecCtx::add_path_both();
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(&[Asn(47065)]),
            next_hop: Some("2001:db8::1".parse().unwrap()),
            ..Default::default()
        };
        let msg = UpdateMsg::announce(vec![(prefix("2804:269c::/32"), Some(3))], attrs);
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn v6_withdraw_only_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let msg = UpdateMsg::withdraw(vec![(prefix("2804:269c::/32"), None)]);
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn mixed_family_update_roundtrips() {
        // vBGP never mixes, but the codec handles it: v4 in classic fields,
        // v6 in MP attributes, one attribute set.
        let ctx = SessionCodecCtx::default();
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(&[Asn(47065)]),
            next_hop: Some("100.65.0.1".parse().unwrap()),
            ..Default::default()
        };
        let msg = UpdateMsg {
            withdrawn: vec![
                (prefix("10.0.0.0/8"), None),
                (prefix("2001:db8::/32"), None),
            ],
            attrs: Some(attrs),
            announce: vec![(prefix("11.0.0.0/8"), None)],
        };
        let got = roundtrip(msg.clone(), &ctx);
        assert_eq!(got.announce, msg.announce);
        // Withdrawals survive but family order may differ (v4 then v6).
        assert_eq!(got.withdrawn.len(), 2);
        assert!(got.withdrawn.contains(&(prefix("10.0.0.0/8"), None)));
        assert!(got.withdrawn.contains(&(prefix("2001:db8::/32"), None)));
    }

    #[test]
    fn v6_announce_with_v4_next_hop_roundtrips() {
        // Members on a v4-addressed fabric export v6 NLRI with a v4
        // next-hop-self; the MP_REACH slot carries it v4-mapped and the
        // decoder folds it back, so the attribute survives the wire.
        let ctx = SessionCodecCtx::default();
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(&[Asn(30001)]),
            next_hop: Some("10.2.200.7".parse().unwrap()),
            ..Default::default()
        };
        let msg = UpdateMsg::announce(vec![(prefix("2610:e0::/32"), None)], attrs);
        assert_eq!(roundtrip(msg.clone(), &ctx), msg);
    }

    #[test]
    fn end_of_rib() {
        let ctx = SessionCodecCtx::default();
        let msg = UpdateMsg::end_of_rib();
        assert!(msg.is_end_of_rib());
        let got = roundtrip(msg, &ctx);
        assert!(got.is_end_of_rib());
    }

    #[test]
    fn nlri_without_attrs_rejected() {
        let ctx = SessionCodecCtx::default();
        // withdrawn len 0, attrs len 0, then one NLRI
        let mut body = vec![0, 0, 0, 0];
        body.extend_from_slice(&[8, 10]); // 10.0.0.0/8
        assert!(UpdateMsg::decode_body(&body, &ctx).is_err());
    }

    #[test]
    fn truncated_update_rejected() {
        let ctx = SessionCodecCtx::default();
        assert!(UpdateMsg::decode_body(&[0, 0, 0], &ctx).is_err());
        assert!(UpdateMsg::decode_body(&[0, 5, 0, 0], &ctx).is_err());
        assert!(UpdateMsg::decode_body(&[0, 0, 0, 9], &ctx).is_err());
    }
}
