//! NLRI wire encoding: `[path-id]? length-in-bits prefix-octets`.
//!
//! With ADD-PATH negotiated (RFC 7911 §3), every NLRI is preceded by a
//! 4-octet path identifier — the mechanism vBGP uses to hand experiments all
//! routes for a prefix in one session.

use super::CodecError;
use crate::types::{Afi, PathId, Prefix};
use std::net::{Ipv4Addr, Ipv6Addr};

/// One NLRI entry: a prefix and its optional ADD-PATH identifier.
pub type NlriEntry = (Prefix, Option<PathId>);

/// Append one NLRI to `out`. `add_path` must match the session negotiation;
/// entries without a path id are encoded with id 0 when ADD-PATH is on.
pub fn encode_nlri(out: &mut Vec<u8>, entry: &NlriEntry, add_path: bool) {
    let (prefix, path_id) = entry;
    if add_path {
        out.extend_from_slice(&path_id.unwrap_or(0).to_be_bytes());
    }
    let len = prefix.len();
    out.push(len);
    let nbytes = len.div_ceil(8) as usize;
    match prefix {
        Prefix::V4 { addr, .. } => out.extend_from_slice(&addr.octets()[..nbytes]),
        Prefix::V6 { addr, .. } => out.extend_from_slice(&addr.octets()[..nbytes]),
    }
}

/// Decode all NLRI of family `afi` from `buf`.
pub fn decode_nlri(buf: &[u8], afi: Afi, add_path: bool) -> Result<Vec<NlriEntry>, CodecError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let path_id = if add_path {
            if pos + 4 > buf.len() {
                return Err(CodecError::Malformed("nlri path-id truncated"));
            }
            let id = u32::from_be_bytes(buf[pos..pos + 4].try_into().unwrap());
            pos += 4;
            Some(id)
        } else {
            None
        };
        let len = buf[pos];
        pos += 1;
        let max = match afi {
            Afi::Ipv4 => 32,
            Afi::Ipv6 => 128,
        };
        if len > max {
            return Err(CodecError::Malformed("nlri prefix length"));
        }
        let nbytes = len.div_ceil(8) as usize;
        if pos + nbytes > buf.len() {
            return Err(CodecError::Malformed("nlri prefix truncated"));
        }
        let prefix = match afi {
            Afi::Ipv4 => {
                let mut octets = [0u8; 4];
                octets[..nbytes].copy_from_slice(&buf[pos..pos + nbytes]);
                mask_trailing(&mut octets, len);
                Prefix::V4 {
                    addr: Ipv4Addr::from(octets),
                    len,
                }
            }
            Afi::Ipv6 => {
                let mut octets = [0u8; 16];
                octets[..nbytes].copy_from_slice(&buf[pos..pos + nbytes]);
                mask_trailing(&mut octets, len);
                Prefix::V6 {
                    addr: Ipv6Addr::from(octets),
                    len,
                }
            }
        };
        pos += nbytes;
        out.push((prefix, path_id));
    }
    Ok(out)
}

/// Zero any bits beyond the prefix length inside the final octet — senders
/// SHOULD zero them but receivers must not rely on it (RFC 4271 §4.3).
fn mask_trailing(octets: &mut [u8], len: u8) {
    let full_bytes = (len / 8) as usize;
    let rem = len % 8;
    if rem != 0 && full_bytes < octets.len() {
        octets[full_bytes] &= 0xffu8 << (8 - rem);
        for b in octets[full_bytes + 1..].iter_mut() {
            *b = 0;
        }
    } else {
        for b in octets[full_bytes..].iter_mut() {
            *b = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::prefix;

    fn roundtrip(entries: Vec<NlriEntry>, afi: Afi, add_path: bool) {
        let mut buf = Vec::new();
        for e in &entries {
            encode_nlri(&mut buf, e, add_path);
        }
        let decoded = decode_nlri(&buf, afi, add_path).unwrap();
        let want: Vec<NlriEntry> = entries
            .into_iter()
            .map(|(p, id)| {
                (
                    p,
                    if add_path {
                        Some(id.unwrap_or(0))
                    } else {
                        None
                    },
                )
            })
            .collect();
        assert_eq!(decoded, want);
    }

    #[test]
    fn v4_roundtrip_plain() {
        roundtrip(
            vec![
                (prefix("0.0.0.0/0"), None),
                (prefix("10.0.0.0/8"), None),
                (prefix("10.1.2.0/23"), None),
                (prefix("192.0.2.7/32"), None),
            ],
            Afi::Ipv4,
            false,
        );
    }

    #[test]
    fn v4_roundtrip_add_path() {
        roundtrip(
            vec![
                (prefix("10.0.0.0/8"), Some(1)),
                (prefix("10.0.0.0/8"), Some(2)),
                (prefix("184.164.224.0/24"), Some(77)),
            ],
            Afi::Ipv4,
            true,
        );
    }

    #[test]
    fn v6_roundtrip() {
        roundtrip(
            vec![
                (prefix("::/0"), None),
                (prefix("2001:db8::/32"), None),
                (prefix("2804:269c:fe00::/40"), None),
            ],
            Afi::Ipv6,
            false,
        );
        roundtrip(vec![(prefix("2001:db8::/32"), Some(9))], Afi::Ipv6, true);
    }

    #[test]
    fn nonzero_trailing_bits_are_masked() {
        // /23 with a set bit in the 24th position must decode masked.
        let buf = [23u8, 10, 1, 3]; // 10.1.3.0/23 has host bit set
        let decoded = decode_nlri(&buf, Afi::Ipv4, false).unwrap();
        assert_eq!(decoded[0].0, prefix("10.1.2.0/23"));
    }

    #[test]
    fn malformed_rejected() {
        assert!(decode_nlri(&[33, 1, 2, 3, 4, 5], Afi::Ipv4, false).is_err()); // /33
        assert!(decode_nlri(&[24, 10, 1], Afi::Ipv4, false).is_err()); // short
        assert!(decode_nlri(&[0, 0, 1], Afi::Ipv4, true).is_err()); // path-id truncated
    }

    #[test]
    fn missing_path_id_encodes_as_zero() {
        let mut buf = Vec::new();
        encode_nlri(&mut buf, &(prefix("10.0.0.0/8"), None), true);
        let decoded = decode_nlri(&buf, Afi::Ipv4, true).unwrap();
        assert_eq!(decoded[0].1, Some(0));
    }
}
