//! OPEN messages and capability negotiation (RFC 4271 §4.2, RFC 5492).

use super::CodecError;
use crate::types::{Afi, Asn, RouterId};

/// RFC 7911 Send/Receive field of the ADD-PATH capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AddPathDirection {
    /// Able to receive multiple paths (1).
    Receive,
    /// Able to send multiple paths (2).
    Send,
    /// Both (3).
    Both,
}

impl AddPathDirection {
    fn to_u8(self) -> u8 {
        match self {
            AddPathDirection::Receive => 1,
            AddPathDirection::Send => 2,
            AddPathDirection::Both => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        match v {
            1 => Some(AddPathDirection::Receive),
            2 => Some(AddPathDirection::Send),
            3 => Some(AddPathDirection::Both),
            _ => None,
        }
    }

    /// Whether this side may send multiple paths.
    pub fn can_send(self) -> bool {
        matches!(self, AddPathDirection::Send | AddPathDirection::Both)
    }

    /// Whether this side may receive multiple paths.
    pub fn can_receive(self) -> bool {
        matches!(self, AddPathDirection::Receive | AddPathDirection::Both)
    }
}

/// A capability advertised in OPEN (RFC 5492 parameter type 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// Multiprotocol extensions for (AFI, SAFI=1 unicast) — code 1.
    Multiprotocol(Afi),
    /// Route refresh — code 2.
    RouteRefresh,
    /// 4-octet AS numbers — code 65.
    FourOctetAs(Asn),
    /// ADD-PATH for unicast of the given family — code 69.
    AddPath(Afi, AddPathDirection),
    /// Anything we do not model, preserved verbatim.
    Unknown {
        /// Capability code.
        code: u8,
        /// Raw value bytes.
        value: Vec<u8>,
    },
}

impl Capability {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Capability::Multiprotocol(afi) => {
                out.push(1);
                out.push(4);
                out.extend_from_slice(&afi.to_u16().to_be_bytes());
                out.push(0);
                out.push(1); // SAFI unicast
            }
            Capability::RouteRefresh => {
                out.push(2);
                out.push(0);
            }
            Capability::FourOctetAs(asn) => {
                out.push(65);
                out.push(4);
                out.extend_from_slice(&asn.0.to_be_bytes());
            }
            Capability::AddPath(afi, dir) => {
                out.push(69);
                out.push(4);
                out.extend_from_slice(&afi.to_u16().to_be_bytes());
                out.push(1); // SAFI unicast
                out.push(dir.to_u8());
            }
            Capability::Unknown { code, value } => {
                out.push(*code);
                out.push(value.len() as u8);
                out.extend_from_slice(value);
            }
        }
    }

    fn decode(code: u8, value: &[u8]) -> Result<Capability, CodecError> {
        Ok(match code {
            1 => {
                if value.len() != 4 {
                    return Err(CodecError::Malformed("multiprotocol capability"));
                }
                let afi = Afi::from_u16(u16::from_be_bytes([value[0], value[1]]))
                    .ok_or(CodecError::Malformed("multiprotocol afi"))?;
                Capability::Multiprotocol(afi)
            }
            2 => Capability::RouteRefresh,
            65 => {
                if value.len() != 4 {
                    return Err(CodecError::Malformed("4-octet-as capability"));
                }
                Capability::FourOctetAs(Asn(u32::from_be_bytes(value.try_into().unwrap())))
            }
            69 => {
                if !value.len().is_multiple_of(4) || value.is_empty() {
                    return Err(CodecError::Malformed("add-path capability"));
                }
                // We negotiate one tuple per capability instance; if several
                // are packed, take the first (vBGP only uses unicast).
                let afi = Afi::from_u16(u16::from_be_bytes([value[0], value[1]]))
                    .ok_or(CodecError::Malformed("add-path afi"))?;
                let dir = AddPathDirection::from_u8(value[3])
                    .ok_or(CodecError::Malformed("add-path direction"))?;
                Capability::AddPath(afi, dir)
            }
            code => Capability::Unknown {
                code,
                value: value.to_vec(),
            },
        })
    }
}

/// A BGP OPEN message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpenMsg {
    /// The sender's ASN (carried in the 4-octet capability; the legacy
    /// 2-byte field holds AS_TRANS when it does not fit).
    pub asn: Asn,
    /// Proposed hold time in seconds (0 or ≥ 3 per RFC).
    pub hold_time: u16,
    /// The sender's BGP identifier.
    pub router_id: RouterId,
    /// Advertised capabilities.
    pub capabilities: Vec<Capability>,
}

impl OpenMsg {
    /// An OPEN advertising the standard vBGP capability set:
    /// multiprotocol v4+v6, route refresh, 4-octet AS, and (optionally)
    /// ADD-PATH in both directions for both families.
    pub fn standard(asn: Asn, hold_time: u16, router_id: RouterId, add_path: bool) -> Self {
        let mut capabilities = vec![
            Capability::Multiprotocol(Afi::Ipv4),
            Capability::Multiprotocol(Afi::Ipv6),
            Capability::RouteRefresh,
            Capability::FourOctetAs(asn),
        ];
        if add_path {
            capabilities.push(Capability::AddPath(Afi::Ipv4, AddPathDirection::Both));
            capabilities.push(Capability::AddPath(Afi::Ipv6, AddPathDirection::Both));
        }
        OpenMsg {
            asn,
            hold_time,
            router_id,
            capabilities,
        }
    }

    /// The ADD-PATH direction advertised for a family, if any.
    pub fn add_path(&self, afi: Afi) -> Option<AddPathDirection> {
        self.capabilities.iter().find_map(|c| match c {
            Capability::AddPath(a, d) if *a == afi => Some(*d),
            _ => None,
        })
    }

    /// Whether the 4-octet AS capability is present.
    pub fn four_octet(&self) -> bool {
        self.capabilities
            .iter()
            .any(|c| matches!(c, Capability::FourOctetAs(_)))
    }

    pub(super) fn encode_body(&self) -> Vec<u8> {
        let mut caps = Vec::new();
        for c in &self.capabilities {
            c.encode(&mut caps);
        }
        let mut opt = Vec::new();
        if !caps.is_empty() {
            opt.push(2); // parameter type: capabilities
            opt.push(caps.len() as u8);
            opt.extend_from_slice(&caps);
        }
        let my_as: u16 = if self.asn.is_2byte() {
            self.asn.0 as u16
        } else {
            Asn::TRANS.0 as u16
        };
        let mut out = Vec::with_capacity(10 + opt.len());
        out.push(4); // version
        out.extend_from_slice(&my_as.to_be_bytes());
        out.extend_from_slice(&self.hold_time.to_be_bytes());
        out.extend_from_slice(&self.router_id.0.to_be_bytes());
        out.push(opt.len() as u8);
        out.extend_from_slice(&opt);
        out
    }

    pub(super) fn decode_body(body: &[u8]) -> Result<OpenMsg, CodecError> {
        if body.len() < 10 {
            return Err(CodecError::Malformed("open too short"));
        }
        if body[0] != 4 {
            return Err(CodecError::Malformed("unsupported BGP version"));
        }
        let legacy_as = u16::from_be_bytes([body[1], body[2]]);
        let hold_time = u16::from_be_bytes([body[3], body[4]]);
        if hold_time != 0 && hold_time < 3 {
            return Err(CodecError::Malformed("hold time 1 or 2"));
        }
        let router_id = RouterId(u32::from_be_bytes(body[5..9].try_into().unwrap()));
        let opt_len = body[9] as usize;
        if 10 + opt_len != body.len() {
            return Err(CodecError::Malformed("open optional-parameter length"));
        }
        let mut capabilities = Vec::new();
        let mut pos = 10;
        while pos < body.len() {
            if pos + 2 > body.len() {
                return Err(CodecError::Malformed("optional parameter header"));
            }
            let ptype = body[pos];
            let plen = body[pos + 1] as usize;
            pos += 2;
            if pos + plen > body.len() {
                return Err(CodecError::Malformed("optional parameter length"));
            }
            if ptype == 2 {
                let mut cpos = pos;
                let end = pos + plen;
                while cpos < end {
                    if cpos + 2 > end {
                        return Err(CodecError::Malformed("capability header"));
                    }
                    let code = body[cpos];
                    let clen = body[cpos + 1] as usize;
                    cpos += 2;
                    if cpos + clen > end {
                        return Err(CodecError::Malformed("capability length"));
                    }
                    capabilities.push(Capability::decode(code, &body[cpos..cpos + clen])?);
                    cpos += clen;
                }
            }
            pos += plen;
        }
        let asn = capabilities
            .iter()
            .find_map(|c| match c {
                Capability::FourOctetAs(a) => Some(*a),
                _ => None,
            })
            .unwrap_or(Asn(legacy_as as u32));
        Ok(OpenMsg {
            asn,
            hold_time,
            router_id,
            capabilities,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Message, SessionCodecCtx};

    #[test]
    fn standard_open_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let open = OpenMsg::standard(Asn(47065), 90, RouterId(0x0a000001), true);
        let wire = Message::Open(open.clone()).encode(&ctx);
        let (parsed, _) = Message::decode(&wire, &ctx).unwrap();
        assert_eq!(parsed, Message::Open(open));
    }

    #[test]
    fn four_byte_asn_uses_as_trans() {
        let ctx = SessionCodecCtx::default();
        let open = OpenMsg::standard(Asn(4_200_000_042), 180, RouterId(1), false);
        let wire = Message::Open(open.clone()).encode(&ctx);
        // Legacy field should be AS_TRANS.
        assert_eq!(
            u16::from_be_bytes([wire[20], wire[21]]),
            Asn::TRANS.0 as u16
        );
        let (parsed, _) = Message::decode(&wire, &ctx).unwrap();
        match parsed {
            Message::Open(o) => assert_eq!(o.asn, Asn(4_200_000_042)),
            _ => panic!("not open"),
        }
    }

    #[test]
    fn add_path_lookup() {
        let open = OpenMsg::standard(Asn(1), 90, RouterId(1), true);
        assert_eq!(open.add_path(Afi::Ipv4), Some(AddPathDirection::Both));
        assert_eq!(open.add_path(Afi::Ipv6), Some(AddPathDirection::Both));
        let open = OpenMsg::standard(Asn(1), 90, RouterId(1), false);
        assert_eq!(open.add_path(Afi::Ipv4), None);
        assert!(open.four_octet());
    }

    #[test]
    fn unknown_capability_preserved() {
        let ctx = SessionCodecCtx::default();
        let mut open = OpenMsg::standard(Asn(1), 90, RouterId(1), false);
        open.capabilities.push(Capability::Unknown {
            code: 199,
            value: vec![1, 2, 3],
        });
        let wire = Message::Open(open.clone()).encode(&ctx);
        let (parsed, _) = Message::decode(&wire, &ctx).unwrap();
        assert_eq!(parsed, Message::Open(open));
    }

    #[test]
    fn rejects_bad_version_and_hold_time() {
        let ctx = SessionCodecCtx::default();
        let open = OpenMsg::standard(Asn(1), 90, RouterId(1), false);
        let mut wire = Message::Open(open.clone()).encode(&ctx);
        wire[19] = 3; // version
        assert!(Message::decode(&wire, &ctx).is_err());
        let mut wire = Message::Open(open).encode(&ctx);
        wire[22] = 0;
        wire[23] = 2; // hold time 2
        assert!(Message::decode(&wire, &ctx).is_err());
    }

    #[test]
    fn direction_predicates() {
        assert!(AddPathDirection::Both.can_send());
        assert!(AddPathDirection::Both.can_receive());
        assert!(AddPathDirection::Send.can_send());
        assert!(!AddPathDirection::Send.can_receive());
        assert!(AddPathDirection::Receive.can_receive());
        assert!(!AddPathDirection::Receive.can_send());
    }
}
