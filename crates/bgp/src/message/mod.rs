//! BGP message wire codec (RFC 4271 §4) with the extensions PEERING's
//! deployment relies on: ADD-PATH (RFC 7911), 4-octet ASNs (RFC 6793),
//! multiprotocol NLRI (RFC 4760) and route refresh (RFC 2918).

pub mod nlri;
mod notification;
mod open;
mod update;

pub use nlri::{decode_nlri, encode_nlri};
pub use notification::{
    NotificationMsg, ERR_FSM, ERR_HOLD_TIMER, ERR_MSG_HEADER, ERR_OPEN, ERR_UPDATE,
};
pub use open::{AddPathDirection, Capability, OpenMsg};
pub use update::UpdateMsg;

use std::fmt;

/// BGP message header length (16-byte marker + length + type).
pub const HEADER_LEN: usize = 19;

/// Maximum BGP message size (RFC 4271).
pub const MAX_MESSAGE_LEN: usize = 4096;

/// Errors from decoding BGP wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Fewer bytes than a complete message; retry with more data.
    Truncated,
    /// The 16-byte marker was not all-ones.
    BadMarker,
    /// Header length field out of bounds.
    BadLength(u16),
    /// Unknown message type.
    BadType(u8),
    /// Structurally invalid body.
    Malformed(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "truncated message"),
            CodecError::BadMarker => write!(f, "corrupted marker"),
            CodecError::BadLength(l) => write!(f, "bad message length {l}"),
            CodecError::BadType(t) => write!(f, "unknown message type {t}"),
            CodecError::Malformed(what) => write!(f, "malformed message: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Per-session decode context: whether ADD-PATH was negotiated per family,
/// which changes NLRI wire format.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionCodecCtx {
    /// ADD-PATH negotiated for IPv4 unicast.
    pub add_path_v4: bool,
    /// ADD-PATH negotiated for IPv6 unicast.
    pub add_path_v6: bool,
}

impl SessionCodecCtx {
    /// ADD-PATH in both families (what vBGP negotiates with experiments).
    pub fn add_path_both() -> Self {
        SessionCodecCtx {
            add_path_v4: true,
            add_path_v6: true,
        }
    }
}

/// A decoded BGP message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// OPEN.
    Open(OpenMsg),
    /// UPDATE.
    Update(UpdateMsg),
    /// NOTIFICATION.
    Notification(NotificationMsg),
    /// KEEPALIVE.
    Keepalive,
    /// ROUTE-REFRESH for an (AFI, SAFI) pair.
    RouteRefresh {
        /// Address family identifier.
        afi: u16,
        /// Subsequent AFI (1 = unicast).
        safi: u8,
    },
}

impl Message {
    /// Message type code on the wire.
    pub fn type_code(&self) -> u8 {
        match self {
            Message::Open(_) => 1,
            Message::Update(_) => 2,
            Message::Notification(_) => 3,
            Message::Keepalive => 4,
            Message::RouteRefresh { .. } => 5,
        }
    }

    /// Encode to a complete wire message (header + body).
    pub fn encode(&self, ctx: &SessionCodecCtx) -> Vec<u8> {
        let body = match self {
            Message::Open(open) => open.encode_body(),
            Message::Update(update) => update.encode_body(ctx),
            Message::Notification(notif) => notif.encode_body(),
            Message::Keepalive => Vec::new(),
            Message::RouteRefresh { afi, safi } => {
                let mut b = Vec::with_capacity(4);
                b.extend_from_slice(&afi.to_be_bytes());
                b.push(0);
                b.push(*safi);
                b
            }
        };
        let len = (HEADER_LEN + body.len()) as u16;
        let mut out = Vec::with_capacity(len as usize);
        out.extend_from_slice(&[0xff; 16]);
        out.extend_from_slice(&len.to_be_bytes());
        out.push(self.type_code());
        out.extend_from_slice(&body);
        out
    }

    /// Decode one message from the front of `buf`, returning it and the
    /// number of bytes consumed. `Err(Truncated)` means wait for more bytes.
    pub fn decode(buf: &[u8], ctx: &SessionCodecCtx) -> Result<(Message, usize), CodecError> {
        if buf.len() < HEADER_LEN {
            return Err(CodecError::Truncated);
        }
        if buf[..16] != [0xff; 16] {
            return Err(CodecError::BadMarker);
        }
        let len = u16::from_be_bytes([buf[16], buf[17]]);
        if (len as usize) < HEADER_LEN || len as usize > MAX_MESSAGE_LEN {
            return Err(CodecError::BadLength(len));
        }
        if buf.len() < len as usize {
            return Err(CodecError::Truncated);
        }
        let body = &buf[HEADER_LEN..len as usize];
        let msg = match buf[18] {
            1 => Message::Open(OpenMsg::decode_body(body)?),
            2 => Message::Update(UpdateMsg::decode_body(body, ctx)?),
            3 => Message::Notification(NotificationMsg::decode_body(body)?),
            4 => {
                if !body.is_empty() {
                    return Err(CodecError::Malformed("keepalive with body"));
                }
                Message::Keepalive
            }
            5 => {
                if body.len() != 4 {
                    return Err(CodecError::Malformed("route-refresh length"));
                }
                Message::RouteRefresh {
                    afi: u16::from_be_bytes([body[0], body[1]]),
                    safi: body[3],
                }
            }
            t => return Err(CodecError::BadType(t)),
        };
        Ok((msg, len as usize))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keepalive_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let wire = Message::Keepalive.encode(&ctx);
        assert_eq!(wire.len(), HEADER_LEN);
        let (msg, used) = Message::decode(&wire, &ctx).unwrap();
        assert_eq!(msg, Message::Keepalive);
        assert_eq!(used, HEADER_LEN);
    }

    #[test]
    fn route_refresh_roundtrip() {
        let ctx = SessionCodecCtx::default();
        let msg = Message::RouteRefresh { afi: 1, safi: 1 };
        let (parsed, _) = Message::decode(&msg.encode(&ctx), &ctx).unwrap();
        assert_eq!(parsed, msg);
    }

    #[test]
    fn truncated_and_corrupt() {
        let ctx = SessionCodecCtx::default();
        let wire = Message::Keepalive.encode(&ctx);
        assert_eq!(
            Message::decode(&wire[..10], &ctx),
            Err(CodecError::Truncated)
        );
        let mut bad = wire.clone();
        bad[0] = 0;
        assert_eq!(Message::decode(&bad, &ctx), Err(CodecError::BadMarker));
        let mut bad = wire.clone();
        bad[18] = 99;
        assert_eq!(Message::decode(&bad, &ctx), Err(CodecError::BadType(99)));
        let mut bad = wire;
        bad[16] = 0;
        bad[17] = 5;
        assert_eq!(Message::decode(&bad, &ctx), Err(CodecError::BadLength(5)));
    }

    #[test]
    fn keepalive_with_body_rejected() {
        let ctx = SessionCodecCtx::default();
        let mut wire = Message::Keepalive.encode(&ctx);
        wire.push(0);
        wire[17] += 1;
        assert!(matches!(
            Message::decode(&wire, &ctx),
            Err(CodecError::Malformed(_))
        ));
    }

    #[test]
    fn stream_decoding_consumes_exactly_one_message() {
        let ctx = SessionCodecCtx::default();
        let mut stream = Message::Keepalive.encode(&ctx);
        stream.extend(Message::RouteRefresh { afi: 2, safi: 1 }.encode(&ctx));
        let (first, used) = Message::decode(&stream, &ctx).unwrap();
        assert_eq!(first, Message::Keepalive);
        let (second, _) = Message::decode(&stream[used..], &ctx).unwrap();
        assert_eq!(second, Message::RouteRefresh { afi: 2, safi: 1 });
    }
}
