//! The BGP decision process (RFC 4271 §9.1.2.2).
//!
//! Ordering: highest LOCAL_PREF → shortest AS_PATH → lowest ORIGIN → lowest
//! MED (compared between routes from the same neighboring AS) → eBGP over
//! iBGP → oldest route → lowest router id → lowest peer address. (IGP cost
//! is omitted: the paper's vBGP routers are one hop from every neighbor, so
//! the step never discriminates.)
//!
//! The single-best outcome of this process is exactly the visibility loss
//! the paper's §2.2.2 describes — vBGP bypasses it with ADD-PATH, but the
//! experiment-side routers and the synthetic Internet ASes in the platform
//! crate run this standard process.

use std::cmp::Ordering;

use crate::attrs::Origin;
use crate::rib::{Route, RouteSource};

fn local_pref(route: &Route) -> u32 {
    // Default LOCAL_PREF is 100 when absent (common implementation default).
    route.attrs.local_pref.unwrap_or(100)
}

fn origin_rank(origin: Origin) -> u8 {
    origin.to_u8() // IGP(0) < EGP(1) < INCOMPLETE(2); lower wins
}

/// The neighboring AS for the MED comparison. RFC 4271 §9.1.2.2 defines it
/// as the first AS of an AS_SEQUENCE-headed path; a path that begins with
/// an AS_SET (an aggregate) has no determinate neighbor AS, so MED must
/// not be compared for it — `first_as()` alone would happily return an
/// arbitrary member of the set and make two aggregates look comparable.
fn neighbor_as(route: &Route) -> Option<crate::types::Asn> {
    use crate::attrs::AsPathSegment;
    match route.attrs.as_path.segments.first()? {
        AsPathSegment::Sequence(v) => v.first().copied(),
        AsPathSegment::Set(_) => None,
    }
}

/// Compare two routes; `Ordering::Less` means `a` is preferred.
pub fn compare(a: &Route, b: &Route) -> Ordering {
    // 1. Highest LOCAL_PREF.
    match local_pref(b).cmp(&local_pref(a)) {
        Ordering::Equal => {}
        other => return other,
    }
    // 2. Shortest AS_PATH.
    match a.attrs.as_path.path_len().cmp(&b.attrs.as_path.path_len()) {
        Ordering::Equal => {}
        other => return other,
    }
    // 3. Lowest ORIGIN.
    match origin_rank(a.attrs.origin).cmp(&origin_rank(b.attrs.origin)) {
        Ordering::Equal => {}
        other => return other,
    }
    // 4. Lowest MED, only when the neighbor AS matches (and both have one).
    if let (Some(na), Some(nb)) = (neighbor_as(a), neighbor_as(b)) {
        if na == nb {
            let med_a = a.attrs.med.unwrap_or(0);
            let med_b = b.attrs.med.unwrap_or(0);
            match med_a.cmp(&med_b) {
                Ordering::Equal => {}
                other => return other,
            }
        }
    }
    // 5. eBGP over iBGP.
    match (a.source.is_ebgp(), b.source.is_ebgp()) {
        (true, false) => return Ordering::Less,
        (false, true) => return Ordering::Greater,
        _ => {}
    }
    // 6. Oldest route (stability preference).
    match a.stamp.cmp(&b.stamp) {
        Ordering::Equal => {}
        other => return other,
    }
    // 7. Lowest router id, then lowest peer address, then path id.
    let key = |r: &Route| match r.source {
        RouteSource::Local => (0u32, None, r.path_id),
        RouteSource::Peer {
            router_id, addr, ..
        } => (router_id.0, Some(addr), r.path_id),
    };
    key(a).cmp(&key(b))
}

/// Sort candidates best-first (a total, deterministic order).
pub fn sort_candidates(candidates: &mut [Route]) {
    candidates.sort_by(compare);
}

/// The best route among candidates, if any.
pub fn best_path(candidates: &[Route]) -> Option<&Route> {
    candidates.iter().min_by(|a, b| compare(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::{AsPath, PathAttributes};
    use crate::rib::PeerId;
    use crate::types::{prefix, Asn, RouterId};

    fn base(peer: u32) -> Route {
        Route {
            prefix: prefix("192.168.0.0/24"),
            path_id: 0,
            attrs: PathAttributes {
                as_path: AsPath::from_asns(&[Asn(peer), Asn(500)]),
                next_hop: Some("10.0.0.1".parse().unwrap()),
                ..Default::default()
            }
            .into(),
            source: RouteSource::Peer {
                peer: PeerId(peer),
                ebgp: true,
                router_id: RouterId(peer),
                addr: format!("10.0.0.{peer}").parse().unwrap(),
            },
            stamp: 10,
        }
    }

    #[test]
    fn local_pref_dominates() {
        let mut a = base(1);
        a.attrs_mut().local_pref = Some(200);
        a.attrs_mut().as_path = AsPath::from_asns(&[Asn(1), Asn(2), Asn(3), Asn(4)]);
        let b = base(2); // default LP 100, shorter path
        assert_eq!(compare(&a, &b), Ordering::Less);
        assert_eq!(best_path(&[b, a.clone()]).unwrap(), &a);
    }

    #[test]
    fn shorter_as_path_wins() {
        let a = base(1);
        let mut b = base(2);
        b.attrs_mut().as_path.prepend(Asn(2), 2);
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn origin_breaks_tie() {
        let a = base(1);
        let mut b = base(1);
        b.attrs_mut().origin = Origin::Incomplete;
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn med_only_compared_same_neighbor_as() {
        // Same neighbor AS: lower MED wins.
        let mut a = base(1);
        a.attrs_mut().med = Some(10);
        let mut b = base(1);
        b.attrs_mut().med = Some(20);
        b.source = RouteSource::Peer {
            peer: PeerId(2),
            ebgp: true,
            router_id: RouterId(2),
            addr: "10.0.0.2".parse().unwrap(),
        };
        assert_eq!(compare(&a, &b), Ordering::Less);
        // Different neighbor AS: MED ignored, falls through to router id.
        let mut c = base(2);
        c.attrs_mut().med = Some(999);
        let a2 = base(1);
        assert_eq!(compare(&a2, &c), Ordering::Less); // router id 1 < 2
    }

    #[test]
    fn ebgp_beats_ibgp() {
        let a = base(1);
        let mut b = base(1);
        if let RouteSource::Peer { ebgp, .. } = &mut b.source {
            *ebgp = false;
        }
        assert_eq!(compare(&a, &b), Ordering::Less);
        assert_eq!(compare(&b, &a), Ordering::Greater);
    }

    #[test]
    fn older_route_preferred() {
        let mut a = base(1);
        a.stamp = 5;
        let mut b = base(1);
        b.stamp = 6;
        // Make sources distinct so only the stamp differs meaningfully.
        b.source = RouteSource::Peer {
            peer: PeerId(9),
            ebgp: true,
            router_id: RouterId(0),
            addr: "10.0.0.9".parse().unwrap(),
        };
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn router_id_final_tiebreak() {
        let a = base(1);
        let b = base(2);
        assert_eq!(compare(&a, &b), Ordering::Less);
    }

    #[test]
    fn sort_is_total_and_deterministic() {
        let mut routes = vec![base(3), base(1), base(2)];
        routes[0].attrs_mut().local_pref = Some(50);
        sort_candidates(&mut routes);
        let ids: Vec<u32> = routes
            .iter()
            .map(|r| match r.source {
                RouteSource::Peer { peer, .. } => peer.0,
                _ => 0,
            })
            .collect();
        assert_eq!(ids, vec![1, 2, 3]);
    }

    #[test]
    fn best_of_empty_is_none() {
        assert!(best_path(&[]).is_none());
    }

    #[test]
    fn med_skipped_for_as_set_headed_paths() {
        use crate::attrs::AsPathSegment;
        // Both routes are aggregates whose paths begin with an AS_SET
        // containing the same first member. `first_as()` would call their
        // neighbor ASes equal; RFC 4271 says the neighbor AS of an
        // AS_SET-headed path is indeterminate, so MED must not decide.
        let mut a = base(1);
        a.attrs_mut().as_path = AsPath {
            segments: vec![AsPathSegment::Set(vec![Asn(1), Asn(7)])],
        };
        a.attrs_mut().med = Some(999);
        let mut b = base(2);
        b.attrs_mut().as_path = AsPath {
            segments: vec![AsPathSegment::Set(vec![Asn(1), Asn(9)])],
        };
        b.attrs_mut().med = Some(0);
        // MED ignored: falls through to the router-id tiebreak (1 < 2),
        // despite a's much larger MED.
        assert_eq!(compare(&a, &b), Ordering::Less);

        // One AS_SET-headed path against a sequence-headed one sharing the
        // "same" leading ASN: still no MED comparison.
        let mut c = base(1);
        c.attrs_mut().as_path = AsPath {
            segments: vec![AsPathSegment::Set(vec![Asn(2), Asn(8)])],
        };
        c.attrs_mut().med = Some(0);
        let mut d = base(2);
        d.attrs_mut().as_path = AsPath::from_asns(&[Asn(2)]);
        d.attrs_mut().med = Some(500);
        // Path length 1 each, origins equal; MED skipped, router id 1 < 2.
        assert_eq!(compare(&c, &d), Ordering::Less);
    }

    #[test]
    fn med_skipped_for_empty_paths() {
        // Two iBGP-learned routes with empty AS paths: no neighbor AS
        // exists, so MED stays out of the decision and the stamp breaks
        // the tie toward the older route — even though the newer route
        // carries the lower MED.
        let mut a = base(1);
        a.attrs_mut().as_path = AsPath::empty();
        a.attrs_mut().med = Some(10);
        a.stamp = 5;
        let mut b = base(2);
        b.attrs_mut().as_path = AsPath::empty();
        b.attrs_mut().med = Some(0);
        b.stamp = 6;
        assert_eq!(compare(&a, &b), Ordering::Less);
        assert_eq!(compare(&b, &a), Ordering::Greater);
    }

    #[test]
    fn local_route_beats_peer_on_id() {
        let a = Route {
            source: RouteSource::Local,
            ..base(1)
        };
        let b = base(1);
        // Same LP/path/origin; local has no eBGP flag so eBGP wins step 5.
        assert_eq!(compare(&b, &a), Ordering::Less);
        // But a locally-originated route usually has an empty AS path:
        let mut a2 = a.clone();
        a2.attrs_mut().as_path = AsPath::empty();
        assert_eq!(compare(&a2, &b), Ordering::Less);
    }
}
