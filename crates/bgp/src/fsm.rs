//! The BGP session finite state machine (RFC 4271 §8).
//!
//! Sans-IO: the FSM consumes [`FsmEvent`]s (transport notifications, decoded
//! messages, timer expirations) and emits [`FsmAction`]s (messages to send,
//! timers to arm). The embedding (a vBGP router node in the simulator, or a
//! unit test) owns the transport and the clock, which is what makes the
//! paper's §3.3 point about testable policy/engines concrete: every state
//! transition here is exercised by plain synchronous tests.

use crate::message::{Message, NotificationMsg, OpenMsg, SessionCodecCtx, UpdateMsg, ERR_OPEN};
use crate::types::{Afi, Asn, RouterId};

/// FSM states (RFC 4271 §8.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsmState {
    /// Initial state; refuses all connections.
    Idle,
    /// Waiting for the transport connection to complete.
    Connect,
    /// Transport failed; awaiting retry or inbound connection.
    Active,
    /// OPEN sent, waiting for the peer's OPEN.
    OpenSent,
    /// OPEN exchanged, waiting for KEEPALIVE.
    OpenConfirm,
    /// Session up; UPDATEs flow.
    Established,
}

impl FsmState {
    /// Stable short name, used as the transition-matrix metric label and
    /// in journal events.
    pub fn name(self) -> &'static str {
        match self {
            FsmState::Idle => "Idle",
            FsmState::Connect => "Connect",
            FsmState::Active => "Active",
            FsmState::OpenSent => "OpenSent",
            FsmState::OpenConfirm => "OpenConfirm",
            FsmState::Established => "Established",
        }
    }
}

/// Timers the FSM asks its embedding to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// Retry the transport connection.
    ConnectRetry,
    /// Hold timer: no message from peer for the negotiated hold time.
    Hold,
    /// Send the next KEEPALIVE.
    Keepalive,
    /// Route-retention deadline: retained (stale) Adj-RIB-In routes from a
    /// down session are swept when this fires. Armed and consumed by the
    /// [`crate::speaker::Speaker`], not the FSM itself.
    StaleSweep,
}

/// Inputs to the FSM.
#[derive(Debug, Clone)]
pub enum FsmEvent {
    /// Operator/automatic start (active open).
    ManualStart,
    /// Operator stop; sends CEASE if established.
    ManualStop,
    /// The transport (TCP in the paper; a simulated tunnel here) came up.
    TcpConnected,
    /// The transport failed or closed.
    TcpClosed,
    /// A decoded message arrived.
    Msg(Message),
    /// A previously-armed timer fired.
    Timer(TimerKind),
}

/// Outputs from the FSM.
#[derive(Debug, Clone, PartialEq)]
pub enum FsmAction {
    /// Ask the embedding to initiate the transport.
    OpenTransport,
    /// Ask the embedding to close the transport.
    CloseTransport,
    /// Send a message to the peer.
    Send(Message),
    /// Arm a timer for `secs` seconds (re-arming replaces).
    ArmTimer(TimerKind, u16),
    /// Cancel a timer.
    StopTimer(TimerKind),
    /// The session reached Established.
    SessionUp,
    /// The session left Established (reason string for logs).
    SessionDown(&'static str),
    /// An UPDATE arrived on an Established session.
    DeliverUpdate(UpdateMsg),
    /// A ROUTE-REFRESH arrived on an Established session (RFC 2918): the
    /// peer asks for the Adj-RIB-Out to be re-sent.
    DeliverRouteRefresh {
        /// Address family requested.
        afi: u16,
        /// Subsequent AFI requested.
        safi: u8,
    },
}

/// Connect-retry timing policy: exponential backoff with deterministic
/// jitter and idle-hold damping after repeated resets.
///
/// The paper's platform peers over tunnels that flap; a fleet of sessions
/// retrying in lockstep re-synchronizes the very storms it is recovering
/// from. The delay before retry `n` (counting consecutive failures since
/// the last stable session) is
/// `min(base * 2^(n-1), cap)`, plus `step * (n - damping_after)` once the
/// session has failed more than `damping_after` times in a row (bounded by
/// `damping_cap`), plus a jitter of up to `jitter_pct` percent drawn from a
/// SplitMix64 stream seeded from the session identity — deterministic for a
/// given config, de-synchronized across sessions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimerConfig {
    /// First-retry delay (seconds).
    pub retry_base_secs: u16,
    /// Exponential backoff ceiling (seconds).
    pub retry_cap_secs: u16,
    /// Double the delay on each consecutive failure.
    pub backoff: bool,
    /// Jitter added on top of the delay, as a percentage of it. Zero
    /// disables the RNG draw entirely, so fixed configs replay the exact
    /// legacy timer stream.
    pub jitter_pct: u8,
    /// Extra seed material for the jitter stream, mixed with the local
    /// router id and peer ASN.
    pub jitter_seed: u64,
    /// Consecutive failures after which idle-hold damping kicks in.
    pub damping_after: u32,
    /// Additional idle seconds per failure beyond `damping_after`.
    pub damping_step_secs: u16,
    /// Ceiling on the damped, pre-jitter delay (seconds).
    pub damping_cap_secs: u16,
}

impl Default for TimerConfig {
    fn default() -> Self {
        TimerConfig {
            retry_base_secs: 30,
            retry_cap_secs: 120,
            backoff: true,
            jitter_pct: 25,
            jitter_seed: 0,
            damping_after: 4,
            damping_step_secs: 30,
            damping_cap_secs: 240,
        }
    }
}

impl TimerConfig {
    /// The pre-backoff behavior: a fixed retry interval, no jitter, no
    /// damping. Tests that assert exact timings use this.
    pub fn fixed(secs: u16) -> Self {
        TimerConfig {
            retry_base_secs: secs,
            retry_cap_secs: secs,
            backoff: false,
            jitter_pct: 0,
            jitter_seed: 0,
            damping_after: u32::MAX,
            damping_step_secs: 0,
            damping_cap_secs: secs,
        }
    }

    /// Override the jitter seed.
    pub fn with_jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }
}

/// Static session configuration.
#[derive(Debug, Clone)]
pub struct FsmConfig {
    /// Local ASN.
    pub local_asn: Asn,
    /// Local BGP identifier.
    pub local_id: RouterId,
    /// The ASN we expect the peer to present (RFC 4271 rejects mismatches).
    pub peer_asn: Asn,
    /// Proposed hold time (seconds).
    pub hold_time: u16,
    /// Offer ADD-PATH both directions for v4+v6 (vBGP always does on
    /// experiment-facing sessions).
    pub add_path: bool,
    /// Connect-retry timing (backoff, jitter, damping).
    pub timers: TimerConfig,
    /// Start passively: wait for the peer to open the transport.
    pub passive: bool,
}

impl FsmConfig {
    /// A typical eBGP config with 90 s hold time and default backoff.
    pub fn ebgp(local_asn: Asn, local_id: RouterId, peer_asn: Asn) -> Self {
        FsmConfig {
            local_asn,
            local_id,
            peer_asn,
            hold_time: 90,
            add_path: false,
            timers: TimerConfig::default(),
            passive: false,
        }
    }

    /// Enable ADD-PATH negotiation.
    pub fn with_add_path(mut self) -> Self {
        self.add_path = true;
        self
    }

    /// Wait for the peer to connect instead of initiating.
    pub fn with_passive(mut self) -> Self {
        self.passive = true;
        self
    }

    /// Replace the connect-retry timing policy.
    pub fn with_timers(mut self, timers: TimerConfig) -> Self {
        self.timers = timers;
        self
    }
}

/// Negotiated session properties, valid once Established.
#[derive(Debug, Clone, Copy, Default)]
pub struct Negotiated {
    /// Effective hold time (min of both sides).
    pub hold_time: u16,
    /// Codec context: ADD-PATH per family, applied to both directions.
    pub codec: SessionCodecCtx,
    /// Peer's router id (tie-breaking in the decision process).
    pub peer_id: RouterId,
    /// Peer's (possibly 4-byte) ASN.
    pub peer_asn: Asn,
}

/// The session FSM.
pub struct SessionFsm {
    cfg: FsmConfig,
    state: FsmState,
    negotiated: Negotiated,
    /// Count of state transitions into Established (flap counter).
    pub established_count: u64,
    /// Consecutive session failures since the last stable session; drives
    /// the backoff exponent and idle-hold damping.
    failures: u32,
    /// SplitMix64 state for the jitter stream.
    jitter_state: u64,
}

impl SessionFsm {
    /// Create an FSM in Idle.
    pub fn new(cfg: FsmConfig) -> Self {
        // Seed the jitter stream from the session identity so every session
        // gets its own deterministic stream even under one shared config.
        let jitter_state = cfg
            .timers
            .jitter_seed
            .wrapping_add((cfg.local_id.0 as u64) << 32)
            .wrapping_add(cfg.peer_asn.0 as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            | 1;
        SessionFsm {
            cfg,
            state: FsmState::Idle,
            negotiated: Negotiated::default(),
            established_count: 0,
            failures: 0,
            jitter_state,
        }
    }

    /// Consecutive failures since the last stable session.
    pub fn consecutive_failures(&self) -> u32 {
        self.failures
    }

    /// Current state.
    pub fn state(&self) -> FsmState {
        self.state
    }

    /// Negotiated parameters (meaningful once Established).
    pub fn negotiated(&self) -> &Negotiated {
        &self.negotiated
    }

    /// Codec context for this session's wire encoding.
    pub fn codec_ctx(&self) -> SessionCodecCtx {
        self.negotiated.codec
    }

    /// Whether the session is Established.
    pub fn is_established(&self) -> bool {
        self.state == FsmState::Established
    }

    fn our_open(&self) -> OpenMsg {
        OpenMsg::standard(
            self.cfg.local_asn,
            self.cfg.hold_time,
            self.cfg.local_id,
            self.cfg.add_path,
        )
    }

    fn keepalive_interval(hold: u16) -> u16 {
        (hold / 3).max(1)
    }

    fn next_jitter(&mut self, span: u64) -> u64 {
        self.jitter_state = self.jitter_state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.jitter_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if span == 0 {
            0
        } else {
            z % span
        }
    }

    /// Current connect-retry delay: exponential in the consecutive-failure
    /// count, capped, damped after repeated resets, then jittered.
    fn retry_delay(&mut self) -> u16 {
        let t = self.cfg.timers;
        let mut delay = t.retry_base_secs as u64;
        if t.backoff {
            let exp = self.failures.saturating_sub(1).min(8);
            delay = (delay << exp).min(t.retry_cap_secs as u64);
            if self.failures > t.damping_after {
                let extra = (self.failures - t.damping_after) as u64 * t.damping_step_secs as u64;
                delay = (delay + extra).min(t.damping_cap_secs as u64);
            }
        }
        if t.jitter_pct > 0 {
            delay += self.next_jitter(delay * t.jitter_pct as u64 / 100 + 1);
        }
        delay.min(u16::MAX as u64) as u16
    }

    fn drop_session(
        &mut self,
        actions: &mut Vec<FsmAction>,
        reason: &'static str,
        notify: Option<NotificationMsg>,
    ) {
        if let Some(n) = notify {
            actions.push(FsmAction::Send(Message::Notification(n)));
        }
        if self.state == FsmState::Established {
            actions.push(FsmAction::SessionDown(reason));
        }
        actions.push(FsmAction::StopTimer(TimerKind::Hold));
        actions.push(FsmAction::StopTimer(TimerKind::Keepalive));
        actions.push(FsmAction::CloseTransport);
        self.state = FsmState::Idle;
        self.negotiated = Negotiated::default();
        self.failures = self.failures.saturating_add(1);
        // Automatic restart: arm the connect-retry timer so the session
        // recovers without operator action (IdleHoldTimer in the RFC). The
        // delay backs off with the consecutive-failure count.
        let delay = self.retry_delay();
        actions.push(FsmAction::ArmTimer(TimerKind::ConnectRetry, delay));
    }

    fn handle_open(&mut self, open: OpenMsg, actions: &mut Vec<FsmAction>) {
        if open.asn != self.cfg.peer_asn {
            let notify = NotificationMsg::new(ERR_OPEN, 2); // bad peer AS
            self.drop_session(actions, "bad peer AS", Some(notify));
            return;
        }
        let hold = self.cfg.hold_time.min(open.hold_time);
        let ours_ap = self.cfg.add_path;
        let ap = |afi: Afi| -> bool {
            ours_ap
                && open
                    .add_path(afi)
                    .map(|d| {
                        // Our Both direction intersects with anything the
                        // peer can send or receive.
                        d.can_send() || d.can_receive()
                    })
                    .unwrap_or(false)
        };
        self.negotiated = Negotiated {
            hold_time: hold,
            codec: SessionCodecCtx {
                add_path_v4: ap(Afi::Ipv4),
                add_path_v6: ap(Afi::Ipv6),
            },
            peer_id: open.router_id,
            peer_asn: open.asn,
        };
        actions.push(FsmAction::Send(Message::Keepalive));
        if hold > 0 {
            actions.push(FsmAction::ArmTimer(TimerKind::Hold, hold));
            actions.push(FsmAction::ArmTimer(
                TimerKind::Keepalive,
                Self::keepalive_interval(hold),
            ));
        }
        self.state = FsmState::OpenConfirm;
    }

    /// Feed an event; returns the actions to take.
    pub fn handle(&mut self, event: FsmEvent) -> Vec<FsmAction> {
        let mut actions = Vec::new();
        use FsmEvent as E;
        use FsmState as S;
        match (self.state, event) {
            (S::Idle, E::ManualStart) | (S::Idle, E::Timer(TimerKind::ConnectRetry)) => {
                if self.cfg.passive {
                    self.state = S::Active;
                } else {
                    actions.push(FsmAction::OpenTransport);
                    let delay = self.retry_delay();
                    actions.push(FsmAction::ArmTimer(TimerKind::ConnectRetry, delay));
                    self.state = S::Connect;
                }
            }
            (S::Connect, E::TcpConnected) | (S::Active, E::TcpConnected) => {
                actions.push(FsmAction::StopTimer(TimerKind::ConnectRetry));
                actions.push(FsmAction::Send(Message::Open(self.our_open())));
                // RFC: large hold timer while waiting for OPEN.
                actions.push(FsmAction::ArmTimer(TimerKind::Hold, 240));
                self.state = S::OpenSent;
            }
            (S::Connect, E::Timer(TimerKind::ConnectRetry)) => {
                actions.push(FsmAction::OpenTransport);
                let delay = self.retry_delay();
                actions.push(FsmAction::ArmTimer(TimerKind::ConnectRetry, delay));
            }
            (S::Connect, E::TcpClosed) | (S::Active, E::TcpClosed) => {
                self.state = S::Active;
                let delay = self.retry_delay();
                actions.push(FsmAction::ArmTimer(TimerKind::ConnectRetry, delay));
            }
            (S::Active, E::Timer(TimerKind::ConnectRetry))
                if !self.cfg.passive => {
                    actions.push(FsmAction::OpenTransport);
                    let delay = self.retry_delay();
                    actions.push(FsmAction::ArmTimer(TimerKind::ConnectRetry, delay));
                    self.state = S::Connect;
                }
            (S::OpenSent, E::Msg(Message::Open(open)))
            | (S::Active, E::Msg(Message::Open(open))) => {
                // Active + OPEN covers passive sessions where the peer's
                // transport and OPEN race our notification of it.
                if self.state == S::Active {
                    actions.push(FsmAction::Send(Message::Open(self.our_open())));
                }
                self.handle_open(open, &mut actions);
            }
            (S::OpenConfirm, E::Msg(Message::Keepalive)) => {
                self.state = S::Established;
                self.established_count += 1;
                if self.negotiated.hold_time > 0 {
                    actions.push(FsmAction::ArmTimer(TimerKind::Hold, self.negotiated.hold_time));
                }
                actions.push(FsmAction::SessionUp);
            }
            (S::Established, E::Msg(Message::Keepalive))
                if self.negotiated.hold_time > 0 => {
                    // The peer is alive past OPEN exchange: the session has
                    // proven stable, so the backoff schedule resets.
                    self.failures = 0;
                    actions.push(FsmAction::ArmTimer(TimerKind::Hold, self.negotiated.hold_time));
                }
            (S::Established, E::Msg(Message::Update(update))) => {
                self.failures = 0;
                if self.negotiated.hold_time > 0 {
                    actions.push(FsmAction::ArmTimer(TimerKind::Hold, self.negotiated.hold_time));
                }
                actions.push(FsmAction::DeliverUpdate(update));
            }
            (S::Established, E::Msg(Message::RouteRefresh { afi, safi })) => {
                self.failures = 0;
                if self.negotiated.hold_time > 0 {
                    actions.push(FsmAction::ArmTimer(TimerKind::Hold, self.negotiated.hold_time));
                }
                actions.push(FsmAction::DeliverRouteRefresh { afi, safi });
            }
            (S::Established, E::Timer(TimerKind::Keepalive)) => {
                actions.push(FsmAction::Send(Message::Keepalive));
                actions.push(FsmAction::ArmTimer(
                    TimerKind::Keepalive,
                    Self::keepalive_interval(self.negotiated.hold_time),
                ));
            }
            (S::OpenConfirm, E::Timer(TimerKind::Keepalive)) => {
                actions.push(FsmAction::Send(Message::Keepalive));
                actions.push(FsmAction::ArmTimer(
                    TimerKind::Keepalive,
                    Self::keepalive_interval(self.negotiated.hold_time),
                ));
            }
            (_, E::Timer(TimerKind::Hold)) => {
                if matches!(self.state, S::OpenSent | S::OpenConfirm | S::Established) {
                    self.drop_session(
                        &mut actions,
                        "hold timer expired",
                        Some(NotificationMsg::hold_timer_expired()),
                    );
                }
            }
            (_, E::Msg(Message::Notification(_))) => {
                self.drop_session(&mut actions, "notification received", None);
            }
            (_, E::TcpClosed) => {
                self.drop_session(&mut actions, "transport closed", None);
            }
            (_, E::ManualStop) => {
                let notify = if matches!(self.state, S::OpenSent | S::OpenConfirm | S::Established)
                {
                    Some(NotificationMsg::cease())
                } else {
                    None
                };
                self.drop_session(&mut actions, "manual stop", notify);
                // Manual stop should not auto-restart.
                actions.retain(|a| !matches!(a, FsmAction::ArmTimer(TimerKind::ConnectRetry, _)));
                actions.push(FsmAction::StopTimer(TimerKind::ConnectRetry));
            }
            (state, E::Msg(msg))
                // FSM error: unexpected message for this state.
                if !matches!(state, S::Idle) => {
                    let notify = NotificationMsg::new(crate::message::ERR_FSM, 0);
                    self.drop_session(&mut actions, "fsm error", Some(notify));
                    let _ = msg;
                }
            _ => {}
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SessionFsm, SessionFsm) {
        let a = SessionFsm::new(FsmConfig::ebgp(Asn(47065), RouterId(1), Asn(100)).with_add_path());
        let b = SessionFsm::new(
            FsmConfig::ebgp(Asn(100), RouterId(2), Asn(47065))
                .with_add_path()
                .with_passive(),
        );
        (a, b)
    }

    /// Drive two FSMs against each other, relaying Send actions, until no
    /// new messages are produced. Returns all actions seen per side.
    fn converge(a: &mut SessionFsm, b: &mut SessionFsm) {
        let mut queue_a: Vec<FsmEvent> = vec![FsmEvent::ManualStart];
        let mut queue_b: Vec<FsmEvent> = vec![FsmEvent::ManualStart];
        let mut transport_up = false;
        for _ in 0..50 {
            if queue_a.is_empty() && queue_b.is_empty() {
                break;
            }
            let mut next_a = Vec::new();
            let mut next_b = Vec::new();
            for ev in queue_a.drain(..) {
                for act in a.handle(ev) {
                    match act {
                        FsmAction::OpenTransport if !transport_up => {
                            transport_up = true;
                            next_a.push(FsmEvent::TcpConnected);
                            next_b.push(FsmEvent::TcpConnected);
                        }
                        FsmAction::Send(m) => next_b.push(FsmEvent::Msg(m)),
                        _ => {}
                    }
                }
            }
            for ev in queue_b.drain(..) {
                for act in b.handle(ev) {
                    if let FsmAction::Send(m) = act {
                        next_a.push(FsmEvent::Msg(m));
                    }
                }
            }
            queue_a = next_a;
            queue_b = next_b;
        }
    }

    #[test]
    fn sessions_establish() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        assert!(a.is_established(), "a state {:?}", a.state());
        assert!(b.is_established(), "b state {:?}", b.state());
        assert_eq!(a.negotiated().peer_asn, Asn(100));
        assert_eq!(b.negotiated().peer_asn, Asn(47065));
        assert_eq!(a.negotiated().hold_time, 90);
        assert!(a.codec_ctx().add_path_v4);
        assert!(a.codec_ctx().add_path_v6);
    }

    #[test]
    fn add_path_requires_both_sides() {
        let mut a = SessionFsm::new(FsmConfig::ebgp(Asn(1), RouterId(1), Asn(2)).with_add_path());
        let mut b = SessionFsm::new(FsmConfig::ebgp(Asn(2), RouterId(2), Asn(1)).with_passive());
        converge(&mut a, &mut b);
        assert!(a.is_established());
        assert!(!a.codec_ctx().add_path_v4, "peer did not offer add-path");
        assert!(!b.codec_ctx().add_path_v4);
    }

    #[test]
    fn bad_peer_asn_sends_notification() {
        let mut a = SessionFsm::new(FsmConfig::ebgp(Asn(1), RouterId(1), Asn(2)));
        a.handle(FsmEvent::ManualStart);
        a.handle(FsmEvent::TcpConnected);
        let evil_open = OpenMsg::standard(Asn(666), 90, RouterId(9), false);
        let actions = a.handle(FsmEvent::Msg(Message::Open(evil_open)));
        assert!(actions.iter().any(|x| matches!(
            x,
            FsmAction::Send(Message::Notification(n)) if n.code == ERR_OPEN && n.subcode == 2
        )));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn hold_timer_expiry_tears_down() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        let actions = a.handle(FsmEvent::Timer(TimerKind::Hold));
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::SessionDown("hold timer expired"))));
        assert!(actions.iter().any(|x| matches!(
            x,
            FsmAction::Send(Message::Notification(n)) if n.code == crate::message::ERR_HOLD_TIMER
        )));
        // Auto-restart armed.
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::ArmTimer(TimerKind::ConnectRetry, _))));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn updates_delivered_only_when_established() {
        let (mut a, mut b) = pair();
        let update = UpdateMsg::end_of_rib();
        // Not established: an UPDATE is an FSM error.
        let actions = a.handle(FsmEvent::Msg(Message::Update(update.clone())));
        assert!(!actions
            .iter()
            .any(|x| matches!(x, FsmAction::DeliverUpdate(_))));
        converge(&mut a, &mut b);
        let actions = a.handle(FsmEvent::Msg(Message::Update(update)));
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::DeliverUpdate(_))));
    }

    #[test]
    fn keepalive_timer_sends_keepalive() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        let actions = a.handle(FsmEvent::Timer(TimerKind::Keepalive));
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::Send(Message::Keepalive))));
        // Timer re-armed at hold/3.
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::ArmTimer(TimerKind::Keepalive, 30))));
    }

    #[test]
    fn manual_stop_sends_cease_and_does_not_restart() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        let actions = a.handle(FsmEvent::ManualStop);
        assert!(actions.iter().any(|x| matches!(
            x,
            FsmAction::Send(Message::Notification(n)) if n.code == 6
        )));
        assert!(!actions
            .iter()
            .any(|x| matches!(x, FsmAction::ArmTimer(TimerKind::ConnectRetry, _))));
        assert_eq!(a.state(), FsmState::Idle);
    }

    #[test]
    fn notification_drops_session() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        let actions = a.handle(FsmEvent::Msg(Message::Notification(
            NotificationMsg::cease(),
        )));
        assert!(actions
            .iter()
            .any(|x| matches!(x, FsmAction::SessionDown("notification received"))));
        assert_eq!(a.established_count, 1);
    }

    fn armed_retry(actions: &[FsmAction]) -> Option<u16> {
        actions.iter().find_map(|a| match a {
            FsmAction::ArmTimer(TimerKind::ConnectRetry, secs) => Some(*secs),
            _ => None,
        })
    }

    fn no_jitter() -> TimerConfig {
        TimerConfig {
            jitter_pct: 0,
            ..TimerConfig::default()
        }
    }

    #[test]
    fn retry_backoff_doubles_caps_and_damps() {
        let mut a =
            SessionFsm::new(FsmConfig::ebgp(Asn(1), RouterId(1), Asn(2)).with_timers(no_jitter()));
        // Each TcpClosed is a session reset; the retry delay must follow
        // min(30 * 2^(n-1), 120), then gain 30 s per reset past the fourth,
        // bounded by 240 s.
        let expect = [30, 60, 120, 120, 150, 180, 210, 240, 240];
        for (n, want) in expect.iter().enumerate() {
            let actions = a.handle(FsmEvent::TcpClosed);
            assert_eq!(
                armed_retry(&actions),
                Some(*want),
                "reset #{} must arm {}s",
                n + 1,
                want
            );
        }
    }

    #[test]
    fn fixed_timers_preserve_legacy_delay() {
        let mut a = SessionFsm::new(
            FsmConfig::ebgp(Asn(1), RouterId(1), Asn(2)).with_timers(TimerConfig::fixed(30)),
        );
        for _ in 0..6 {
            let actions = a.handle(FsmEvent::TcpClosed);
            assert_eq!(armed_retry(&actions), Some(30));
        }
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let run = || {
            let mut a = SessionFsm::new(FsmConfig::ebgp(Asn(1), RouterId(1), Asn(2)));
            (0..8)
                .map(|_| armed_retry(&a.handle(FsmEvent::TcpClosed)).unwrap())
                .collect::<Vec<u16>>()
        };
        let first = run();
        assert_eq!(first, run(), "same config, same jitter stream");
        // First reset: 30 s base plus at most 25% jitter.
        assert!(
            (30..=37).contains(&first[0]),
            "delay {} out of range",
            first[0]
        );
        // Damped ceiling: 240 s plus at most 25%.
        assert!(first.iter().all(|&d| d <= 300));
        // Different sessions de-synchronize.
        let mut b = SessionFsm::new(FsmConfig::ebgp(Asn(1), RouterId(7), Asn(9)));
        let other: Vec<u16> = (0..8)
            .map(|_| armed_retry(&b.handle(FsmEvent::TcpClosed)).unwrap())
            .collect();
        assert_ne!(first, other, "distinct identities draw distinct jitter");
    }

    #[test]
    fn stable_session_resets_backoff() {
        let cfg = FsmConfig::ebgp(Asn(47065), RouterId(1), Asn(100))
            .with_add_path()
            .with_timers(no_jitter());
        let mut a = SessionFsm::new(cfg);
        let mut b = SessionFsm::new(
            FsmConfig::ebgp(Asn(100), RouterId(2), Asn(47065))
                .with_add_path()
                .with_passive(),
        );
        // Two raw resets escalate the schedule.
        a.handle(FsmEvent::TcpClosed);
        let actions = a.handle(FsmEvent::TcpClosed);
        assert_eq!(armed_retry(&actions), Some(60));
        assert_eq!(a.consecutive_failures(), 2);
        // Establish and prove stability with a KEEPALIVE.
        converge(&mut a, &mut b);
        assert!(a.is_established());
        a.handle(FsmEvent::Msg(Message::Keepalive));
        assert_eq!(a.consecutive_failures(), 0);
        // The next reset starts over at the base delay.
        let actions = a.handle(FsmEvent::TcpClosed);
        assert_eq!(armed_retry(&actions), Some(30));
    }

    #[test]
    fn flap_counter_increments() {
        let (mut a, mut b) = pair();
        converge(&mut a, &mut b);
        assert_eq!(a.established_count, 1);
        a.handle(FsmEvent::TcpClosed);
        b.handle(FsmEvent::TcpClosed);
        assert_eq!(a.state(), FsmState::Idle);
        // Reconverge.
        converge(&mut a, &mut b);
        assert_eq!(a.established_count, 2);
    }
}
