//! Ethernet MAC addresses.
//!
//! vBGP's data-plane delegation hinges on MAC addresses: each BGP neighbor is
//! assigned a distinct virtual MAC, and the destination MAC of a frame encodes
//! the experiment's routing decision (paper §3.2.2).

use std::fmt;
use std::str::FromStr;

/// A 48-bit Ethernet MAC address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address `ff:ff:ff:ff:ff:ff`.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// The all-zero address, used as "unset".
    pub const ZERO: MacAddr = MacAddr([0; 6]);

    /// Construct from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddr(octets)
    }

    /// Deterministically derive a locally-administered unicast MAC from a
    /// 32-bit identifier. The low bit of the first octet (multicast) is kept
    /// clear and the locally-administered bit set, matching how PEERING
    /// synthesizes per-neighbor virtual MACs.
    pub const fn from_id(id: u32) -> Self {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }

    /// The 32-bit identifier embedded by [`MacAddr::from_id`], if this MAC
    /// has the synthetic prefix.
    pub fn id(self) -> Option<u32> {
        if self.0[0] == 0x02 && self.0[1] == 0x00 {
            Some(u32::from_be_bytes([
                self.0[2], self.0[3], self.0[4], self.0[5],
            ]))
        } else {
            None
        }
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(self) -> bool {
        self == Self::BROADCAST
    }

    /// Whether the multicast bit is set (includes broadcast).
    pub fn is_multicast(self) -> bool {
        self.0[0] & 0x01 != 0
    }

    /// Whether this is a unicast address.
    pub fn is_unicast(self) -> bool {
        !self.is_multicast()
    }

    /// Raw octets.
    pub const fn octets(self) -> [u8; 6] {
        self.0
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// Error parsing a MAC address from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacError;

impl fmt::Display for ParseMacError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid MAC address syntax")
    }
}

impl std::error::Error for ParseMacError {}

impl FromStr for MacAddr {
    type Err = ParseMacError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut octets = [0u8; 6];
        let mut parts = s.split(':');
        for octet in octets.iter_mut() {
            let part = parts.next().ok_or(ParseMacError)?;
            if part.len() != 2 {
                return Err(ParseMacError);
            }
            *octet = u8::from_str_radix(part, 16).map_err(|_| ParseMacError)?;
        }
        if parts.next().is_some() {
            return Err(ParseMacError);
        }
        Ok(MacAddr(octets))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_roundtrip() {
        for id in [0u32, 1, 0xdead_beef, u32::MAX] {
            let mac = MacAddr::from_id(id);
            assert!(mac.is_unicast());
            assert_eq!(mac.id(), Some(id));
        }
    }

    #[test]
    fn broadcast_properties() {
        assert!(MacAddr::BROADCAST.is_broadcast());
        assert!(MacAddr::BROADCAST.is_multicast());
        assert!(!MacAddr::BROADCAST.is_unicast());
        assert_eq!(MacAddr::BROADCAST.id(), None);
    }

    #[test]
    fn display_and_parse() {
        let mac = MacAddr::new([0x02, 0x00, 0x12, 0x34, 0x56, 0x78]);
        let text = mac.to_string();
        assert_eq!(text, "02:00:12:34:56:78");
        assert_eq!(text.parse::<MacAddr>().unwrap(), mac);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<MacAddr>().is_err());
        assert!("02:00:12:34:56".parse::<MacAddr>().is_err());
        assert!("02:00:12:34:56:78:9a".parse::<MacAddr>().is_err());
        assert!("02:00:12:34:56:zz".parse::<MacAddr>().is_err());
        assert!("0200:12:34:56:78".parse::<MacAddr>().is_err());
    }
}
