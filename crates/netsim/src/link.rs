//! Point-to-point links with latency, bandwidth and fault injection.
//!
//! Links model the physics the paper's deployment inherits from real networks:
//! propagation delay, serialization delay (bandwidth), a bounded transmit
//! queue (tail drop), and — following smoltcp's example programs — optional
//! fault injection (random loss and corruption) for robustness testing.

use crate::time::{SimDuration, SimTime};

/// Configuration of one link direction (links are symmetric by default but
/// each direction keeps independent queue state).
#[derive(Clone, Copy, Debug)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimDuration,
    /// Capacity in bits per second. `None` means infinite (zero serialization
    /// delay), useful for control-plane-only topologies.
    pub bandwidth_bps: Option<u64>,
    /// Maximum bytes that may be queued awaiting serialization before tail
    /// drop kicks in. Ignored when bandwidth is infinite.
    pub queue_bytes: usize,
    /// Fault injection knobs.
    pub faults: FaultInjector,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_micros(50),
            bandwidth_bps: None,
            queue_bytes: 256 * 1024,
            faults: FaultInjector::default(),
        }
    }
}

impl LinkConfig {
    /// A link with the given latency and no bandwidth limit.
    pub fn with_latency(latency: SimDuration) -> Self {
        LinkConfig {
            latency,
            ..Default::default()
        }
    }

    /// A provisioned link: latency plus a bandwidth cap, as used for the
    /// PEERING backbone VLANs over Internet2 AL2S (§4.3.1).
    pub fn provisioned(latency: SimDuration, bandwidth_bps: u64) -> Self {
        LinkConfig {
            latency,
            bandwidth_bps: Some(bandwidth_bps),
            ..Default::default()
        }
    }

    /// Builder: set fault injection.
    pub fn with_faults(mut self, faults: FaultInjector) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: set the queue bound.
    pub fn with_queue_bytes(mut self, bytes: usize) -> Self {
        self.queue_bytes = bytes;
        self
    }

    /// Serialization delay for a frame of `len` bytes.
    pub fn serialization_delay(&self, len: usize) -> SimDuration {
        match self.bandwidth_bps {
            None => SimDuration::ZERO,
            Some(0) => SimDuration::from_secs(u64::MAX / 2_000_000_000), // effectively never
            Some(bps) => {
                SimDuration::from_nanos((len as u64 * 8).saturating_mul(1_000_000_000) / bps)
            }
        }
    }
}

/// Random loss / corruption knobs, mirroring smoltcp's `--drop-chance` and
/// `--corrupt-chance` example options. Probabilities are in percent.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultInjector {
    /// Percent chance a frame is silently dropped.
    pub drop_pct: u8,
    /// Percent chance one octet of the payload is flipped.
    pub corrupt_pct: u8,
    /// Percent chance a frame's delivery is delayed by a random extra
    /// amount up to [`FaultInjector::reorder_window`], letting later frames
    /// overtake it.
    pub reorder_pct: u8,
    /// Maximum extra delay applied to reordered frames.
    pub reorder_window: SimDuration,
    /// Percent chance a delivered frame arrives twice.
    pub duplicate_pct: u8,
    /// Frames larger than this are dropped (`None` disables).
    pub size_limit: Option<usize>,
    /// Apply loss/corruption only to data-plane frames (IPv4/IPv6). BGP
    /// control traffic rides TCP in the real system, which retransmits;
    /// exempting it models that reliability without simulating TCP for
    /// every session.
    pub data_plane_only: bool,
}

impl FaultInjector {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drop with the given percent probability.
    pub fn dropping(drop_pct: u8) -> Self {
        FaultInjector {
            drop_pct,
            ..Default::default()
        }
    }

    /// Restrict faults to data-plane (IP) frames.
    pub fn data_plane_only(mut self) -> Self {
        self.data_plane_only = true;
        self
    }

    /// Builder: reorder with the given probability, delaying affected
    /// frames by up to `window`.
    pub fn reordering(mut self, reorder_pct: u8, window: SimDuration) -> Self {
        self.reorder_pct = reorder_pct;
        self.reorder_window = window;
        self
    }

    /// Builder: duplicate delivered frames with the given probability.
    pub fn duplicating(mut self, duplicate_pct: u8) -> Self {
        self.duplicate_pct = duplicate_pct;
        self
    }

    /// Builder: corrupt one payload octet with the given probability.
    pub fn corrupting(mut self, corrupt_pct: u8) -> Self {
        self.corrupt_pct = corrupt_pct;
        self
    }

    /// True when reordering or duplication is configured (the simulator
    /// only draws the extra RNG rolls these need when they can matter, so
    /// enabling them never perturbs the random stream of runs that do not
    /// use them).
    pub fn perturbs_delivery(&self) -> bool {
        self.reorder_pct > 0 || self.duplicate_pct > 0
    }
}

/// Per-direction counters, exposed for experiments and tests.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinkStats {
    /// Frames handed to the link.
    pub tx_frames: u64,
    /// Bytes handed to the link.
    pub tx_bytes: u64,
    /// Frames delivered to the far end.
    pub delivered_frames: u64,
    /// Frames lost to fault injection.
    pub faulted_frames: u64,
    /// Frames lost to queue overflow.
    pub overflow_frames: u64,
}

/// Internal per-direction state of a link.
#[derive(Debug)]
pub struct Link {
    /// Configuration shared by both directions.
    pub config: LinkConfig,
    /// Administrative state: a downed link drops every frame (chaos-plan
    /// link flaps and partitions) but keeps its ports wired so it can come
    /// back up in place.
    pub up: bool,
    /// The fault injector the link was created with, restored when a chaos
    /// fault burst ends.
    pub base_faults: FaultInjector,
    /// Time each direction's transmitter becomes free.
    pub next_free: [SimTime; 2],
    /// Per-direction stats.
    pub stats: [LinkStats; 2],
}

/// Outcome of offering a frame to a link direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TxOutcome {
    /// Frame will arrive at the far end at the given time.
    Deliver(SimTime),
    /// Frame was dropped (queue overflow or fault injection).
    Dropped,
}

impl Link {
    /// Create a link from a config.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            base_faults: config.faults,
            config,
            up: true,
            next_free: [SimTime::ZERO; 2],
            stats: [LinkStats::default(); 2],
        }
    }

    /// Offer a frame of `len` bytes to direction `dir` at time `now`.
    /// `drop_roll` and `corrupt_roll` are pre-drawn uniform [0,100) values so
    /// the link itself holds no RNG (keeps the simulator's RNG the single
    /// source of randomness).
    pub fn transmit(
        &mut self,
        dir: usize,
        now: SimTime,
        len: usize,
        drop_roll: u8,
        corrupt_roll: u8,
    ) -> (TxOutcome, bool) {
        self.transmit_typed(dir, now, len, drop_roll, corrupt_roll, true)
    }

    /// Like [`Link::transmit`], with `is_data_plane` telling the fault
    /// injector whether the frame carries IP (see
    /// [`FaultInjector::data_plane_only`]).
    pub fn transmit_typed(
        &mut self,
        dir: usize,
        now: SimTime,
        len: usize,
        drop_roll: u8,
        corrupt_roll: u8,
        is_data_plane: bool,
    ) -> (TxOutcome, bool) {
        let faults_apply = is_data_plane || !self.config.faults.data_plane_only;
        let stats = &mut self.stats[dir];
        stats.tx_frames += 1;
        stats.tx_bytes += len as u64;

        if !self.up {
            stats.faulted_frames += 1;
            return (TxOutcome::Dropped, false);
        }
        if let Some(limit) = self.config.faults.size_limit {
            if len > limit {
                stats.faulted_frames += 1;
                return (TxOutcome::Dropped, false);
            }
        }
        if faults_apply && drop_roll < self.config.faults.drop_pct {
            stats.faulted_frames += 1;
            return (TxOutcome::Dropped, false);
        }

        // Queue bound: bytes currently awaiting serialization is the backlog
        // time times the link rate.
        if let Some(bps) = self.config.bandwidth_bps {
            let backlog = self.next_free[dir].saturating_since(now);
            let backlog_bytes =
                (backlog.as_nanos() as u128 * bps as u128 / 8 / 1_000_000_000) as usize;
            if backlog_bytes + len > self.config.queue_bytes {
                stats.overflow_frames += 1;
                return (TxOutcome::Dropped, false);
            }
        }

        let start = self.next_free[dir].max(now);
        let departs = start + self.config.serialization_delay(len);
        self.next_free[dir] = departs;
        let arrives = departs + self.config.latency;
        stats.delivered_frames += 1;

        let corrupt = faults_apply && corrupt_roll < self.config.faults.corrupt_pct;
        (TxOutcome::Deliver(arrives), corrupt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn infinite_bandwidth_is_pure_latency() {
        let mut link = Link::new(LinkConfig::with_latency(SimDuration::from_millis(10)));
        let (out, corrupt) = link.transmit(0, SimTime::ZERO, 1500, 99, 99);
        assert_eq!(out, TxOutcome::Deliver(SimTime::from_nanos(10_000_000)));
        assert!(!corrupt);
    }

    #[test]
    fn serialization_delay_accumulates() {
        // 8 Mbps: a 1000-byte frame takes 1 ms to serialize.
        let cfg = LinkConfig::provisioned(SimDuration::ZERO, 8_000_000);
        let mut link = Link::new(cfg);
        let (o1, _) = link.transmit(0, SimTime::ZERO, 1000, 99, 99);
        let (o2, _) = link.transmit(0, SimTime::ZERO, 1000, 99, 99);
        assert_eq!(o1, TxOutcome::Deliver(SimTime::from_nanos(1_000_000)));
        assert_eq!(o2, TxOutcome::Deliver(SimTime::from_nanos(2_000_000)));
    }

    #[test]
    fn directions_are_independent() {
        let cfg = LinkConfig::provisioned(SimDuration::ZERO, 8_000_000);
        let mut link = Link::new(cfg);
        let (o1, _) = link.transmit(0, SimTime::ZERO, 1000, 99, 99);
        let (o2, _) = link.transmit(1, SimTime::ZERO, 1000, 99, 99);
        assert_eq!(o1, o2);
    }

    #[test]
    fn queue_overflow_tail_drops() {
        // 8 kbps and a 2000-byte queue: the third 1000-byte frame overflows.
        let cfg = LinkConfig::provisioned(SimDuration::ZERO, 8_000).with_queue_bytes(2000);
        let mut link = Link::new(cfg);
        assert!(matches!(
            link.transmit(0, SimTime::ZERO, 1000, 99, 99).0,
            TxOutcome::Deliver(_)
        ));
        assert!(matches!(
            link.transmit(0, SimTime::ZERO, 1000, 99, 99).0,
            TxOutcome::Deliver(_)
        ));
        assert_eq!(
            link.transmit(0, SimTime::ZERO, 1000, 99, 99).0,
            TxOutcome::Dropped
        );
        assert_eq!(link.stats[0].overflow_frames, 1);
    }

    #[test]
    fn fault_injection_uses_rolls() {
        let cfg = LinkConfig::default().with_faults(FaultInjector::dropping(15));
        let mut link = Link::new(cfg);
        assert_eq!(
            link.transmit(0, SimTime::ZERO, 100, 14, 99).0,
            TxOutcome::Dropped
        );
        assert!(matches!(
            link.transmit(0, SimTime::ZERO, 100, 15, 99).0,
            TxOutcome::Deliver(_)
        ));
        assert_eq!(link.stats[0].faulted_frames, 1);
    }

    #[test]
    fn size_limit_drops_jumbo() {
        let cfg = LinkConfig::default().with_faults(FaultInjector {
            size_limit: Some(1500),
            ..Default::default()
        });
        let mut link = Link::new(cfg);
        assert_eq!(
            link.transmit(0, SimTime::ZERO, 1501, 99, 99).0,
            TxOutcome::Dropped
        );
        assert!(matches!(
            link.transmit(0, SimTime::ZERO, 1500, 99, 99).0,
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn downed_link_drops_everything() {
        let mut link = Link::new(LinkConfig::default());
        link.up = false;
        assert_eq!(
            link.transmit(0, SimTime::ZERO, 100, 99, 99).0,
            TxOutcome::Dropped
        );
        assert_eq!(link.stats[0].faulted_frames, 1);
        link.up = true;
        assert!(matches!(
            link.transmit(0, SimTime::ZERO, 100, 99, 99).0,
            TxOutcome::Deliver(_)
        ));
    }

    #[test]
    fn corruption_flag_propagates() {
        let cfg = LinkConfig::default().with_faults(FaultInjector {
            corrupt_pct: 50,
            ..Default::default()
        });
        let mut link = Link::new(cfg);
        let (_, corrupt) = link.transmit(0, SimTime::ZERO, 100, 99, 10);
        assert!(corrupt);
        let (_, corrupt) = link.transmit(0, SimTime::ZERO, 100, 99, 80);
        assert!(!corrupt);
    }
}
