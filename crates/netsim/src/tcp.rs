//! A Reno-style TCP flow model.
//!
//! Used to reproduce the paper's backbone throughput measurements (§6, iperf3
//! between PoP pairs). This is a *flow model*, not a full TCP implementation:
//! the connection is assumed established (as in a running iperf test) and
//! segments carry synthetic payloads, but the congestion-relevant machinery is
//! real — cumulative ACKs, slow start, congestion avoidance, triple-duplicate-
//! ACK fast retransmit, and RTO with exponential backoff per RFC 6298's
//! simplified estimator. Throughput therefore responds to the link latency,
//! bandwidth, queueing and loss configured in the topology, which is exactly
//! what the §6 experiment varies.

use crate::bytes::Bytes;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use crate::frame::{EtherFrame, EtherType};
use crate::ip::{IpPacket, IpProto};
use crate::mac::MacAddr;
use crate::sim::{Ctx, Node, PortId};
use crate::time::{SimDuration, SimTime};

/// Maximum segment size (payload bytes per segment).
pub const MSS: u64 = 1448;

/// Segments transmitted per window-fill invocation (ACK-clocked pacing:
/// each arriving ACK tops the window up again, so the window still fills,
/// but recovery rewinds no longer blast a full window into a hot queue).
pub const MAX_BURST_SEGMENTS: u64 = 64;

/// Wire format base header length of the simplified TCP segment (SACK
/// blocks add 16 bytes each).
pub const TCP_SEG_HEADER_LEN: usize = 22;

/// Maximum SACK ranges carried per ACK (RFC 2018 fits ~3 in real TCP).
pub const MAX_SACKS: usize = 3;

/// A simplified TCP segment.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TcpSegment {
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Cumulative ACK: next expected byte.
    pub ack: u64,
    /// Payload length in bytes (payload is synthetic zeros on the wire).
    pub len: u32,
    /// ACK-only segments have `len == 0` and this set.
    pub is_ack: bool,
    /// SACK blocks: out-of-order runs the receiver holds (RFC 2018).
    pub sacks: Vec<(u64, u64)>,
}

impl TcpSegment {
    /// Serialize: header (+ SACK blocks) plus `len` synthetic payload bytes.
    pub fn encode(&self) -> Bytes {
        let n = self.sacks.len().min(MAX_SACKS);
        let mut out = Vec::with_capacity(TCP_SEG_HEADER_LEN + 16 * n + self.len as usize);
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.extend_from_slice(&self.len.to_be_bytes());
        out.push(self.is_ack as u8);
        out.push(n as u8);
        for &(start, end) in self.sacks.iter().take(n) {
            out.extend_from_slice(&start.to_be_bytes());
            out.extend_from_slice(&end.to_be_bytes());
        }
        out.resize(out.len() + self.len as usize, 0);
        Bytes::from(out)
    }

    /// Parse; rejects truncated segments (e.g. corrupted by fault injection).
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < TCP_SEG_HEADER_LEN {
            return None;
        }
        let seq = u64::from_be_bytes(buf[0..8].try_into().unwrap());
        let ack = u64::from_be_bytes(buf[8..16].try_into().unwrap());
        let len = u32::from_be_bytes(buf[16..20].try_into().unwrap());
        let is_ack = buf[20] != 0;
        let n = buf[21] as usize;
        if n > MAX_SACKS {
            return None;
        }
        let mut pos = TCP_SEG_HEADER_LEN;
        let mut sacks = Vec::with_capacity(n);
        for _ in 0..n {
            if pos + 16 > buf.len() {
                return None;
            }
            let start = u64::from_be_bytes(buf[pos..pos + 8].try_into().unwrap());
            let end = u64::from_be_bytes(buf[pos + 8..pos + 16].try_into().unwrap());
            if end <= start {
                return None;
            }
            sacks.push((start, end));
            pos += 16;
        }
        if buf.len() < pos + len as usize {
            return None;
        }
        Some(TcpSegment {
            seq,
            ack,
            len,
            is_ack,
            sacks,
        })
    }
}

/// Static flow endpoints: the model uses pre-resolved addressing (as if ARP
/// had completed), keeping the benchmark focused on the path properties.
#[derive(Clone, Copy, Debug)]
pub struct TcpFlowConfig {
    /// Sender's MAC.
    pub local_mac: MacAddr,
    /// Receiver's MAC (or the next-hop's, when crossing routers).
    pub remote_mac: MacAddr,
    /// Sender's IP.
    pub local_ip: Ipv4Addr,
    /// Receiver's IP.
    pub remote_ip: Ipv4Addr,
    /// Total bytes to transfer.
    pub total_bytes: u64,
    /// Initial RTO before any sample (RFC 6298 says 1 s).
    pub initial_rto: SimDuration,
}

impl TcpFlowConfig {
    /// A flow with RFC-default initial RTO.
    pub fn new(
        local_mac: MacAddr,
        remote_mac: MacAddr,
        local_ip: Ipv4Addr,
        remote_ip: Ipv4Addr,
        total_bytes: u64,
    ) -> Self {
        TcpFlowConfig {
            local_mac,
            remote_mac,
            local_ip,
            remote_ip,
            total_bytes,
            initial_rto: SimDuration::from_secs(1),
        }
    }
}

const TOKEN_START: u64 = 0;
const TOKEN_RTO: u64 = 1;

/// The sending endpoint of a flow. Attach to port 0.
pub struct TcpSender {
    cfg: TcpFlowConfig,
    snd_una: u64,
    snd_nxt: u64,
    cwnd: u64,
    ssthresh: u64,
    dup_acks: u32,
    in_recovery: bool,
    /// Recovery point: highest sequence outstanding when loss was detected.
    recover: u64,
    /// SACK scoreboard: start → end of runs the receiver holds above
    /// `snd_una` (RFC 2018/6675-style loss recovery).
    sacked: BTreeMap<u64, u64>,
    /// Hole-walk cursor during recovery (each hole retransmitted once).
    hole_scan: u64,
    rto: SimDuration,
    srtt: Option<SimDuration>,
    rttvar: SimDuration,
    rtt_probe: Option<(u64, SimTime)>,
    rto_generation: u64,
    started: Option<SimTime>,
    /// Set when the final byte was cumulatively acknowledged.
    pub completed: Option<SimTime>,
    /// Retransmitted segments (fast retransmit + RTO).
    pub retransmits: u64,
    /// Segments sent (including retransmits).
    pub segments_sent: u64,
    /// RTO expirations.
    pub timeouts: u64,
}

impl TcpSender {
    /// Create a sender; it begins transmitting when its start timer fires
    /// (arm with [`crate::sim::Simulator::set_timer`], token 0).
    pub fn new(cfg: TcpFlowConfig) -> Self {
        TcpSender {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: 10 * MSS, // RFC 6928 initial window
            ssthresh: u64::MAX / 2,
            dup_acks: 0,
            in_recovery: false,
            recover: 0,
            sacked: BTreeMap::new(),
            hole_scan: 0,
            rto: cfg.initial_rto,
            srtt: None,
            rttvar: SimDuration::ZERO,
            rtt_probe: None,
            rto_generation: 0,
            started: None,
            completed: None,
            retransmits: 0,
            segments_sent: 0,
            timeouts: 0,
        }
    }

    /// Goodput in bits per second, if the transfer completed.
    pub fn throughput_bps(&self) -> Option<f64> {
        let (start, end) = (self.started?, self.completed?);
        let secs = end.saturating_since(start).as_secs_f64();
        if secs <= 0.0 {
            return None;
        }
        Some(self.cfg.total_bytes as f64 * 8.0 / secs)
    }

    /// Current congestion window in bytes (exposed for tests/ablations).
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    fn send_segment(&mut self, ctx: &mut Ctx<'_>, seq: u64, len: u64, retransmit: bool) {
        let seg = TcpSegment {
            seq,
            ack: 0,
            len: len as u32,
            is_ack: false,
            sacks: Vec::new(),
        };
        let ip = IpPacket::new(
            self.cfg.local_ip,
            self.cfg.remote_ip,
            IpProto::Tcp,
            seg.encode(),
        );
        let frame = EtherFrame::new(
            self.cfg.remote_mac,
            self.cfg.local_mac,
            EtherType::Ipv4,
            ip.encode(),
        );
        ctx.send_frame(PortId(0), frame);
        self.segments_sent += 1;
        if retransmit {
            self.retransmits += 1;
        } else if self.rtt_probe.is_none() {
            self.rtt_probe = Some((seq + len, ctx.now()));
        }
    }

    fn sacked_bytes(&self) -> u64 {
        self.sacked.iter().map(|(s, e)| e - s).sum()
    }

    fn note_sacks(&mut self, sacks: &[(u64, u64)]) {
        for &(start, end) in sacks {
            let start = start.max(self.snd_una);
            if end <= start {
                continue;
            }
            // Merge into the scoreboard.
            let mut new_start = start;
            let mut new_end = end;
            let overlapping: Vec<u64> = self
                .sacked
                .range(..=end)
                .filter(|(&s, &e)| e >= start || s <= end)
                .filter(|(&s, &e)| !(e < start || s > end))
                .map(|(&s, _)| s)
                .collect();
            for s in overlapping {
                if let Some(e) = self.sacked.remove(&s) {
                    new_start = new_start.min(s);
                    new_end = new_end.max(e);
                }
            }
            self.sacked.insert(new_start, new_end);
        }
    }

    fn prune_sacked(&mut self) {
        let una = self.snd_una;
        let below: Vec<u64> = self.sacked.range(..una).map(|(&s, _)| s).collect();
        for s in below {
            if let Some(e) = self.sacked.remove(&s) {
                if e > una {
                    self.sacked.insert(una, e);
                }
            }
        }
    }

    fn is_sacked_at(&self, pos: u64) -> Option<u64> {
        self.sacked
            .range(..=pos)
            .next_back()
            .filter(|(_, &e)| e > pos)
            .map(|(_, &e)| e)
    }

    fn fill_window(&mut self, ctx: &mut Ctx<'_>) {
        if self.snd_nxt < self.snd_una {
            self.snd_nxt = self.snd_una;
        }
        let limit = self
            .snd_una
            .saturating_add(self.cwnd)
            .min(self.cfg.total_bytes);
        let mut burst = 0;
        while self.snd_nxt < limit && burst < MAX_BURST_SEGMENTS {
            burst += 1;
            let len = MSS.min(limit - self.snd_nxt);
            let seq = self.snd_nxt;
            self.snd_nxt += len;
            self.send_segment(ctx, seq, len, false);
        }
    }

    /// Highest SACKed byte (or `snd_una` when the scoreboard is empty).
    fn high_sack(&self) -> u64 {
        self.sacked
            .iter()
            .next_back()
            .map(|(_, &e)| e)
            .unwrap_or(self.snd_una)
            .max(self.snd_una)
    }

    /// Bytes presumed lost and not yet retransmitted: un-SACKed holes below
    /// the highest SACKed byte that the hole walk has not reached (RFC
    /// 6675's IsLost heuristic).
    fn unretx_hole_bytes(&self) -> u64 {
        let end = self.recover.min(self.high_sack());
        let mut pos = self.hole_scan.max(self.snd_una);
        let mut total = 0;
        while pos < end {
            if let Some(e) = self.is_sacked_at(pos) {
                pos = e;
                continue;
            }
            let next = self
                .sacked
                .range(pos..)
                .next()
                .map(|(&s, _)| s)
                .unwrap_or(end)
                .min(end);
            total += next - pos;
            pos = next;
        }
        total
    }

    /// SACK-directed recovery transmission (RFC 6675's pipe algorithm):
    /// estimate the bytes genuinely in flight (outstanding − SACKed −
    /// presumed-lost), and only transmit — hole retransmissions first, then
    /// new data — while the pipe has room under cwnd.
    fn recovery_send(&mut self, ctx: &mut Ctx<'_>) {
        let mut budget = MAX_BURST_SEGMENTS;
        let mut pipe = (self.snd_nxt - self.snd_una)
            .saturating_sub(self.sacked_bytes())
            .saturating_sub(self.unretx_hole_bytes());
        // 1. Retransmit presumed-lost holes (below the highest SACK).
        let hole_end = self.recover.min(self.high_sack());
        let mut pos = self.hole_scan.max(self.snd_una);
        while budget > 0 && pipe + MSS <= self.cwnd && pos < hole_end {
            if let Some(end) = self.is_sacked_at(pos) {
                pos = end;
                continue;
            }
            let next_sack_start = self
                .sacked
                .range(pos..)
                .next()
                .map(|(&s, _)| s)
                .unwrap_or(hole_end)
                .min(hole_end);
            let len = MSS.min(next_sack_start - pos);
            self.send_segment(ctx, pos, len, true);
            pos += len;
            pipe += len;
            budget -= 1;
        }
        self.hole_scan = self.hole_scan.max(pos);
        // 2. New data with remaining pipe room.
        while budget > 0 && pipe + MSS <= self.cwnd && self.snd_nxt < self.cfg.total_bytes {
            let len = MSS.min(self.cfg.total_bytes - self.snd_nxt);
            let seq = self.snd_nxt;
            self.snd_nxt += len;
            self.send_segment(ctx, seq, len, false);
            pipe += len;
            budget -= 1;
        }
    }

    fn arm_rto(&mut self, ctx: &mut Ctx<'_>) {
        self.rto_generation += 1;
        ctx.set_timer(self.rto, TOKEN_RTO.wrapping_add(self.rto_generation << 1));
    }

    fn update_rtt(&mut self, sample: SimDuration) {
        // RFC 6298 with integer nanoseconds.
        match self.srtt {
            None => {
                self.srtt = Some(sample);
                self.rttvar = SimDuration::from_nanos(sample.as_nanos() / 2);
            }
            Some(srtt) => {
                let err = srtt.as_nanos().abs_diff(sample.as_nanos());
                let rttvar = (self.rttvar.as_nanos() * 3 + err) / 4;
                let srtt = (srtt.as_nanos() * 7 + sample.as_nanos()) / 8;
                self.srtt = Some(SimDuration::from_nanos(srtt));
                self.rttvar = SimDuration::from_nanos(rttvar);
            }
        }
        let srtt = self.srtt.unwrap().as_nanos();
        let rto = srtt + (4 * self.rttvar.as_nanos()).max(1_000_000); // 1 ms granularity floor
        self.rto = SimDuration::from_nanos(rto.max(200_000_000)); // Linux's 200 ms RTO floor
    }

    fn enter_recovery(&mut self, ctx: &mut Ctx<'_>) {
        let flight = self.snd_nxt - self.snd_una;
        self.ssthresh = (flight / 2).max(2 * MSS);
        self.cwnd = self.ssthresh;
        self.in_recovery = true;
        self.recover = self.snd_nxt;
        self.hole_scan = self.snd_una;
        self.rtt_probe = None; // Karn: no samples from retransmits
        self.recovery_send(ctx);
        self.arm_rto(ctx);
    }

    fn on_ack(&mut self, ctx: &mut Ctx<'_>, ack: u64, sacks: &[(u64, u64)]) {
        if ack > self.snd_una {
            let newly_acked = ack - self.snd_una;
            self.snd_una = ack;
            self.dup_acks = 0;
            self.note_sacks(sacks);
            self.prune_sacked();
            if let Some((probe_end, sent_at)) = self.rtt_probe {
                if ack >= probe_end {
                    let sample = ctx.now().saturating_since(sent_at);
                    self.update_rtt(sample);
                    self.rtt_probe = None;
                }
            }
            if self.in_recovery {
                if ack >= self.recover {
                    // Full recovery; resume congestion avoidance at ssthresh.
                    self.in_recovery = false;
                    self.cwnd = self.ssthresh;
                    self.sacked.clear();
                }
            } else if self.cwnd < self.ssthresh {
                // Slow start.
                self.cwnd += newly_acked.min(MSS * 2);
            } else {
                // Congestion avoidance: cwnd += MSS²/cwnd per ACK.
                self.cwnd += (MSS * MSS / self.cwnd).max(1);
            }
            if self.snd_una >= self.cfg.total_bytes {
                if self.completed.is_none() {
                    self.completed = Some(ctx.now());
                }
                return;
            }
            self.arm_rto(ctx);
            if self.in_recovery {
                self.recovery_send(ctx);
            } else {
                self.fill_window(ctx);
            }
        } else if ack == self.snd_una && self.snd_nxt > self.snd_una {
            self.dup_acks += 1;
            self.note_sacks(sacks);
            if self.in_recovery {
                // Each dup ACK clocks further hole repair / new data, and —
                // carrying new SACK information — restarts the RTO
                // (RFC 6675 §4: progress is being made).
                if !sacks.is_empty() {
                    self.arm_rto(ctx);
                }
                self.recovery_send(ctx);
            } else if self.dup_acks >= 3 || self.sacked_bytes() >= 3 * MSS {
                // Fast retransmit + SACK-directed fast recovery.
                self.enter_recovery(ctx);
            }
        }
    }
}

impl Node for TcpSender {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: EtherFrame) {
        if frame.ethertype != EtherType::Ipv4 {
            return;
        }
        let Some(ip) = IpPacket::decode(&frame.payload) else {
            return;
        };
        if ip.header.dst != self.cfg.local_ip {
            return;
        }
        let Some(seg) = TcpSegment::decode(&ip.payload) else {
            return;
        };
        if seg.is_ack {
            self.on_ack(ctx, seg.ack, &seg.sacks);
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if token == TOKEN_START {
            self.started = Some(ctx.now());
            self.fill_window(ctx);
            self.arm_rto(ctx);
            return;
        }
        // RTO timers carry a generation so stale ones are ignored.
        if token >> 1 != self.rto_generation || self.completed.is_some() {
            return;
        }
        if self.snd_una >= self.snd_nxt {
            return; // nothing outstanding
        }
        self.timeouts += 1;
        let flight = self.snd_nxt - self.snd_una;
        self.ssthresh = (flight / 2).max(2 * MSS);
        self.cwnd = MSS;
        self.in_recovery = false;
        self.dup_acks = 0;
        self.rtt_probe = None;
        self.sacked.clear();
        self.rto = SimDuration::from_nanos((self.rto.as_nanos() * 2).min(60_000_000_000));
        // Go-back-N restart: resend the first unacked segment; cumulative
        // ACKs jump over whatever the receiver already buffered.
        self.snd_nxt = self.snd_una;
        let len = MSS.min(self.cfg.total_bytes - self.snd_una);
        let seq = self.snd_una;
        self.snd_nxt = seq + len;
        self.send_segment(ctx, seq, len, true);
        self.arm_rto(ctx);
    }

    fn label(&self) -> String {
        format!("tcp-sender {}", self.cfg.local_ip)
    }
}

/// The receiving endpoint. Attach to port 0.
pub struct TcpReceiver {
    local_mac: MacAddr,
    local_ip: Ipv4Addr,
    rcv_nxt: u64,
    out_of_order: BTreeMap<u64, u64>, // seq -> len
    /// Total in-order payload bytes delivered.
    pub bytes_received: u64,
    /// Segments that arrived out of order.
    pub ooo_segments: u64,
    /// ACKs transmitted.
    pub acks_sent: u64,
}

impl TcpReceiver {
    /// Create a receiver bound to the given addresses.
    pub fn new(local_mac: MacAddr, local_ip: Ipv4Addr) -> Self {
        TcpReceiver {
            local_mac,
            local_ip,
            rcv_nxt: 0,
            out_of_order: BTreeMap::new(),
            bytes_received: 0,
            ooo_segments: 0,
            acks_sent: 0,
        }
    }
}

impl Node for TcpReceiver {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, _port: PortId, frame: EtherFrame) {
        if frame.ethertype != EtherType::Ipv4 {
            return;
        }
        let Some(ip) = IpPacket::decode(&frame.payload) else {
            return; // corrupted frames fail the IP checksum and are dropped
        };
        if ip.header.dst != self.local_ip {
            return;
        }
        let Some(seg) = TcpSegment::decode(&ip.payload) else {
            return;
        };
        if seg.is_ack || seg.len == 0 {
            return;
        }
        let end = seg.seq + seg.len as u64;
        if seg.seq <= self.rcv_nxt {
            if end > self.rcv_nxt {
                self.bytes_received += end - self.rcv_nxt;
                self.rcv_nxt = end;
                // Drain any contiguous out-of-order segments.
                while let Some((&seq, &len)) = self.out_of_order.first_key_value() {
                    if seq > self.rcv_nxt {
                        break;
                    }
                    let seg_end = seq + len;
                    if seg_end > self.rcv_nxt {
                        self.bytes_received += seg_end - self.rcv_nxt;
                        self.rcv_nxt = seg_end;
                    }
                    self.out_of_order.remove(&seq);
                }
            }
        } else {
            self.ooo_segments += 1;
            self.out_of_order.insert(seg.seq, seg.len as u64);
        }
        // Cumulative ACK (every segment; no delayed ACK in the model),
        // advertising up to MAX_SACKS out-of-order runs (RFC 2018). The run
        // containing the segment that just arrived goes first — that is the
        // peer's freshest information (RFC 2018 §4) and what lets the
        // sender's scoreboard accumulate every hole over time.
        let mut sacks: Vec<(u64, u64)> = Vec::new();
        if seg.seq > self.rcv_nxt {
            // Coalesce the run around the arriving segment.
            let mut start = seg.seq;
            let mut end = seg.seq + seg.len as u64;
            for (&s, &l) in self.out_of_order.range(..=end) {
                let e = s + l;
                if e >= start && s <= end {
                    start = start.min(s);
                    end = end.max(e);
                }
            }
            sacks.push((start, end));
        }
        for (&s, &l) in &self.out_of_order {
            if sacks.len() >= crate::tcp::MAX_SACKS {
                break;
            }
            let e = s + l;
            let covered = sacks.iter().any(|&(a, b)| s >= a && e <= b);
            if !covered {
                sacks.push((s, e));
            }
        }
        let ack = TcpSegment {
            seq: 0,
            ack: self.rcv_nxt,
            len: 0,
            is_ack: true,
            sacks,
        };
        let ip_out = IpPacket::new(self.local_ip, ip.header.src, IpProto::Tcp, ack.encode());
        let reply = EtherFrame::new(frame.src, self.local_mac, EtherType::Ipv4, ip_out.encode());
        ctx.send_frame(PortId(0), reply);
        self.acks_sent += 1;
    }

    fn label(&self) -> String {
        format!("tcp-receiver {}", self.local_ip)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::{FaultInjector, LinkConfig};
    use crate::sim::Simulator;

    fn run_flow(link: LinkConfig, total_bytes: u64, seed: u64) -> (f64, u64, u64) {
        let mut sim = Simulator::new(seed);
        let cfg = TcpFlowConfig::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
            total_bytes,
        );
        let tx = sim.add_node(Box::new(TcpSender::new(cfg)));
        let rx = sim.add_node(Box::new(TcpReceiver::new(
            MacAddr::from_id(2),
            Ipv4Addr::new(10, 0, 0, 2),
        )));
        sim.connect(tx, PortId(0), rx, PortId(0), link);
        sim.set_timer(tx, SimDuration::ZERO, TOKEN_START);
        sim.run_until(SimTime::from_nanos(600_000_000_000));
        let sender = sim.node::<TcpSender>(tx).unwrap();
        let receiver = sim.node::<TcpReceiver>(rx).unwrap();
        assert_eq!(receiver.bytes_received, total_bytes, "transfer incomplete");
        (
            sender.throughput_bps().expect("flow completed"),
            sender.retransmits,
            sender.timeouts,
        )
    }

    #[test]
    fn segment_roundtrip() {
        let seg = TcpSegment {
            seq: 12345,
            ack: 678,
            len: 100,
            is_ack: false,
            sacks: vec![(200, 300), (400, 500)],
        };
        let parsed = TcpSegment::decode(&seg.encode()).unwrap();
        assert_eq!(parsed, seg);
        assert!(TcpSegment::decode(&[0u8; 5]).is_none());
    }

    #[test]
    fn clean_path_saturates_link() {
        // 100 Mbps, 10 ms RTT: 10 MB should complete near line rate.
        let link = LinkConfig::provisioned(SimDuration::from_millis(5), 100_000_000)
            .with_queue_bytes(1 << 20);
        let (bps, _retx, timeouts) = run_flow(link, 10_000_000, 1);
        // Slow-start overshoot may overflow the queue (real loss), so some
        // retransmits are expected even without fault injection — but the
        // flow must stay timeout-free and close to line rate.
        assert!(bps > 50e6, "throughput {bps:.0} too low");
        assert!(bps < 105e6, "throughput {bps:.0} above line rate");
        assert!(timeouts <= 2, "persistent timeouts: {timeouts}");
    }

    #[test]
    fn lossy_path_still_completes_with_lower_throughput() {
        let clean = LinkConfig::provisioned(SimDuration::from_millis(5), 100_000_000)
            .with_queue_bytes(1 << 20);
        let lossy = clean.with_faults(FaultInjector::dropping(2));
        let (clean_bps, _, _) = run_flow(clean, 2_000_000, 2);
        let (lossy_bps, retx, _) = run_flow(lossy, 2_000_000, 2);
        assert!(retx > 0, "loss should force retransmits");
        assert!(
            lossy_bps < clean_bps,
            "loss should reduce throughput ({lossy_bps:.0} vs {clean_bps:.0})"
        );
    }

    #[test]
    fn higher_rtt_lowers_throughput() {
        let near = LinkConfig::provisioned(SimDuration::from_millis(2), 50_000_000)
            .with_queue_bytes(128 * 1024);
        let far = LinkConfig::provisioned(SimDuration::from_millis(60), 50_000_000)
            .with_queue_bytes(128 * 1024);
        let (near_bps, _, _) = run_flow(near, 2_000_000, 3);
        let (far_bps, _, _) = run_flow(far, 2_000_000, 3);
        assert!(
            far_bps < near_bps,
            "longer RTT should slow the flow ({far_bps:.0} vs {near_bps:.0})"
        );
    }

    #[test]
    fn narrow_link_caps_throughput() {
        let narrow = LinkConfig::provisioned(SimDuration::from_millis(5), 10_000_000)
            .with_queue_bytes(256 * 1024);
        let (bps, _, _) = run_flow(narrow, 2_000_000, 4);
        assert!(bps < 10.5e6, "cannot exceed a 10 Mbps link, got {bps:.0}");
        assert!(bps > 3e6, "should achieve a decent share, got {bps:.0}");
    }

    #[test]
    fn receiver_reassembles_out_of_order() {
        let mut rx = TcpReceiver::new(MacAddr::from_id(2), Ipv4Addr::new(10, 0, 0, 2));
        // Deliver segment 2 before segment 1 via direct injection.
        let mut sim = Simulator::new(5);
        let rx_id = sim.add_node(Box::new(std::mem::replace(
            &mut rx,
            TcpReceiver::new(MacAddr::ZERO, Ipv4Addr::UNSPECIFIED),
        )));
        let mk = |seq: u64| {
            let seg = TcpSegment {
                seq,
                ack: 0,
                len: MSS as u32,
                is_ack: false,
                sacks: Vec::new(),
            };
            let ip = IpPacket::new(
                Ipv4Addr::new(10, 0, 0, 1),
                Ipv4Addr::new(10, 0, 0, 2),
                IpProto::Tcp,
                seg.encode(),
            );
            EtherFrame::new(
                MacAddr::from_id(2),
                MacAddr::from_id(1),
                EtherType::Ipv4,
                ip.encode(),
            )
        };
        sim.inject_frame(rx_id, PortId(0), mk(MSS));
        sim.inject_frame(rx_id, PortId(0), mk(0));
        sim.run_until_idle(10);
        let rx = sim.node::<TcpReceiver>(rx_id).unwrap();
        assert_eq!(rx.bytes_received, 2 * MSS);
        assert_eq!(rx.ooo_segments, 1);
        assert_eq!(rx.acks_sent, 2);
    }
}
