//! ICMP: echo and time-exceeded.
//!
//! The paper's network controller goes out of its way to manage interface
//! *primary* addresses because they are "used when generating ICMP error
//! messages, particularly TTL Exceeded replies to traceroute probes" (§5).
//! This module provides the two message types that matter for that story:
//! echo request/reply (ping) and time-exceeded (traceroute), with wire
//! encode/decode and the RFC 792 checksum.

use crate::bytes::Bytes;

use crate::ip::{IpPacket, IPV4_HEADER_LEN};

/// An ICMP message the simulator models.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IcmpPacket {
    /// Echo request (type 8) with identifier/sequence.
    EchoRequest {
        /// Identifier (conventionally the sender's "process id").
        ident: u16,
        /// Sequence number.
        seq: u16,
        /// Probe payload.
        payload: Bytes,
    },
    /// Echo reply (type 0).
    EchoReply {
        /// Identifier echoed back.
        ident: u16,
        /// Sequence echoed back.
        seq: u16,
        /// Payload echoed back.
        payload: Bytes,
    },
    /// Time exceeded in transit (type 11, code 0): carries the original
    /// packet's IP header + 8 bytes, which is how traceroute matches
    /// replies to probes.
    TimeExceeded {
        /// The offending packet's header + leading payload bytes.
        original: Bytes,
    },
}

fn checksum(buf: &[u8]) -> u16 {
    let mut sum: u32 = 0;
    let mut chunks = buf.chunks_exact(2);
    for c in &mut chunks {
        sum += u32::from(u16::from_be_bytes([c[0], c[1]]));
    }
    if let [last] = chunks.remainder() {
        sum += u32::from(u16::from_be_bytes([*last, 0]));
    }
    while sum >> 16 != 0 {
        sum = (sum & 0xffff) + (sum >> 16);
    }
    !(sum as u16)
}

impl IcmpPacket {
    /// Build the time-exceeded body for a packet whose TTL just expired:
    /// its IP header plus the first 8 payload bytes (RFC 792).
    pub fn time_exceeded_for(expired: &IpPacket) -> IcmpPacket {
        let mut original = Vec::with_capacity(IPV4_HEADER_LEN + 8);
        original.extend_from_slice(&expired.header.encode(expired.payload.len()));
        original.extend_from_slice(&expired.payload[..expired.payload.len().min(8)]);
        IcmpPacket::TimeExceeded {
            original: original.into(),
        }
    }

    /// Serialize with a valid checksum.
    pub fn encode(&self) -> Bytes {
        let (ty, rest): (u8, Vec<u8>) = match self {
            IcmpPacket::EchoRequest {
                ident,
                seq,
                payload,
            } => {
                let mut v = Vec::with_capacity(4 + payload.len());
                v.extend_from_slice(&ident.to_be_bytes());
                v.extend_from_slice(&seq.to_be_bytes());
                v.extend_from_slice(payload);
                (8, v)
            }
            IcmpPacket::EchoReply {
                ident,
                seq,
                payload,
            } => {
                let mut v = Vec::with_capacity(4 + payload.len());
                v.extend_from_slice(&ident.to_be_bytes());
                v.extend_from_slice(&seq.to_be_bytes());
                v.extend_from_slice(payload);
                (0, v)
            }
            IcmpPacket::TimeExceeded { original } => {
                let mut v = vec![0u8; 4]; // unused field
                v.extend_from_slice(original);
                (11, v)
            }
        };
        let mut out = Vec::with_capacity(4 + rest.len());
        out.push(ty);
        out.push(0); // code
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&rest);
        let csum = checksum(&out);
        out[2..4].copy_from_slice(&csum.to_be_bytes());
        Bytes::from(out)
    }

    /// Parse, validating the checksum.
    pub fn decode(buf: &[u8]) -> Option<IcmpPacket> {
        if buf.len() < 8 || checksum(buf) != 0 {
            return None;
        }
        match (buf[0], buf[1]) {
            (8, 0) => Some(IcmpPacket::EchoRequest {
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                seq: u16::from_be_bytes([buf[6], buf[7]]),
                payload: Bytes::copy_from_slice(&buf[8..]),
            }),
            (0, 0) => Some(IcmpPacket::EchoReply {
                ident: u16::from_be_bytes([buf[4], buf[5]]),
                seq: u16::from_be_bytes([buf[6], buf[7]]),
                payload: Bytes::copy_from_slice(&buf[8..]),
            }),
            (11, 0) => Some(IcmpPacket::TimeExceeded {
                original: Bytes::copy_from_slice(&buf[8..]),
            }),
            _ => None,
        }
    }

    /// For a time-exceeded message: recover the original probe's
    /// (ident-field, destination) so a traceroute driver can match it.
    pub fn original_probe(&self) -> Option<(u16, std::net::Ipv4Addr)> {
        let IcmpPacket::TimeExceeded { original } = self else {
            return None;
        };
        let (header, _) = crate::ip::Ipv4Header::decode(original).or_else(|| {
            // The embedded header's total-length may exceed the embedded
            // bytes (only header+8 are included); re-parse leniently.
            if original.len() < IPV4_HEADER_LEN {
                return None;
            }
            let mut padded = original.to_vec();
            let total = u16::from_be_bytes([padded[2], padded[3]]) as usize;
            padded.resize(total.max(IPV4_HEADER_LEN), 0);
            crate::ip::Ipv4Header::decode(&padded)
        })?;
        Some((header.ident, header.dst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ip::IpProto;
    use std::net::Ipv4Addr;

    #[test]
    fn echo_roundtrip() {
        let req = IcmpPacket::EchoRequest {
            ident: 42,
            seq: 7,
            payload: Bytes::from_static(b"probe"),
        };
        assert_eq!(IcmpPacket::decode(&req.encode()), Some(req));
        let rep = IcmpPacket::EchoReply {
            ident: 42,
            seq: 7,
            payload: Bytes::from_static(b"probe"),
        };
        assert_eq!(IcmpPacket::decode(&rep.encode()), Some(rep));
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let req = IcmpPacket::EchoRequest {
            ident: 1,
            seq: 1,
            payload: Bytes::new(),
        };
        let mut wire = req.encode().to_vec();
        wire[5] ^= 0xff;
        assert_eq!(IcmpPacket::decode(&wire), None);
        assert_eq!(IcmpPacket::decode(&wire[..6]), None);
    }

    #[test]
    fn time_exceeded_embeds_original_probe() {
        let mut probe = IpPacket::new(
            Ipv4Addr::new(184, 164, 224, 5),
            Ipv4Addr::new(198, 18, 1, 1),
            IpProto::Udp,
            Bytes::from_static(b"0123456789abcdef"),
        );
        probe.header.ident = 33434;
        probe.header.ttl = 1;
        let te = IcmpPacket::time_exceeded_for(&probe);
        let wire = te.encode();
        let decoded = IcmpPacket::decode(&wire).unwrap();
        let (ident, dst) = decoded.original_probe().unwrap();
        assert_eq!(ident, 33434);
        assert_eq!(dst, Ipv4Addr::new(198, 18, 1, 1));
    }
}
