//! Scriptable chaos plans: seeded schedules of link flaps, partitions and
//! packet-level fault bursts.
//!
//! The paper's platform runs over real tunnels and exchange fabrics where
//! links flap and packets are lost, reordered, duplicated and corrupted
//! (§3.3, §5). A [`ChaosPlan`] scripts those failures against any set of
//! links: it is a list of [`Incident`]s, each a bounded disturbance with a
//! start offset and a duration. Incidents lower to timed [`ChaosStep`]s
//! that [`crate::Simulator::schedule_chaos`] places on the event queue, so
//! chaos interleaves deterministically with frame deliveries and timers —
//! the same seed always produces the same run.
//!
//! Plans are generated from the simulator's own seeded RNG
//! ([`ChaosPlan::generate`]) and shrink naturally at incident granularity:
//! removing an incident yields a strictly smaller, still-valid plan, which
//! is what a failing-seed minimizer wants to bisect over.

use crate::link::FaultInjector;
use crate::sim::{LinkId, SimRng};
use crate::time::SimDuration;

/// One atomic mutation of link state, applied by the simulator's event
/// loop at a scheduled instant.
#[derive(Debug, Clone, Copy)]
pub struct ChaosStep {
    /// The link to mutate.
    pub link: LinkId,
    /// The mutation.
    pub change: ChaosChange,
}

/// What a [`ChaosStep`] does to its link.
#[derive(Debug, Clone, Copy)]
pub enum ChaosChange {
    /// Administratively lower the link: every frame drops.
    LinkDown,
    /// Raise the link again.
    LinkUp,
    /// Replace the link's fault injector (start of a burst).
    SetFaults(FaultInjector),
    /// Restore the injector the link was created with (end of a burst).
    RestoreFaults,
}

/// The kind of disturbance an [`Incident`] inflicts on its links.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncidentKind {
    /// Links go down at `start` and come back at `start + duration`:
    /// a flap when one link is hit, a partition when several are, a tunnel
    /// reset when the link is an experiment tunnel.
    Outage,
    /// Links run with degraded fault injection for the duration, then
    /// revert to their configured base faults.
    FaultBurst,
}

/// A bounded disturbance against one or more links.
#[derive(Debug, Clone)]
pub struct Incident {
    /// Offset from the moment the plan is scheduled.
    pub start: SimDuration,
    /// How long the disturbance lasts.
    pub duration: SimDuration,
    /// The links affected (one for a flap, several for a partition).
    pub links: Vec<LinkId>,
    /// Outage or fault burst.
    pub kind: IncidentKind,
    /// Burst injector, used when `kind` is [`IncidentKind::FaultBurst`].
    pub faults: FaultInjector,
}

impl Incident {
    /// A single-link flap (or tunnel reset).
    pub fn flap(link: LinkId, start: SimDuration, duration: SimDuration) -> Self {
        Incident {
            start,
            duration,
            links: vec![link],
            kind: IncidentKind::Outage,
            faults: FaultInjector::none(),
        }
    }

    /// A partition: several links down together.
    pub fn partition(links: Vec<LinkId>, start: SimDuration, duration: SimDuration) -> Self {
        Incident {
            start,
            duration,
            links,
            kind: IncidentKind::Outage,
            faults: FaultInjector::none(),
        }
    }

    /// A fault burst with the given injector.
    pub fn burst(
        link: LinkId,
        start: SimDuration,
        duration: SimDuration,
        faults: FaultInjector,
    ) -> Self {
        Incident {
            start,
            duration,
            links: vec![link],
            kind: IncidentKind::FaultBurst,
            faults,
        }
    }

    /// When the disturbance is over.
    pub fn end(&self) -> SimDuration {
        self.start + self.duration
    }

    fn steps(&self) -> impl Iterator<Item = (SimDuration, ChaosStep)> + '_ {
        let (begin, finish) = match self.kind {
            IncidentKind::Outage => (ChaosChange::LinkDown, ChaosChange::LinkUp),
            IncidentKind::FaultBurst => (
                ChaosChange::SetFaults(self.faults),
                ChaosChange::RestoreFaults,
            ),
        };
        self.links.iter().flat_map(move |&link| {
            [
                (
                    self.start,
                    ChaosStep {
                        link,
                        change: begin,
                    },
                ),
                (
                    self.end(),
                    ChaosStep {
                        link,
                        change: finish,
                    },
                ),
            ]
        })
    }
}

/// A deterministic schedule of incidents.
#[derive(Debug, Clone, Default)]
pub struct ChaosPlan {
    /// The incidents, in no particular order (each carries its own start).
    pub incidents: Vec<Incident>,
}

impl ChaosPlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an incident.
    pub fn push(&mut self, incident: Incident) {
        self.incidents.push(incident);
    }

    /// Offset of the last state restoration — after this the network is
    /// merely recovering, not being disturbed.
    pub fn end(&self) -> SimDuration {
        self.incidents
            .iter()
            .map(Incident::end)
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Lower every incident to its timed steps.
    pub fn steps(&self) -> Vec<(SimDuration, ChaosStep)> {
        let mut steps: Vec<(SimDuration, ChaosStep)> = self
            .incidents
            .iter()
            .flat_map(|i| i.steps().collect::<Vec<_>>())
            .collect();
        // Deterministic order regardless of incident order, so shrunken
        // plans replay identically.
        steps.sort_by_key(|(at, step)| (*at, step.link.0));
        steps
    }

    /// A copy of the plan with incident `index` removed (shrinking).
    pub fn without(&self, index: usize) -> ChaosPlan {
        let mut incidents = self.incidents.clone();
        incidents.remove(index);
        ChaosPlan { incidents }
    }

    /// Generate a random plan of at most `max_incidents` incidents against
    /// `targets`, starting within `window`. Drawing from the simulator's
    /// seeded RNG keeps the whole run reproducible from one seed.
    ///
    /// Overlapping outages on the same link are avoided so every flap has
    /// a well-defined down interval (and so removing any single incident
    /// leaves the rest meaningful — what the shrinker relies on).
    pub fn generate(
        rng: &mut SimRng,
        targets: &[LinkId],
        window: SimDuration,
        max_incidents: usize,
    ) -> ChaosPlan {
        let mut plan = ChaosPlan::new();
        if targets.is_empty() || max_incidents == 0 {
            return plan;
        }
        let n = 1 + rng.below(max_incidents as u64) as usize;
        // Per-link time until which an outage already holds the link down.
        let mut busy_until: Vec<(LinkId, SimDuration)> = Vec::new();
        for _ in 0..n {
            let start = SimDuration::from_nanos(rng.below(window.as_nanos().max(1)));
            match rng.below(5) {
                // Link flap / tunnel reset: 2–45 s down.
                0 | 1 => {
                    let link = targets[rng.below(targets.len() as u64) as usize];
                    let duration = SimDuration::from_secs(2 + rng.below(44));
                    if !overlaps(&busy_until, link, start) {
                        busy_until.push((link, start + duration));
                        plan.push(Incident::flap(link, start, duration));
                    }
                }
                // Partition: 2–4 distinct links down together, 5–60 s.
                2 => {
                    let want = 2 + rng.below(3) as usize;
                    let mut links: Vec<LinkId> = Vec::new();
                    for _ in 0..want * 3 {
                        let link = targets[rng.below(targets.len() as u64) as usize];
                        if !links.contains(&link) && !overlaps(&busy_until, link, start) {
                            links.push(link);
                        }
                        if links.len() == want {
                            break;
                        }
                    }
                    if links.len() >= 2 {
                        let duration = SimDuration::from_secs(5 + rng.below(56));
                        for &l in &links {
                            busy_until.push((l, start + duration));
                        }
                        plan.push(Incident::partition(links, start, duration));
                    }
                }
                // Loss burst: heavy drop on everything (control included —
                // the real platform's tunnels lose BGP segments too).
                3 => {
                    let link = targets[rng.below(targets.len() as u64) as usize];
                    let duration = SimDuration::from_secs(5 + rng.below(36));
                    let faults = FaultInjector::dropping(20 + rng.below(60) as u8);
                    plan.push(Incident::burst(link, start, duration, faults));
                }
                // Reorder + duplication + corruption burst.
                _ => {
                    let link = targets[rng.below(targets.len() as u64) as usize];
                    let duration = SimDuration::from_secs(5 + rng.below(36));
                    let faults = FaultInjector::none()
                        .reordering(
                            20 + rng.below(40) as u8,
                            SimDuration::from_millis(50 + rng.below(450)),
                        )
                        .duplicating(10 + rng.below(30) as u8)
                        .corrupting(5 + rng.below(25) as u8);
                    plan.push(Incident::burst(link, start, duration, faults));
                }
            }
        }
        plan
    }
}

fn overlaps(busy: &[(LinkId, SimDuration)], link: LinkId, start: SimDuration) -> bool {
    busy.iter().any(|&(l, until)| l == link && start < until)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incidents_lower_to_paired_steps() {
        let mut plan = ChaosPlan::new();
        plan.push(Incident::flap(
            LinkId(3),
            SimDuration::from_secs(1),
            SimDuration::from_secs(4),
        ));
        plan.push(Incident::partition(
            vec![LinkId(1), LinkId(2)],
            SimDuration::from_secs(2),
            SimDuration::from_secs(2),
        ));
        let steps = plan.steps();
        assert_eq!(steps.len(), 6);
        // Sorted by time, then link.
        assert!(steps.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(plan.end(), SimDuration::from_secs(5));
    }

    #[test]
    fn generation_is_deterministic_and_bounded() {
        let targets: Vec<LinkId> = (0..6).map(LinkId).collect();
        let gen = |seed| {
            let mut rng = SimRng::new(seed);
            ChaosPlan::generate(&mut rng, &targets, SimDuration::from_secs(100), 8)
        };
        let a = gen(42);
        let b = gen(42);
        assert_eq!(a.incidents.len(), b.incidents.len());
        for (x, y) in a.incidents.iter().zip(&b.incidents) {
            assert_eq!(x.start, y.start);
            assert_eq!(x.links, y.links);
            assert_eq!(x.kind, y.kind);
        }
        assert!(a.incidents.len() <= 8);
        assert!(!a.incidents.is_empty());
    }

    #[test]
    fn outages_never_overlap_per_link() {
        for seed in 0..50u64 {
            let targets: Vec<LinkId> = (0..4).map(LinkId).collect();
            let mut rng = SimRng::new(seed);
            let plan = ChaosPlan::generate(&mut rng, &targets, SimDuration::from_secs(120), 10);
            let outages: Vec<&Incident> = plan
                .incidents
                .iter()
                .filter(|i| i.kind == IncidentKind::Outage)
                .collect();
            for (i, a) in outages.iter().enumerate() {
                for b in &outages[i + 1..] {
                    for l in &a.links {
                        if b.links.contains(l) {
                            assert!(
                                a.end() <= b.start || b.end() <= a.start,
                                "overlapping outages on {l:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn shrinking_removes_one_incident() {
        let mut plan = ChaosPlan::new();
        for k in 0..3 {
            plan.push(Incident::flap(
                LinkId(k),
                SimDuration::from_secs(k as u64),
                SimDuration::from_secs(1),
            ));
        }
        let smaller = plan.without(1);
        assert_eq!(smaller.incidents.len(), 2);
        assert_eq!(smaller.incidents[0].links, vec![LinkId(0)]);
        assert_eq!(smaller.incidents[1].links, vec![LinkId(2)]);
    }
}
