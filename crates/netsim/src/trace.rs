//! Frame tracing, in the spirit of smoltcp's `--pcap` option.
//!
//! A [`Tracer`] records a bounded ring of [`TraceEvent`]s describing every
//! frame transmitted and delivered. Scenarios enable it to debug wiring and
//! tests assert on it to verify, e.g., that vBGP rewrote a source MAC.

use std::collections::VecDeque;

use crate::frame::EtherType;
use crate::mac::MacAddr;
use crate::sim::{NodeId, PortId};
use crate::time::SimTime;

/// Whether a trace event is a transmission or a delivery.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceDirection {
    /// Frame handed to a link by a node.
    Tx,
    /// Frame delivered to a node.
    Rx,
}

/// One traced frame movement.
#[derive(Clone, Copy, Debug)]
pub struct TraceEvent {
    /// When it happened.
    pub time: SimTime,
    /// The node transmitting or receiving.
    pub node: NodeId,
    /// The port involved.
    pub port: PortId,
    /// Tx or Rx.
    pub direction: TraceDirection,
    /// Frame source MAC.
    pub src: MacAddr,
    /// Frame destination MAC.
    pub dst: MacAddr,
    /// Frame EtherType.
    pub ethertype: EtherType,
    /// Frame wire length.
    pub len: usize,
}

/// Pluggable sink for trace events (e.g. a pcap writer).
pub trait TraceSink {
    /// Called once per traced event.
    fn record(&mut self, event: &TraceEvent);
}

/// The default tracer: optionally records into a bounded ring buffer and
/// forwards to any number of sinks.
pub struct Tracer {
    enabled: bool,
    capacity: usize,
    ring: VecDeque<TraceEvent>,
    sinks: Vec<Box<dyn TraceSink>>,
    /// Total events seen (including those evicted from the ring).
    pub total: u64,
}

impl Tracer {
    /// A tracer that records nothing (the default for new simulators).
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            capacity: 0,
            ring: VecDeque::new(),
            sinks: Vec::new(),
            total: 0,
        }
    }

    /// A tracer keeping the most recent `capacity` events.
    pub fn ring(capacity: usize) -> Self {
        Tracer {
            enabled: true,
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            sinks: Vec::new(),
            total: 0,
        }
    }

    /// Attach an extra sink.
    pub fn with_sink(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.enabled = true;
        self.sinks.push(sink);
        self
    }

    /// Whether this tracer records anything. The simulator pins tracing
    /// runs to the sequential engine, since the ring's order is part of the
    /// observable output.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record one event (called by the simulator).
    pub fn record(&mut self, event: TraceEvent) {
        if !self.enabled {
            return;
        }
        self.total += 1;
        for sink in &mut self.sinks {
            sink.record(&event);
        }
        if self.capacity > 0 {
            if self.ring.len() == self.capacity {
                self.ring.pop_front();
            }
            self.ring.push_back(event);
        }
    }

    /// The recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.ring.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(n),
            node: NodeId(0),
            port: PortId(0),
            direction: TraceDirection::Tx,
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            ethertype: EtherType::Ipv4,
            len: 64,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::disabled();
        t.record(ev(1));
        assert_eq!(t.total, 0);
        assert!(t.is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut t = Tracer::ring(3);
        for n in 0..5 {
            t.record(ev(n));
        }
        assert_eq!(t.total, 5);
        assert_eq!(t.len(), 3);
        let times: Vec<u64> = t.events().map(|e| e.time.as_nanos()).collect();
        assert_eq!(times, vec![2, 3, 4]);
    }

    #[test]
    fn sinks_see_all_events() {
        struct Counter(std::rc::Rc<std::cell::Cell<u64>>);
        impl TraceSink for Counter {
            fn record(&mut self, _: &TraceEvent) {
                self.0.set(self.0.get() + 1);
            }
        }
        let count = std::rc::Rc::new(std::cell::Cell::new(0));
        let mut t = Tracer::ring(1).with_sink(Box::new(Counter(count.clone())));
        for n in 0..4 {
            t.record(ev(n));
        }
        assert_eq!(count.get(), 4);
    }
}
