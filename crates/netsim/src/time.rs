//! Simulated time.
//!
//! Simulation time is a monotonically increasing count of nanoseconds since
//! the start of the run. Wrapping is not handled: `u64` nanoseconds cover
//! ~584 years of simulated time, far beyond any experiment.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds since simulation start (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`, saturating at zero.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Negative values clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            SimDuration(0)
        } else {
            SimDuration((s * 1e9) as u64)
        }
    }

    /// Nanoseconds in this duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds in this duration (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Whole seconds in this duration (truncating).
    pub const fn as_secs(self) -> u64 {
        self.0 / 1_000_000_000
    }

    /// Seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating multiplication by an integer factor.
    pub const fn saturating_mul(self, rhs: u64) -> Self {
        SimDuration(self.0.saturating_mul(rhs))
    }

    /// Checked division producing how many times `rhs` fits in `self`.
    pub fn div_duration(self, rhs: SimDuration) -> u64 {
        self.0.checked_div(rhs.0).unwrap_or(0)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ns(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ns(self.0))
    }
}

fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_nanos(1_500_000_000).as_secs(), 1);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(10);
        assert_eq!(t.as_millis(), 10);
        let d = (t + SimDuration::from_millis(5)) - t;
        assert_eq!(d.as_millis(), 5);
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(10);
        assert_eq!((a - b).as_nanos(), 0);
        assert_eq!(
            (SimDuration::from_nanos(5) - SimDuration::from_nanos(9)).as_nanos(),
            0
        );
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimDuration::from_secs_f64(-1.0).as_nanos(), 0);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_millis(), 500);
    }

    #[test]
    fn div_duration() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.div_duration(SimDuration::from_millis(3)), 3);
        assert_eq!(d.div_duration(SimDuration::ZERO), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimDuration::from_secs(1).to_string(), "1.000s");
        assert_eq!(SimDuration::from_millis(2).to_string(), "2.000ms");
        assert_eq!(SimDuration::from_micros(3).to_string(), "3.000us");
        assert_eq!(SimDuration::from_nanos(4).to_string(), "4ns");
    }
}
