//! Ethernet II frames.
//!
//! Frames are what links, switches and the vBGP mux exchange. The payload is
//! an owned byte buffer; higher layers (ARP, IPv4) provide wire-level
//! encode/decode so the simulator carries real packet bytes end to end.

use crate::bytes::Bytes;
use std::fmt;

use crate::mac::MacAddr;

/// The EtherType of a frame's payload.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum EtherType {
    /// IPv4 (0x0800).
    Ipv4,
    /// ARP (0x0806).
    Arp,
    /// IPv6 (0x86DD).
    Ipv6,
    /// Anything else, preserved verbatim.
    Other(u16),
}

impl EtherType {
    /// The 16-bit wire value.
    pub fn to_u16(self) -> u16 {
        match self {
            EtherType::Ipv4 => 0x0800,
            EtherType::Arp => 0x0806,
            EtherType::Ipv6 => 0x86DD,
            EtherType::Other(v) => v,
        }
    }

    /// Parse from the 16-bit wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            0x0800 => EtherType::Ipv4,
            0x0806 => EtherType::Arp,
            0x86DD => EtherType::Ipv6,
            other => EtherType::Other(other),
        }
    }
}

/// An Ethernet II frame.
#[derive(Clone, PartialEq, Eq)]
pub struct EtherFrame {
    /// Destination MAC. In vBGP this encodes the experiment's egress choice.
    pub dst: MacAddr,
    /// Source MAC. vBGP rewrites this on inbound traffic so experiments can
    /// see which neighbor delivered a packet.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
    /// Payload bytes.
    pub payload: Bytes,
}

/// Ethernet header length in bytes (no 802.1Q, matching smoltcp's scope).
pub const ETHER_HEADER_LEN: usize = 14;

impl EtherFrame {
    /// Build a frame.
    pub fn new(dst: MacAddr, src: MacAddr, ethertype: EtherType, payload: Bytes) -> Self {
        EtherFrame {
            dst,
            src,
            ethertype,
            payload,
        }
    }

    /// Total wire length (header + payload), used for serialization delay and
    /// byte counters.
    pub fn wire_len(&self) -> usize {
        ETHER_HEADER_LEN + self.payload.len()
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.ethertype.to_u16().to_be_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parse from wire bytes. Returns `None` if shorter than a header.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < ETHER_HEADER_LEN {
            return None;
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&buf[0..6]);
        src.copy_from_slice(&buf[6..12]);
        let ethertype = EtherType::from_u16(u16::from_be_bytes([buf[12], buf[13]]));
        Some(EtherFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: Bytes::copy_from_slice(&buf[ETHER_HEADER_LEN..]),
        })
    }
}

impl fmt::Debug for EtherFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EtherFrame {{ {} -> {}, {:?}, {} bytes }}",
            self.src,
            self.dst,
            self.ethertype,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ethertype_roundtrip() {
        for et in [
            EtherType::Ipv4,
            EtherType::Arp,
            EtherType::Ipv6,
            EtherType::Other(0x1234),
        ] {
            assert_eq!(EtherType::from_u16(et.to_u16()), et);
        }
    }

    #[test]
    fn frame_encode_decode_roundtrip() {
        let frame = EtherFrame::new(
            MacAddr::from_id(1),
            MacAddr::from_id(2),
            EtherType::Ipv4,
            Bytes::from_static(b"hello world"),
        );
        let bytes = frame.encode();
        assert_eq!(bytes.len(), frame.wire_len());
        let parsed = EtherFrame::decode(&bytes).unwrap();
        assert_eq!(parsed, frame);
    }

    #[test]
    fn decode_rejects_short_buffer() {
        assert!(EtherFrame::decode(&[0u8; 13]).is_none());
        assert!(EtherFrame::decode(&[]).is_none());
    }

    #[test]
    fn decode_empty_payload() {
        let frame = EtherFrame::new(
            MacAddr::BROADCAST,
            MacAddr::from_id(7),
            EtherType::Arp,
            Bytes::new(),
        );
        let parsed = EtherFrame::decode(&frame.encode()).unwrap();
        assert!(parsed.payload.is_empty());
        assert_eq!(parsed.dst, MacAddr::BROADCAST);
    }
}
