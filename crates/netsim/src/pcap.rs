//! A libpcap-format trace sink, after smoltcp's `--pcap` example option.
//!
//! [`PcapWriter`] implements [`TraceSink`]: every traced frame is appended
//! as a classic pcap record (magic `0xa1b2c3d4`, LINKTYPE_ETHERNET), so a
//! simulation's traffic can be opened in Wireshark. Because the simulator
//! records synthesized [`TraceEvent`]s (headers, not payload bytes), the
//! writer reconstructs a frame image from the traced header fields and pads
//! the payload.

use crate::frame::{EtherFrame, ETHER_HEADER_LEN};
use crate::trace::{TraceDirection, TraceEvent, TraceSink};

/// Classic pcap global header magic (microsecond timestamps).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// LINKTYPE_ETHERNET.
const LINKTYPE_ETHERNET: u32 = 1;

/// Accumulates a pcap byte stream from trace events.
#[derive(Debug)]
pub struct PcapWriter {
    buf: Vec<u8>,
    /// Record only transmissions (avoids duplicating every frame at both
    /// ends of a link).
    pub tx_only: bool,
    /// Records written.
    pub records: u64,
}

impl Default for PcapWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl PcapWriter {
    /// A writer with the global header already emitted.
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(4096);
        buf.extend_from_slice(&PCAP_MAGIC.to_le_bytes());
        buf.extend_from_slice(&2u16.to_le_bytes()); // version major
        buf.extend_from_slice(&4u16.to_le_bytes()); // version minor
        buf.extend_from_slice(&0i32.to_le_bytes()); // thiszone
        buf.extend_from_slice(&0u32.to_le_bytes()); // sigfigs
        buf.extend_from_slice(&65_535u32.to_le_bytes()); // snaplen
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_le_bytes());
        PcapWriter {
            buf,
            tx_only: true,
            records: 0,
        }
    }

    /// The pcap file contents so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consume the writer, returning the pcap file contents.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one raw frame image at the given simulated time.
    pub fn write_frame(&mut self, time_us: u64, frame_bytes: &[u8]) {
        self.buf
            .extend_from_slice(&((time_us / 1_000_000) as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&((time_us % 1_000_000) as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&(frame_bytes.len() as u32).to_le_bytes());
        self.buf
            .extend_from_slice(&(frame_bytes.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(frame_bytes);
        self.records += 1;
    }
}

impl TraceSink for PcapWriter {
    fn record(&mut self, event: &TraceEvent) {
        if self.tx_only && event.direction != TraceDirection::Tx {
            return;
        }
        // Reconstruct a frame image: real header, zero-padded payload of the
        // traced length.
        let payload_len = event.len.saturating_sub(ETHER_HEADER_LEN);
        let frame = EtherFrame::new(
            event.dst,
            event.src,
            event.ethertype,
            vec![0u8; payload_len].into(),
        );
        self.write_frame(event.time.as_micros(), &frame.encode());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacAddr;
    use crate::sim::{NodeId, PortId};
    use crate::time::SimTime;
    use crate::trace::Tracer;

    fn event(direction: TraceDirection, len: usize) -> TraceEvent {
        TraceEvent {
            time: SimTime::from_nanos(1_500_000),
            node: NodeId(0),
            port: PortId(0),
            direction,
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(2),
            ethertype: crate::frame::EtherType::Ipv4,
            len,
        }
    }

    #[test]
    fn global_header_is_valid() {
        let w = PcapWriter::new();
        assert_eq!(w.bytes().len(), 24);
        assert_eq!(
            u32::from_le_bytes(w.bytes()[0..4].try_into().unwrap()),
            PCAP_MAGIC
        );
        assert_eq!(
            u32::from_le_bytes(w.bytes()[20..24].try_into().unwrap()),
            LINKTYPE_ETHERNET
        );
    }

    #[test]
    fn records_tx_frames_with_correct_lengths() {
        let mut w = PcapWriter::new();
        w.record(&event(TraceDirection::Tx, 64));
        assert_eq!(w.records, 1);
        let rec = &w.bytes()[24..];
        let ts_sec = u32::from_le_bytes(rec[0..4].try_into().unwrap());
        let ts_usec = u32::from_le_bytes(rec[4..8].try_into().unwrap());
        let incl = u32::from_le_bytes(rec[8..12].try_into().unwrap());
        let orig = u32::from_le_bytes(rec[12..16].try_into().unwrap());
        assert_eq!(ts_sec, 0);
        assert_eq!(ts_usec, 1_500);
        assert_eq!(incl, 64);
        assert_eq!(orig, 64);
        assert_eq!(rec.len(), 16 + 64);
        // The record's frame starts with the destination MAC.
        assert_eq!(&rec[16..22], &MacAddr::from_id(2).octets());
    }

    #[test]
    fn rx_frames_skipped_in_tx_only_mode() {
        let mut w = PcapWriter::new();
        w.record(&event(TraceDirection::Rx, 64));
        assert_eq!(w.records, 0);
        w.tx_only = false;
        w.record(&event(TraceDirection::Rx, 64));
        assert_eq!(w.records, 1);
    }

    #[test]
    fn integrates_with_tracer() {
        let mut tracer = Tracer::ring(8).with_sink(Box::new(PcapWriter::new()));
        tracer.record(event(TraceDirection::Tx, 100));
        tracer.record(event(TraceDirection::Rx, 100));
        assert_eq!(tracer.total, 2);
    }
}
