//! # peering-netsim
//!
//! A deterministic, discrete-event network simulator providing the substrate
//! that the PEERING paper ran on top of the real Internet and Linux kernel:
//! Ethernet frames and MAC addressing, ARP, IPv4/IPv6 packets, point-to-point
//! links with configurable latency/bandwidth/fault-injection, L2 learning
//! switches (IXP fabrics), and a Reno-style TCP flow model used for the
//! backbone-throughput experiments (paper §6).
//!
//! The design follows the smoltcp idiom: protocol logic is event-driven and
//! sans-IO. Nodes implement [`Node`] and exchange [`EtherFrame`]s; all
//! randomness (loss, corruption) is drawn from a seeded RNG so every run is
//! reproducible.
//!
//! Runs can also be sharded across worker threads without changing any
//! observable output: see [`Simulator::set_shards`] and the module docs of
//! [`sim`] for the conservative-lookahead design.
//!
//! ```
//! use peering_netsim::{Simulator, SimDuration, LinkConfig};
//! let mut sim = Simulator::new(42);
//! assert_eq!(sim.now().as_nanos(), 0);
//! sim.run_for(SimDuration::from_millis(5));
//! assert_eq!(sim.now().as_millis(), 5);
//! let _cfg = LinkConfig::default();
//! ```

#![warn(missing_docs)]

pub mod arp;
pub mod bytes;
pub mod chaos;
pub mod event;
pub mod frame;
pub mod icmp;
pub mod ip;
pub mod link;
pub mod mac;
pub mod pcap;
pub mod sim;
pub mod switch;
pub mod tcp;
pub mod time;
pub mod trace;

pub use crate::bytes::Bytes;
pub use arp::{ArpCache, ArpOp, ArpPacket};
pub use chaos::{ChaosChange, ChaosPlan, ChaosStep, Incident, IncidentKind};
pub use event::{Event, EventKey, EventKind, EventQueue, CLASS_CHAOS, CLASS_NODE, EXTERNAL_SRC};
pub use frame::{EtherFrame, EtherType};
pub use icmp::IcmpPacket;
pub use ip::{IpPacket, IpProto, Ipv4Header};
pub use link::{FaultInjector, Link, LinkConfig, LinkStats};
pub use mac::MacAddr;
pub use pcap::PcapWriter;
pub use sim::{Ctx, LinkId, Node, NodeId, PortId, SimRng, Simulator};
pub use switch::LearningSwitch;
pub use tcp::{TcpFlowConfig, TcpReceiver, TcpSegment, TcpSender};
pub use time::{SimDuration, SimTime};
pub use trace::{TraceEvent, TraceSink, Tracer};
