//! IPv4 packets with wire-level encode/decode.
//!
//! The vBGP data plane forwards IP packets between experiments and neighbors;
//! the enforcement engine inspects source addresses (anti-spoofing) and the
//! forwarding path decrements TTL like a real router. Headers are encoded to
//! and parsed from real wire bytes (including the header checksum) so tests
//! exercise the same paths a kernel would.

use crate::bytes::Bytes;
use std::fmt;
use std::net::Ipv4Addr;

/// IP protocol numbers carried in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum IpProto {
    /// ICMP (1).
    Icmp,
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else.
    Other(u8),
}

impl IpProto {
    /// Wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Icmp => 1,
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Parse from wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            1 => IpProto::Icmp,
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// Length of the fixed IPv4 header (no options) in bytes.
pub const IPV4_HEADER_LEN: usize = 20;

/// A parsed IPv4 header (options unsupported, like smoltcp).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Ipv4Header {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Identification field (used by traceroute-style probing in tests).
    pub ident: u16,
}

impl Ipv4Header {
    /// Compute the Internet checksum over a header buffer with its checksum
    /// field zeroed or populated (RFC 1071).
    fn checksum(buf: &[u8]) -> u16 {
        let mut sum: u32 = 0;
        let mut chunks = buf.chunks_exact(2);
        for chunk in &mut chunks {
            sum += u32::from(u16::from_be_bytes([chunk[0], chunk[1]]));
        }
        if let [last] = chunks.remainder() {
            sum += u32::from(u16::from_be_bytes([*last, 0]));
        }
        while sum >> 16 != 0 {
            sum = (sum & 0xffff) + (sum >> 16);
        }
        !(sum as u16)
    }

    /// Encode this header (for a payload of `payload_len` bytes) to wire
    /// bytes including a valid checksum.
    pub fn encode(&self, payload_len: usize) -> [u8; IPV4_HEADER_LEN] {
        let total_len = (IPV4_HEADER_LEN + payload_len) as u16;
        let mut buf = [0u8; IPV4_HEADER_LEN];
        buf[0] = 0x45; // version 4, IHL 5
        buf[2..4].copy_from_slice(&total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[8] = self.ttl;
        buf[9] = self.proto.to_u8();
        buf[12..16].copy_from_slice(&self.src.octets());
        buf[16..20].copy_from_slice(&self.dst.octets());
        let csum = Self::checksum(&buf);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
        buf
    }

    /// Parse a header from wire bytes, validating version, IHL, length and
    /// checksum. Returns the header and the declared total length.
    pub fn decode(buf: &[u8]) -> Option<(Ipv4Header, usize)> {
        if buf.len() < IPV4_HEADER_LEN {
            return None;
        }
        if buf[0] != 0x45 {
            return None; // options / other versions unsupported
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]) as usize;
        if total_len < IPV4_HEADER_LEN || total_len > buf.len() {
            return None;
        }
        if Self::checksum(&buf[..IPV4_HEADER_LEN]) != 0 {
            return None;
        }
        let header = Ipv4Header {
            src: Ipv4Addr::new(buf[12], buf[13], buf[14], buf[15]),
            dst: Ipv4Addr::new(buf[16], buf[17], buf[18], buf[19]),
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            ident: u16::from_be_bytes([buf[4], buf[5]]),
        };
        Some((header, total_len))
    }
}

/// A full IPv4 packet: header plus payload.
#[derive(Clone, PartialEq, Eq)]
pub struct IpPacket {
    /// The IPv4 header.
    pub header: Ipv4Header,
    /// Payload bytes (e.g. an encoded [`crate::tcp::TcpSegment`]).
    pub payload: Bytes,
}

impl IpPacket {
    /// Build a packet with a default TTL of 64 (smoltcp's default).
    pub fn new(src: Ipv4Addr, dst: Ipv4Addr, proto: IpProto, payload: Bytes) -> Self {
        IpPacket {
            header: Ipv4Header {
                src,
                dst,
                ttl: 64,
                proto,
                ident: 0,
            },
            payload,
        }
    }

    /// Serialize to wire bytes.
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(IPV4_HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.header.encode(self.payload.len()));
        out.extend_from_slice(&self.payload);
        Bytes::from(out)
    }

    /// Parse from wire bytes; drops trailing garbage beyond the declared
    /// total length, rejects malformed or checksum-failing headers.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        let (header, total_len) = Ipv4Header::decode(buf)?;
        Some(IpPacket {
            header,
            payload: Bytes::copy_from_slice(&buf[IPV4_HEADER_LEN..total_len]),
        })
    }

    /// Decrement TTL, returning `false` if the packet must be dropped
    /// (TTL reached zero) — the forwarding-plane hop behaviour.
    pub fn decrement_ttl(&mut self) -> bool {
        if self.header.ttl <= 1 {
            self.header.ttl = 0;
            false
        } else {
            self.header.ttl -= 1;
            true
        }
    }

    /// Total wire length.
    pub fn wire_len(&self) -> usize {
        IPV4_HEADER_LEN + self.payload.len()
    }
}

impl fmt::Debug for IpPacket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IpPacket {{ {} -> {}, {:?}, ttl {}, {} bytes }}",
            self.header.src,
            self.header.dst,
            self.header.proto,
            self.header.ttl,
            self.payload.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proto_roundtrip() {
        for p in [
            IpProto::Icmp,
            IpProto::Tcp,
            IpProto::Udp,
            IpProto::Other(89),
        ] {
            assert_eq!(IpProto::from_u8(p.to_u8()), p);
        }
    }

    #[test]
    fn packet_roundtrip() {
        let pkt = IpPacket::new(
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            IpProto::Udp,
            Bytes::from_static(b"payload"),
        );
        let wire = pkt.encode();
        let parsed = IpPacket::decode(&wire).unwrap();
        assert_eq!(parsed, pkt);
    }

    #[test]
    fn corrupt_checksum_rejected() {
        let pkt = IpPacket::new(
            Ipv4Addr::new(10, 1, 0, 1),
            Ipv4Addr::new(192, 168, 0, 1),
            IpProto::Tcp,
            Bytes::from_static(b"x"),
        );
        let mut wire = pkt.encode().to_vec();
        wire[12] ^= 0xff; // flip a source-address octet
        assert!(IpPacket::decode(&wire).is_none());
    }

    #[test]
    fn short_and_bogus_buffers_rejected() {
        assert!(IpPacket::decode(&[]).is_none());
        assert!(IpPacket::decode(&[0x45; 10]).is_none());
        let pkt = IpPacket::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Icmp,
            Bytes::new(),
        );
        let mut wire = pkt.encode().to_vec();
        wire[0] = 0x46; // IHL 6: options unsupported
        assert!(IpPacket::decode(&wire).is_none());
    }

    #[test]
    fn ttl_decrement() {
        let mut pkt = IpPacket::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Icmp,
            Bytes::new(),
        );
        pkt.header.ttl = 2;
        assert!(pkt.decrement_ttl());
        assert_eq!(pkt.header.ttl, 1);
        assert!(!pkt.decrement_ttl());
        assert_eq!(pkt.header.ttl, 0);
    }

    #[test]
    fn trailing_garbage_dropped() {
        let pkt = IpPacket::new(
            Ipv4Addr::new(1, 1, 1, 1),
            Ipv4Addr::new(2, 2, 2, 2),
            IpProto::Udp,
            Bytes::from_static(b"ab"),
        );
        let mut wire = pkt.encode().to_vec();
        wire.extend_from_slice(b"JUNK");
        let parsed = IpPacket::decode(&wire).unwrap();
        assert_eq!(&parsed.payload[..], b"ab");
    }
}
