//! A minimal immutable byte buffer.
//!
//! Stand-in for the `bytes` crate's `Bytes`: a cheaply clonable,
//! reference-counted, immutable byte slice. The simulator only ever needs
//! clone-and-read semantics (frames are encoded once and fanned out), so a
//! plain `Arc<[u8]>` carries the whole API surface we use.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte slice. Cloning is O(1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wrap a static byte string.
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Bytes {
            data: Arc::from(bytes),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(v.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            if (0x20..0x7f).contains(&b) && b != b'"' && b != b'\\' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_reads() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
        assert_eq!(&Bytes::from_static(b"hi")[..], b"hi");
        assert_eq!(&Bytes::copy_from_slice(&[9, 9])[..], &[9, 9]);
        assert_eq!(Bytes::default(), Bytes::new());
    }

    #[test]
    fn debug_escapes_non_printables() {
        let b = Bytes::from(vec![b'a', 0x00]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
