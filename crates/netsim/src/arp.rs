//! ARP: address resolution over Ethernet.
//!
//! ARP is load-bearing in vBGP: when an experiment selects a route, it ARPs
//! for the route's (virtual) next-hop IP and the vBGP router answers with the
//! per-neighbor MAC it allocated (paper §3.2.2, Fig. 2b steps 6–7). The cache
//! mirrors smoltcp's behaviour: entries expire after one minute and requests
//! for the same address are paced.

use crate::bytes::Bytes;
use std::collections::HashMap;
use std::net::Ipv4Addr;

use crate::mac::MacAddr;
use crate::time::{SimDuration, SimTime};

/// ARP operation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArpOp {
    /// Who-has request (1).
    Request,
    /// Is-at reply (2).
    Reply,
}

/// An ARP packet for IPv4 over Ethernet.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArpPacket {
    /// Operation.
    pub op: ArpOp,
    /// Sender hardware address.
    pub sender_mac: MacAddr,
    /// Sender protocol address.
    pub sender_ip: Ipv4Addr,
    /// Target hardware address (zero in requests).
    pub target_mac: MacAddr,
    /// Target protocol address.
    pub target_ip: Ipv4Addr,
}

/// Wire length of an IPv4-over-Ethernet ARP packet.
pub const ARP_PACKET_LEN: usize = 28;

impl ArpPacket {
    /// Build a who-has request for `target_ip`.
    pub fn request(sender_mac: MacAddr, sender_ip: Ipv4Addr, target_ip: Ipv4Addr) -> Self {
        ArpPacket {
            op: ArpOp::Request,
            sender_mac,
            sender_ip,
            target_mac: MacAddr::ZERO,
            target_ip,
        }
    }

    /// Build the reply answering `request`, claiming `our_mac` owns
    /// `request.target_ip`.
    pub fn reply_to(request: &ArpPacket, our_mac: MacAddr) -> Self {
        ArpPacket {
            op: ArpOp::Reply,
            sender_mac: our_mac,
            sender_ip: request.target_ip,
            target_mac: request.sender_mac,
            target_ip: request.sender_ip,
        }
    }

    /// Serialize to wire bytes (HTYPE=1, PTYPE=0x0800, HLEN=6, PLEN=4).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(ARP_PACKET_LEN);
        out.extend_from_slice(&1u16.to_be_bytes()); // HTYPE Ethernet
        out.extend_from_slice(&0x0800u16.to_be_bytes()); // PTYPE IPv4
        out.push(6);
        out.push(4);
        let op: u16 = match self.op {
            ArpOp::Request => 1,
            ArpOp::Reply => 2,
        };
        out.extend_from_slice(&op.to_be_bytes());
        out.extend_from_slice(&self.sender_mac.octets());
        out.extend_from_slice(&self.sender_ip.octets());
        out.extend_from_slice(&self.target_mac.octets());
        out.extend_from_slice(&self.target_ip.octets());
        Bytes::from(out)
    }

    /// Parse from wire bytes, rejecting non-Ethernet/IPv4 ARP.
    pub fn decode(buf: &[u8]) -> Option<Self> {
        if buf.len() < ARP_PACKET_LEN {
            return None;
        }
        if buf[0..2] != [0, 1] || buf[2..4] != [0x08, 0x00] || buf[4] != 6 || buf[5] != 4 {
            return None;
        }
        let op = match u16::from_be_bytes([buf[6], buf[7]]) {
            1 => ArpOp::Request,
            2 => ArpOp::Reply,
            _ => return None,
        };
        let mac_at = |i: usize| {
            let mut m = [0u8; 6];
            m.copy_from_slice(&buf[i..i + 6]);
            MacAddr(m)
        };
        let ip_at = |i: usize| Ipv4Addr::new(buf[i], buf[i + 1], buf[i + 2], buf[i + 3]);
        Some(ArpPacket {
            op,
            sender_mac: mac_at(8),
            sender_ip: ip_at(14),
            target_mac: mac_at(18),
            target_ip: ip_at(24),
        })
    }
}

/// How long a learned entry stays valid (smoltcp: one minute).
pub const ARP_ENTRY_LIFETIME: SimDuration = SimDuration::from_secs(60);

/// Minimum interval between requests for the same address (smoltcp: 1 s).
pub const ARP_REQUEST_PACING: SimDuration = SimDuration::from_secs(1);

#[derive(Clone, Copy, Debug)]
struct CacheEntry {
    mac: MacAddr,
    expires: SimTime,
}

/// An ARP cache with expiry and request pacing.
#[derive(Debug, Default)]
pub struct ArpCache {
    entries: HashMap<Ipv4Addr, CacheEntry>,
    last_request: HashMap<Ipv4Addr, SimTime>,
}

impl ArpCache {
    /// Create an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a (IP, MAC) binding learned at `now`.
    pub fn insert(&mut self, ip: Ipv4Addr, mac: MacAddr, now: SimTime) {
        self.entries.insert(
            ip,
            CacheEntry {
                mac,
                expires: now + ARP_ENTRY_LIFETIME,
            },
        );
        self.last_request.remove(&ip);
    }

    /// Look up a non-expired binding.
    pub fn lookup(&self, ip: Ipv4Addr, now: SimTime) -> Option<MacAddr> {
        self.entries
            .get(&ip)
            .filter(|e| e.expires > now)
            .map(|e| e.mac)
    }

    /// Whether a request for `ip` may be sent now (pacing), recording the
    /// attempt if so.
    pub fn may_request(&mut self, ip: Ipv4Addr, now: SimTime) -> bool {
        match self.last_request.get(&ip) {
            Some(&last) if now.saturating_since(last) < ARP_REQUEST_PACING => false,
            _ => {
                self.last_request.insert(ip, now);
                true
            }
        }
    }

    /// Drop expired entries; returns how many were evicted.
    pub fn evict_expired(&mut self, now: SimTime) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.expires > now);
        before - self.entries.len()
    }

    /// Number of live entries (including possibly-expired ones not yet
    /// evicted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(n: u32) -> MacAddr {
        MacAddr::from_id(n)
    }

    #[test]
    fn packet_roundtrip() {
        let req = ArpPacket::request(
            mac(1),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(10, 0, 0, 2),
        );
        let parsed = ArpPacket::decode(&req.encode()).unwrap();
        assert_eq!(parsed, req);

        let rep = ArpPacket::reply_to(&req, mac(2));
        assert_eq!(rep.op, ArpOp::Reply);
        assert_eq!(rep.sender_ip, Ipv4Addr::new(10, 0, 0, 2));
        assert_eq!(rep.target_mac, mac(1));
        let parsed = ArpPacket::decode(&rep.encode()).unwrap();
        assert_eq!(parsed, rep);
    }

    #[test]
    fn decode_rejects_malformed() {
        assert!(ArpPacket::decode(&[0u8; 27]).is_none());
        let req = ArpPacket::request(mac(1), Ipv4Addr::UNSPECIFIED, Ipv4Addr::LOCALHOST);
        let mut wire = req.encode().to_vec();
        wire[7] = 9; // bogus op
        assert!(ArpPacket::decode(&wire).is_none());
        let mut wire = req.encode().to_vec();
        wire[1] = 2; // not Ethernet
        assert!(ArpPacket::decode(&wire).is_none());
    }

    #[test]
    fn cache_expiry() {
        let mut cache = ArpCache::new();
        let ip = Ipv4Addr::new(127, 65, 0, 1);
        let t0 = SimTime::ZERO;
        cache.insert(ip, mac(9), t0);
        assert_eq!(
            cache.lookup(ip, t0 + SimDuration::from_secs(59)),
            Some(mac(9))
        );
        assert_eq!(cache.lookup(ip, t0 + SimDuration::from_secs(61)), None);
        assert_eq!(cache.evict_expired(t0 + SimDuration::from_secs(61)), 1);
        assert!(cache.is_empty());
    }

    #[test]
    fn request_pacing() {
        let mut cache = ArpCache::new();
        let ip = Ipv4Addr::new(127, 65, 0, 2);
        let t0 = SimTime::ZERO;
        assert!(cache.may_request(ip, t0));
        assert!(!cache.may_request(ip, t0 + SimDuration::from_millis(500)));
        assert!(cache.may_request(ip, t0 + SimDuration::from_secs(2)));
    }

    #[test]
    fn insert_resets_pacing() {
        let mut cache = ArpCache::new();
        let ip = Ipv4Addr::new(127, 65, 0, 3);
        assert!(cache.may_request(ip, SimTime::ZERO));
        cache.insert(ip, mac(5), SimTime::ZERO);
        // Binding learned; a fresh request is allowed immediately if it
        // expires later.
        assert!(cache.may_request(ip, SimTime::from_nanos(1)));
    }
}
