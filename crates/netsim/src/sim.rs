//! The simulator: nodes, ports, links and the event loop.
//!
//! A [`Simulator`] owns a set of [`Node`]s connected by point-to-point
//! [`Link`]s. Nodes react to frames and timers through a [`Ctx`] handle that
//! collects their outputs; the simulator applies those outputs after each
//! callback, keeping borrows simple and execution deterministic.
//!
//! # Sharded-parallel execution
//!
//! [`Simulator::set_shards`] partitions the nodes into shards, each with its
//! own event queue, and [`Simulator::run_until`] then advances them on a
//! persistent pinned worker pool (one thread per shard, spawned once per
//! shard-count change and parked on a channel between windows) using
//! conservative lookahead windows: a window `[gvt, end)` is opened from the
//! global minimum event time `gvt`, and within it every shard can run
//! independently because no frame emitted inside the window can cross a
//! shard boundary before the window closes. Cross-shard deliveries land in
//! lock-free single-producer/single-consumer lanes (one per ordered shard
//! pair) that the coordinator drains at the window barrier; chaos steps are
//! applied on the main thread between windows (a window never crosses a
//! chaos timestamp), so link state is frozen while workers run.
//!
//! Window bounds are adaptive. The floor is the classic conservative bound
//! `gvt + min cross-shard link latency`; the sound widened bound is
//! `min over shards s with pending events of (t_s + L_out(s))`, where `t_s`
//! is shard `s`'s earliest queued event and `L_out(s)` the minimum latency
//! of its cross-shard links: any cross-shard arrival emitted during the
//! window is the end of a causal chain starting at an event at or after
//! `t_s` whose final hop adds at least `L_out(s)`. On top of that sits a
//! doubling heuristic cap — windows widen while no cross-shard traffic
//! appears and snap back to the conservative bound when a lane carries a
//! frame — purely to pace barrier frequency; soundness never depends on it,
//! so the window schedule is unobservable in the results.
//!
//! Runs are bit-identical at any shard count because nothing observable
//! depends on the layout:
//!
//! * events are ordered by an intrinsic [`EventKey`] rather than a global
//!   insertion counter, so each shard pops its events in the same order the
//!   single-threaded run would;
//! * every node and every link direction draws from its own seeded
//!   [`SimRng`] stream, so the random rolls a frame sees depend only on
//!   which link carried it and how many frames preceded it there;
//! * observability records carry their dispatch key and merge canonically
//!   (see `peering-obs`), so snapshots and journal digests match too.
//!
//! [`Simulator::run_until_idle`] uses the same windowed engine when shards
//! are configured (quiescence is checked at window barriers, where the
//! coordinator has the global queue view); the sequential engine is the
//! canonical semantics the parallel one must (and does) reproduce. A panic
//! on a shard worker does not abort the process: the window is collected,
//! the simulator is poisoned, and the coordinator re-raises a diagnostic
//! naming the shard, the window bounds and the journal tail.

use std::any::Any;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::{mpsc, Mutex, MutexGuard};

use peering_obs::{Counter, DispatchKey, EventKind as ObsEvent, Obs, MAX_LANES};

use crate::chaos::{ChaosChange, ChaosPlan};
use crate::event::{Event, EventKey, EventKind, EventQueue, CLASS_CHAOS, CLASS_NODE, EXTERNAL_SRC};
use crate::frame::EtherFrame;
use crate::link::{FaultInjector, Link, LinkConfig, LinkStats, TxOutcome};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDirection, TraceEvent, Tracer};

/// Identifies a node within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a port on a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

/// Identifies a link within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

/// The two `(node, port)` endpoints of a link.
pub type LinkEnds = ((NodeId, PortId), (NodeId, PortId));

/// Deterministic pseudo-random source for fault injection (SplitMix64).
///
/// Everything random in the simulator — loss rolls, corruption positions —
/// draws from one of these. Each node and each link direction owns an
/// independent stream derived from the simulator seed, so the rolls a
/// component sees depend only on its own history, never on how the
/// simulator's work is partitioned across shards.
#[derive(Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift mapping: fine for fault injection, avoids modulo
        // bias better than `% bound` for small bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Salt mixed into per-node RNG streams (`"NODE"` in ASCII, high bits).
const NODE_STREAM_SALT: u64 = 0x4E4F_4445_0000_0000;

/// Salt mixed into per-link-direction RNG streams (`"LINK"` in ASCII).
const LINK_STREAM_SALT: u64 = 0x4C49_4E4B_0000_0000;

/// Derive an independent stream from the simulator seed and a stable salt.
fn stream(seed: u64, salt: u64) -> SimRng {
    let mut mixer = SimRng::new(salt);
    SimRng::new(seed ^ mixer.next_u64())
}

/// Behaviour plugged into the simulator.
///
/// Implementors are event-driven: they receive frames and timer expirations,
/// and emit frames / arm timers through the [`Ctx`]. The `Any` supertrait
/// lets callers downcast back to the concrete type via [`Simulator::node`];
/// the `Send` supertrait lets sharded-parallel runs move whole shards onto
/// worker threads.
pub trait Node: Any + Send {
    /// A frame arrived on `port`.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame);

    /// Several frames arrived on `port` at the same instant. The simulator
    /// coalesces same-time deliveries to one `(node, port)` into a single
    /// call so nodes with a batched fast path can amortize per-packet work;
    /// the default just replays them through [`Node::on_frame`] in order.
    fn on_frames(&mut self, ctx: &mut Ctx<'_>, port: PortId, frames: Vec<EtherFrame>) {
        for frame in frames {
            self.on_frame(ctx, port, frame);
        }
    }

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Human-readable label for traces.
    fn label(&self) -> String {
        "node".to_string()
    }
}

enum Action {
    Send { port: PortId, frame: EtherFrame },
    Timer { at: SimTime, token: u64 },
}

/// Handle given to node callbacks for interacting with the simulation.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action>,
    rng: &'a mut SimRng,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit a frame out of `port`. If the port is unconnected the frame
    /// is silently discarded (counted by the simulator).
    pub fn send_frame(&mut self, port: PortId, frame: EtherFrame) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Arm a timer that fires after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer {
            at: self.now + delay,
            token,
        });
    }

    /// Deterministic randomness: this node's private stream, derived from
    /// the simulator seed at registration.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// A node's storage: the behaviour box, its private RNG stream and the
/// per-source sequence counter that numbers the events it emits.
struct NodeSlot {
    node: Option<Box<dyn Node>>,
    rng: SimRng,
    seq: u64,
    /// Reusable action buffer: drained by `apply_actions` after every
    /// callback, so it is always empty between dispatches. Keeping it in
    /// the slot means the per-event `Vec` allocation happens once per node
    /// instead of once per dispatch.
    actions: Vec<Action>,
}

/// `UnsafeCell` wrapper so shards on different worker threads can each
/// mutate their own nodes through a shared `&Topo`.
///
/// # Safety discipline
///
/// Exclusive access to a slot is guaranteed structurally, never checked:
///
/// * outside `run_parallel_until`, only the main thread touches slots —
///   `&mut self` methods have exclusive access by the borrow rules, and
///   `&self` methods ([`Simulator::node`]) only read;
/// * inside a parallel window, exactly one worker owns each shard and only
///   dispatches events whose destination is in that shard, so two workers
///   never reach the same slot.
struct NodeCell(UnsafeCell<NodeSlot>);

// SAFETY: see the discipline above — all access is single-writer.
unsafe impl Sync for NodeCell {}

/// A link plus its endpoints and the two per-direction fault-roll streams.
struct LinkState {
    link: Link,
    ends: [(NodeId, PortId); 2],
    rngs: [SimRng; 2],
}

/// Immutable-during-a-window topology shared with worker threads. Links sit
/// behind mutexes because two shards may legitimately transmit the two
/// directions of one cross-shard link concurrently; each direction's state
/// (queue backlog, stats, RNG) still has a single deterministic writer.
struct Topo {
    nodes: Vec<NodeCell>,
    links: Vec<Mutex<LinkState>>,
    ports: HashMap<(NodeId, PortId), (LinkId, usize)>,
}

/// The simulator's own metric handles (cloneable, atomics-backed).
#[derive(Clone)]
struct SimCounters {
    link_drops: Counter,
    corrupted: Counter,
    duplicated: Counter,
    reordered: Counter,
    chaos_steps: Counter,
}

impl SimCounters {
    fn register(obs: &Obs) -> Self {
        SimCounters {
            link_drops: obs.counter("netsim.link_drops"),
            corrupted: obs.counter("netsim.frames_corrupted"),
            duplicated: obs.counter("netsim.frames_duplicated"),
            reordered: obs.counter("netsim.frames_reordered"),
            chaos_steps: obs.counter("netsim.chaos_steps"),
        }
    }
}

/// Per-dispatch tallies, merged into the simulator after each event (or
/// each parallel window — the sums are commutative, so merge order cannot
/// affect the result).
#[derive(Default)]
struct LocalStats {
    unrouted: u64,
    processed: u64,
}

/// Everything an event dispatch needs besides the queue it pops from.
struct DispatchEnv<'a> {
    topo: &'a Topo,
    counters: &'a SimCounters,
    out: &'a mut Vec<Event>,
    stats: &'a mut LocalStats,
    tracer: Option<&'a mut Tracer>,
}

fn key_for(at: SimTime, dst: u32, src: u32, seq: &mut u64) -> EventKey {
    let key = EventKey {
        at,
        class: CLASS_NODE,
        dst,
        src,
        seq: *seq,
    };
    *seq += 1;
    key
}

/// Apply a node's (or an external driver's) buffered actions: arm timers and
/// offer frames to links. Emitted events go to `env.out`; the caller routes
/// them to the right shard queue.
fn apply_actions(
    env: &mut DispatchEnv<'_>,
    node: NodeId,
    now: SimTime,
    actions: &mut Vec<Action>,
    src: u32,
    seq: &mut u64,
) {
    for action in actions.drain(..) {
        match action {
            Action::Timer { at, token } => {
                env.out.push(Event {
                    key: key_for(at, node.0, src, seq),
                    kind: EventKind::Timer { node, token },
                });
            }
            Action::Send { port, frame } => {
                let Some(&(link_id, end)) = env.topo.ports.get(&(node, port)) else {
                    env.stats.unrouted += 1;
                    continue;
                };
                if let Some(tracer) = env.tracer.as_deref_mut() {
                    tracer.record(TraceEvent {
                        time: now,
                        node,
                        port,
                        direction: TraceDirection::Tx,
                        src: frame.src,
                        dst: frame.dst,
                        ethertype: frame.ethertype,
                        len: frame.wire_len(),
                    });
                }
                let mut guard = env.topo.links[link_id.0 as usize]
                    .lock()
                    .expect("link lock poisoned");
                let state = &mut *guard;
                let rng = &mut state.rngs[end];
                let drop_roll = rng.below(100) as u8;
                let corrupt_roll = rng.below(100) as u8;
                let is_data_plane = matches!(
                    frame.ethertype,
                    crate::frame::EtherType::Ipv4 | crate::frame::EtherType::Ipv6
                );
                let (outcome, corrupt) = state.link.transmit_typed(
                    end,
                    now,
                    frame.wire_len(),
                    drop_roll,
                    corrupt_roll,
                    is_data_plane,
                );
                if matches!(outcome, TxOutcome::Dropped) {
                    env.counters.link_drops.inc();
                }
                if let TxOutcome::Deliver(at) = outcome {
                    let (dst_node, dst_port) = state.ends[1 - end];
                    let faults = state.link.config.faults;
                    let rng = &mut state.rngs[end];
                    let mut frame = frame;
                    if corrupt && !frame.payload.is_empty() {
                        let mut payload = frame.payload.to_vec();
                        let idx = rng.below(payload.len() as u64) as usize;
                        payload[idx] ^= 1 << rng.below(8);
                        frame.payload = payload.into();
                        env.counters.corrupted.inc();
                    }
                    // Reorder/duplicate rolls are only drawn when the
                    // link configures them, so runs without these faults
                    // keep their exact RNG stream.
                    let mut at = at;
                    let mut duplicate = false;
                    if faults.perturbs_delivery() && (is_data_plane || !faults.data_plane_only) {
                        let reorder_roll = rng.below(100) as u8;
                        let dup_roll = rng.below(100) as u8;
                        if reorder_roll < faults.reorder_pct
                            && faults.reorder_window > SimDuration::ZERO
                        {
                            let extra = rng.below(faults.reorder_window.as_nanos().max(1));
                            at += SimDuration::from_nanos(extra);
                            env.counters.reordered.inc();
                        }
                        duplicate = dup_roll < faults.duplicate_pct;
                    }
                    if duplicate {
                        env.counters.duplicated.inc();
                        env.out.push(Event {
                            key: key_for(at, dst_node.0, src, seq),
                            kind: EventKind::FrameDelivery {
                                node: dst_node,
                                port: dst_port,
                                frame: frame.clone(),
                            },
                        });
                    }
                    env.out.push(Event {
                        key: key_for(at, dst_node.0, src, seq),
                        kind: EventKind::FrameDelivery {
                            node: dst_node,
                            port: dst_port,
                            frame,
                        },
                    });
                }
            }
        }
    }
}

/// Run one node callback and apply the actions it buffered.
fn dispatch_node(
    env: &mut DispatchEnv<'_>,
    now: SimTime,
    id: NodeId,
    f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>),
) {
    let Some(cell) = env.topo.nodes.get(id.0 as usize) else {
        return;
    };
    // SAFETY: per the NodeCell discipline — the caller is either the main
    // thread holding `&mut Simulator`, or the one worker that owns this
    // node's shard for the current window — this is the only live access.
    let slot = unsafe { &mut *cell.0.get() };
    let Some(mut node) = slot.node.take() else {
        // Node is mid-callback (re-entrant event) — cannot happen with the
        // action-buffer design, but degrade gracefully.
        return;
    };
    let mut actions = std::mem::take(&mut slot.actions);
    {
        let mut ctx = Ctx {
            now,
            node: id,
            actions: &mut actions,
            rng: &mut slot.rng,
        };
        f(node.as_mut(), &mut ctx);
    }
    slot.node = Some(node);
    apply_actions(env, id, now, &mut actions, id.0, &mut slot.seq);
    slot.actions = actions;
}

fn trace_rx(
    env: &mut DispatchEnv<'_>,
    now: SimTime,
    node: NodeId,
    port: PortId,
    frame: &EtherFrame,
) {
    if let Some(tracer) = env.tracer.as_deref_mut() {
        tracer.record(TraceEvent {
            time: now,
            node,
            port,
            direction: TraceDirection::Rx,
            src: frame.src,
            dst: frame.dst,
            ethertype: frame.ethertype,
            len: frame.wire_len(),
        });
    }
}

/// Process one node event popped from `queue` (same-instant deliveries to
/// the same `(node, port)` are coalesced from the queue head into one
/// batched callback). Chaos events never reach here — they live in the
/// main thread's dedicated queue.
fn process_node_event(env: &mut DispatchEnv<'_>, obs: &Obs, event: Event, queue: &mut EventQueue) {
    let key = event.key;
    let now = key.at;
    obs.set_now_nanos(now.as_nanos());
    peering_obs::set_dispatch_key(DispatchKey {
        at_nanos: now.as_nanos(),
        class: key.class,
        dst: key.dst,
        src: key.src,
        seq: key.seq,
    });
    env.stats.processed += 1;
    match event.kind {
        EventKind::FrameDelivery { node, port, frame } => {
            trace_rx(env, now, node, port, &frame);
            // Coalesce the consecutive deliveries for the same instant,
            // node and port into one batched callback. Only head-of-queue
            // events are taken, so the key order across nodes is untouched.
            let mut batch: Option<Vec<EtherFrame>> = None;
            while let Some(next) = queue.peek() {
                let same = next.key.at == now
                    && matches!(
                        &next.kind,
                        EventKind::FrameDelivery { node: n, port: p, .. }
                            if *n == node && *p == port
                    );
                if !same {
                    break;
                }
                let Some(ev) = queue.pop() else {
                    break;
                };
                let EventKind::FrameDelivery { frame, .. } = ev.kind else {
                    unreachable!("peek said FrameDelivery");
                };
                env.stats.processed += 1;
                trace_rx(env, now, node, port, &frame);
                batch
                    .get_or_insert_with(|| Vec::with_capacity(4))
                    .push(frame);
            }
            match batch {
                None => dispatch_node(env, now, node, |n, ctx| n.on_frame(ctx, port, frame)),
                Some(mut rest) => {
                    rest.insert(0, frame);
                    dispatch_node(env, now, node, |n, ctx| n.on_frames(ctx, port, rest));
                }
            }
        }
        EventKind::Timer { node, token } => {
            dispatch_node(env, now, node, |n, ctx| n.on_timer(ctx, token));
        }
        EventKind::Chaos(_) => unreachable!("chaos events are scheduled on the main thread only"),
    }
}

/// Default ceiling for the adaptive-window doubling multiplier: windows
/// may widen up to `4096 × min cross-shard latency` while no cross-shard
/// traffic appears. Purely a barrier-pacing heuristic — any value ≥ 1
/// yields bit-identical results (see `tests/props.rs`).
const DEFAULT_WINDOW_CAP: u64 = 4096;

/// A message from the coordinator to a parked shard worker.
enum Job {
    /// Execute one lookahead window. The raw pointers inside are valid
    /// until the worker reports on the done channel.
    Window(WindowJob),
    /// Tear the worker down (pool drop or shard-count change).
    Shutdown,
}

/// One window of work for one shard: the window bounds plus raw views of
/// the simulator state the worker is allowed to touch.
///
/// # Safety discipline
///
/// The pointers reference fields of the `Simulator` that owns the pool.
/// They are valid and unaliased for the duration of the window because the
/// coordinator (a) constructs them inside `run_parallel_until` while
/// holding `&mut Simulator`, so the simulator cannot move or be touched
/// elsewhere, and (b) blocks until every dispatched worker has reported
/// done before using any of the pointed-at state again. A worker only
/// mutates its own shard's queue (`queues.add(shard)`), its own nodes
/// (per the [`NodeCell`] discipline) and its own row of lanes
/// (`lanes[shard * shards + dst]`), so no two threads ever write the same
/// location.
struct WindowJob {
    gvt: SimTime,
    end: SimTime,
    topo: *const Topo,
    counters: *const SimCounters,
    obs: *const Obs,
    node_shard: *const u32,
    node_shard_len: usize,
    queues: *mut EventQueue,
    lanes: *const UnsafeCell<Vec<Event>>,
    shards: usize,
}

// SAFETY: see the discipline on `WindowJob` — the pointers outlive the
// window and every location has exactly one accessor during it.
unsafe impl Send for WindowJob {}

/// A worker's end-of-window report: per-window tallies, or the panic
/// payload when the shard blew up mid-window.
struct WorkerDone {
    shard: usize,
    result: Result<(LocalStats, SimTime), String>,
}

/// Persistent pinned worker pool: one thread per shard, spawned once per
/// shard-count change and parked on a blocking channel `recv` between
/// windows. Replaces the old per-window `std::thread::scope` respawn,
/// whose spawn/join cost dominated short windows.
///
/// Also owns the single-producer/single-consumer cross-shard lanes:
/// `lanes[src * shards + dst]` is written only by worker `src` during a
/// window and drained only by the coordinator at the barrier, so pushes
/// are plain `Vec` appends — no locks on the cross-shard delivery path.
struct WorkerPool {
    shards: usize,
    jobs: Vec<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<WorkerDone>,
    handles: Vec<std::thread::JoinHandle<()>>,
    lanes: Vec<UnsafeCell<Vec<Event>>>,
}

// SAFETY: the lanes are the only non-Sync payload; access follows the
// single-writer discipline documented on `WorkerPool` and `WindowJob`.
unsafe impl Sync for WorkerPool {}

impl WorkerPool {
    fn new(shards: usize) -> Self {
        let (done_tx, done_rx) = mpsc::channel();
        let mut jobs = Vec::with_capacity(shards);
        let mut handles = Vec::with_capacity(shards);
        for shard in 0..shards {
            let (tx, rx) = mpsc::channel();
            let done = done_tx.clone();
            handles.push(
                std::thread::Builder::new()
                    .name(format!("netsim-shard-{shard}"))
                    .spawn(move || worker_main(shard, rx, done))
                    .expect("spawn shard worker"),
            );
            jobs.push(tx);
        }
        let lanes = (0..shards * shards)
            .map(|_| UnsafeCell::new(Vec::new()))
            .collect();
        WorkerPool {
            shards,
            jobs,
            done_rx,
            handles,
            lanes,
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for tx in &self.jobs {
            let _ = tx.send(Job::Shutdown);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Body of a pool worker: park on `recv`, run the window, report, repeat.
/// Panics inside a window are caught and shipped back as a diagnostic so
/// the coordinator can poison the run instead of aborting opaquely.
fn worker_main(shard: usize, rx: mpsc::Receiver<Job>, done: mpsc::Sender<WorkerDone>) {
    // Lane 0 is the main thread; workers are 1-based so each shard's
    // journal records stay distinguishable.
    peering_obs::set_thread_lane(shard + 1);
    let mut out: Vec<Event> = Vec::new();
    while let Ok(Job::Window(job)) = rx.recv() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            // SAFETY: this worker is the sole owner of shard `shard` for
            // the window; see `WindowJob`.
            unsafe { run_shard_window(shard, &job, &mut out) }
        }))
        .map_err(|payload| panic_message(payload.as_ref()));
        peering_obs::clear_dispatch_key();
        if done.send(WorkerDone { shard, result }).is_err() {
            break;
        }
    }
}

/// Render a caught panic payload for the poison diagnostic.
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Execute one shard's events inside `[job.gvt, job.end)`.
///
/// # Safety
/// Caller must be the unique owner of shard `shard` for this window and
/// the pointers in `job` must satisfy the `WindowJob` discipline.
unsafe fn run_shard_window(
    shard: usize,
    job: &WindowJob,
    out: &mut Vec<Event>,
) -> (LocalStats, SimTime) {
    out.clear();
    let topo = &*job.topo;
    let counters = &*job.counters;
    let obs = &*job.obs;
    let node_shard = std::slice::from_raw_parts(job.node_shard, job.node_shard_len);
    let queue = &mut *job.queues.add(shard);
    let mut stats = LocalStats::default();
    let mut last = job.gvt;
    while queue.peek_time().is_some_and(|t| t < job.end) {
        let ev = queue.pop().expect("peeked event");
        debug_assert!(ev.key.at >= last, "time went backwards");
        last = ev.key.at;
        {
            let mut env = DispatchEnv {
                topo,
                counters,
                out: &mut *out,
                stats: &mut stats,
                tracer: None,
            };
            process_node_event(&mut env, obs, ev, queue);
        }
        for e in out.drain(..) {
            let dst = node_shard.get(e.key.dst as usize).copied().unwrap_or(0) as usize;
            if dst == shard {
                queue.push(e.key, e.kind);
            } else {
                // SPSC push: this worker is the only producer for lane
                // (shard, dst) during the window; the coordinator is the
                // only consumer, at the barrier while workers are parked.
                let lane = &mut *(*job.lanes.add(shard * job.shards + dst)).get();
                lane.push(e);
            }
        }
    }
    (stats, last)
}

/// `t + d` in nanoseconds, saturating (the "no cross-shard links" bound is
/// effectively infinite).
fn sat_add(t: SimTime, d: SimDuration) -> SimTime {
    SimTime::from_nanos(t.as_nanos().saturating_add(d.as_nanos()))
}

/// The discrete-event simulator.
pub struct Simulator {
    time: SimTime,
    /// Requested shard count; `queues` matches it after `ensure_partition`.
    shards: usize,
    /// Shard assignment per node id.
    node_shard: Vec<u32>,
    /// One event queue per shard (node events only).
    queues: Vec<EventQueue>,
    /// Chaos steps, kept on the main thread: windows never cross a chaos
    /// timestamp, so link state is frozen while workers run.
    chaos_queue: EventQueue,
    /// Sequence counter for externally-pushed events (`src = EXTERNAL_SRC`).
    ext_seq: u64,
    /// Sequence counter for chaos events.
    chaos_seq: u64,
    needs_repartition: bool,
    topo: Topo,
    seed: u64,
    /// Control-plane stream for callers ([`Simulator::rng_mut`]), e.g. chaos
    /// plan generation; node callbacks use their own per-node streams.
    rng: SimRng,
    tracer: Tracer,
    /// Frames sent to unconnected ports (usually a wiring bug in a scenario).
    pub unrouted_frames: u64,
    /// Total events processed.
    pub processed_events: u64,
    /// Persistent worker pool, built lazily on the first parallel window
    /// and rebuilt when the shard count changes.
    pool: Option<WorkerPool>,
    /// Fatal diagnostic from a panicked shard worker. Node state inside
    /// the panicked window is torn, so every subsequent run re-raises it.
    poisoned: Option<String>,
    /// Adaptive-window doubling ceiling (see [`Simulator::set_window_cap`]).
    window_cap: u64,
    /// Reusable event buffer for the sequential step path.
    scratch_out: Vec<Event>,
    obs: Obs,
    counters: SimCounters,
}

impl Simulator {
    /// Create a simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        let obs = Obs::new();
        let counters = SimCounters::register(&obs);
        Simulator {
            time: SimTime::ZERO,
            shards: 1,
            node_shard: Vec::new(),
            queues: vec![EventQueue::new()],
            chaos_queue: EventQueue::new(),
            ext_seq: 0,
            chaos_seq: 0,
            needs_repartition: false,
            topo: Topo {
                nodes: Vec::new(),
                links: Vec::new(),
                ports: HashMap::new(),
            },
            seed,
            rng: SimRng::new(seed),
            tracer: Tracer::disabled(),
            unrouted_frames: 0,
            processed_events: 0,
            pool: None,
            poisoned: None,
            window_cap: DEFAULT_WINDOW_CAP,
            scratch_out: Vec::new(),
            obs,
            counters,
        }
    }

    /// Adopt a shared observability handle (the platform installs one
    /// registry for the whole topology); the simulator's own counters and
    /// chaos events move to it, and the journal clock tracks `now()`.
    pub fn set_obs(&mut self, obs: Obs) {
        let counters = SimCounters::register(&obs);
        obs.set_now_nanos(self.time.as_nanos());
        self.obs = obs;
        self.counters = counters;
    }

    /// The simulator's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Enable frame tracing (see [`Tracer`]). Tracing pins execution to the
    /// sequential engine (the trace ring is not thread-safe and its order is
    /// part of the observable output).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access recorded trace events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Partition nodes into `shards` event-queue shards, round-robin by node
    /// id (use [`Simulator::set_node_shard`] to refine). Clamped to
    /// `1..=63` so every shard gets its own observability journal lane.
    /// With more than one shard, [`Simulator::run_until`] executes windows
    /// of events on worker threads; results are bit-identical to one shard.
    pub fn set_shards(&mut self, shards: usize) {
        let shards = shards.clamp(1, MAX_LANES - 1);
        if self.pool.as_ref().is_some_and(|p| p.shards != shards) {
            // Shard-count change: retire the old pool (its lane grid and
            // thread count no longer match). A new one is spawned lazily
            // on the next parallel window.
            self.pool = None;
        }
        self.shards = shards;
        for (i, s) in self.node_shard.iter_mut().enumerate() {
            *s = (i % shards) as u32;
        }
        self.needs_repartition = true;
    }

    /// Cap the adaptive-window doubling multiplier: while windows see no
    /// cross-shard traffic they widen by doubling, up to `cap × min
    /// cross-shard latency`, and snap back to the conservative bound when
    /// a cross-shard frame appears. The schedule is a pacing detail only —
    /// any `cap ≥ 1` produces bit-identical results (property-tested in
    /// `tests/props.rs`); `1` pins the engine to fixed conservative
    /// windows.
    pub fn set_window_cap(&mut self, cap: u64) {
        self.window_cap = cap.max(1);
    }

    /// Current shard count.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Pin a node to a specific shard (e.g. the platform places each PoP's
    /// routers together so only inter-PoP links cross shards).
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn set_node_shard(&mut self, node: NodeId, shard: usize) {
        assert!(
            shard < self.shards,
            "shard {shard} out of range (shards={})",
            self.shards
        );
        self.node_shard[node.0 as usize] = shard as u32;
        self.needs_repartition = true;
    }

    /// The shard a node is currently assigned to.
    pub fn node_shard(&self, node: NodeId) -> usize {
        self.node_shard.get(node.0 as usize).copied().unwrap_or(0) as usize
    }

    fn shard_of(&self, dst: u32) -> usize {
        let s = self.node_shard.get(dst as usize).copied().unwrap_or(0) as usize;
        s.min(self.queues.len() - 1)
    }

    /// Rebuild the per-shard queues after a shard-layout change, preserving
    /// every pending event.
    fn ensure_partition(&mut self) {
        if !self.needs_repartition {
            return;
        }
        self.needs_repartition = false;
        let mut events = Vec::new();
        for q in &mut self.queues {
            events.append(&mut q.drain());
        }
        self.queues = (0..self.shards).map(|_| EventQueue::new()).collect();
        for e in events {
            let shard = self.shard_of(e.key.dst);
            self.queues[shard].push(e.key, e.kind);
        }
    }

    fn route_events(&mut self, out: Vec<Event>) {
        self.ensure_partition();
        for e in out {
            let shard = self.shard_of(e.key.dst);
            self.queues[shard].push(e.key, e.kind);
        }
    }

    /// [`Simulator::route_events`] that drains a reusable buffer in place.
    fn route_events_drain(&mut self, out: &mut Vec<Event>) {
        self.ensure_partition();
        for e in out.drain(..) {
            let shard = self.shard_of(e.key.dst);
            self.queues[shard].push(e.key, e.kind);
        }
    }

    /// Re-raise the diagnostic from an earlier shard-worker panic: the
    /// panicked window left node state half-applied, so the run cannot
    /// continue meaningfully.
    fn check_poisoned(&self) {
        if let Some(diag) = &self.poisoned {
            panic!("simulator poisoned by an earlier shard-worker panic: {diag}");
        }
    }

    fn ext_key(&mut self, at: SimTime, dst: u32) -> EventKey {
        let seq = self.ext_seq;
        self.ext_seq += 1;
        EventKey {
            at,
            class: CLASS_NODE,
            dst,
            src: EXTERNAL_SRC,
            seq,
        }
    }

    /// Register a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = self.topo.nodes.len() as u32;
        self.topo.nodes.push(NodeCell(UnsafeCell::new(NodeSlot {
            node: Some(node),
            rng: stream(self.seed, NODE_STREAM_SALT | id as u64),
            seq: 0,
            actions: Vec::new(),
        })));
        self.node_shard.push((id as usize % self.shards) as u32);
        NodeId(id)
    }

    /// Every registered node id, in registration order. Harnesses use this
    /// to sweep the whole topology without tracking ids themselves.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.topo.nodes.len() as u32).map(NodeId).collect()
    }

    /// Connect `(a, pa)` to `(b, pb)` with the given link configuration.
    ///
    /// # Panics
    /// Panics if either port is already connected — topology is fixed wiring,
    /// and double-connecting is always a scenario bug.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        config: LinkConfig,
    ) -> LinkId {
        assert!(
            !self.topo.ports.contains_key(&(a, pa)),
            "port {pa:?} on {a:?} already connected"
        );
        assert!(
            !self.topo.ports.contains_key(&(b, pb)),
            "port {pb:?} on {b:?} already connected"
        );
        let id = LinkId(self.topo.links.len() as u32);
        let base = LINK_STREAM_SALT | ((id.0 as u64) << 1);
        self.topo.links.push(Mutex::new(LinkState {
            link: Link::new(config),
            ends: [(a, pa), (b, pb)],
            rngs: [stream(self.seed, base), stream(self.seed, base | 1)],
        }));
        self.topo.ports.insert((a, pa), (id, 0));
        self.topo.ports.insert((b, pb), (id, 1));
        id
    }

    fn link_state(&self, link: LinkId) -> MutexGuard<'_, LinkState> {
        self.topo.links[link.0 as usize]
            .lock()
            .expect("link lock poisoned")
    }

    /// Tear down a link (e.g. a session reset test); both ports become
    /// unconnected. Link stats are retained until the slot is reused.
    pub fn disconnect(&mut self, link: LinkId) {
        let ends = self.link_state(link).ends;
        for end in ends {
            self.topo.ports.remove(&end);
        }
    }

    /// Per-direction stats for a link.
    pub fn link_stats(&self, link: LinkId) -> [LinkStats; 2] {
        self.link_state(link).link.stats
    }

    /// Administratively raise or lower a link. A downed link stays wired
    /// but drops every frame until raised again — the substrate for chaos
    /// link flaps, partitions and tunnel resets.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.link_state(link).link.up = up;
    }

    /// Whether a link is administratively up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.link_state(link).link.up
    }

    /// Replace a link's fault injector (chaos fault bursts).
    pub fn set_link_faults(&mut self, link: LinkId, faults: FaultInjector) {
        self.link_state(link).link.config.faults = faults;
    }

    /// A link's current fault injector.
    pub fn link_faults(&self, link: LinkId) -> FaultInjector {
        self.link_state(link).link.config.faults
    }

    /// Restore a link's fault injector to the configuration it was created
    /// with (ends a chaos fault burst).
    pub fn restore_link_faults(&mut self, link: LinkId) {
        let mut state = self.link_state(link);
        state.link.config.faults = state.link.base_faults;
    }

    /// Mutable access to the simulator's control RNG stream, so chaos plans
    /// can be generated from a deterministic stream tied to the seed.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule every step of a chaos plan relative to the current time.
    /// Steps execute on the main thread at their appointed instants; in
    /// sharded runs, parallel windows never cross a chaos timestamp.
    pub fn schedule_chaos(&mut self, plan: &ChaosPlan) {
        for (offset, step) in plan.steps() {
            let key = EventKey {
                at: self.time + offset,
                class: CLASS_CHAOS,
                dst: step.link.0,
                src: EXTERNAL_SRC,
                seq: self.chaos_seq,
            };
            self.chaos_seq += 1;
            self.chaos_queue.push(key, EventKind::Chaos(step));
        }
    }

    /// All currently-connected links touching `node`, with their endpoints.
    pub fn links_of(&self, node: NodeId) -> Vec<(LinkId, LinkEnds)> {
        self.topo
            .links
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                let id = LinkId(i as u32);
                let state = slot.lock().expect("link lock poisoned");
                let touches = state.ends[0].0 == node || state.ends[1].0 == node;
                // Only links still wired (disconnect removes ports).
                let wired = self.topo.ports.get(&state.ends[0]) == Some(&(id, 0));
                (touches && wired).then_some((id, (state.ends[0], state.ends[1])))
            })
            .collect()
    }

    /// Downcast a node to its concrete type.
    pub fn node<T: Node>(&self, id: NodeId) -> Option<&T> {
        let cell = self.topo.nodes.get(id.0 as usize)?;
        // SAFETY: `&self` methods never overlap `&mut self` methods, and no
        // worker thread is live outside `run_parallel_until` (which takes
        // `&mut self`), so the slot cannot be mutated while this shared
        // borrow is alive.
        let slot = unsafe { &*cell.0.get() };
        let boxed = slot.node.as_deref()?;
        (boxed as &dyn Any).downcast_ref::<T>()
    }

    /// Downcast a node to its concrete type, mutably.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let slot = self.topo.nodes.get_mut(id.0 as usize)?.0.get_mut();
        let boxed = slot.node.as_deref_mut()?;
        (boxed as &mut dyn Any).downcast_mut::<T>()
    }

    /// Inject a frame for delivery to `(node, port)` right now, as if it
    /// arrived from outside the simulated topology.
    pub fn inject_frame(&mut self, node: NodeId, port: PortId, frame: EtherFrame) {
        let key = self.ext_key(self.time, node.0);
        self.route_events(vec![Event {
            key,
            kind: EventKind::FrameDelivery { node, port, frame },
        }]);
    }

    /// Transmit a frame from `(node, port)` over its connected link, exactly
    /// as if the node itself had sent it. Useful for external drivers (the
    /// experiment toolkit injects traffic this way).
    pub fn send_from(&mut self, node: NodeId, port: PortId, frame: EtherFrame) {
        let mut actions = vec![Action::Send { port, frame }];
        self.apply_external_actions(node, &mut actions);
    }

    /// Arm a timer on behalf of a node.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        let key = self.ext_key(self.time + delay, node.0);
        self.route_events(vec![Event {
            key,
            kind: EventKind::Timer { node, token },
        }]);
    }

    /// Invoke a closure with mutable access to a node and a [`Ctx`], so
    /// external drivers can call node methods that need to emit frames.
    ///
    /// # Panics
    /// Panics if the node id is stale or of the wrong type.
    pub fn with_node_ctx<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let slot = self.topo.nodes[id.0 as usize].0.get_mut();
        let mut node = slot.node.take().expect("node busy/absent");
        let mut actions = Vec::new();
        let result = {
            let mut ctx = Ctx {
                now: self.time,
                node: id,
                actions: &mut actions,
                rng: &mut slot.rng,
            };
            let node = (node.as_mut() as &mut dyn Any)
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(node, &mut ctx)
        };
        slot.node = Some(node);
        self.apply_external_actions(id, &mut actions);
        result
    }

    /// Apply actions buffered by an external driver (traffic injection,
    /// `with_node_ctx`): these draw their event sequence numbers from the
    /// shared external counter.
    fn apply_external_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        let mut out = Vec::new();
        let mut stats = LocalStats::default();
        {
            let mut env = DispatchEnv {
                topo: &self.topo,
                counters: &self.counters,
                out: &mut out,
                stats: &mut stats,
                tracer: Some(&mut self.tracer),
            };
            apply_actions(
                &mut env,
                node,
                self.time,
                actions,
                EXTERNAL_SRC,
                &mut self.ext_seq,
            );
        }
        self.unrouted_frames += stats.unrouted;
        self.route_events(out);
    }

    /// The key of the next event in the global order, if any.
    fn next_key(&self) -> Option<EventKey> {
        let mut best = self.chaos_queue.peek_key();
        for q in &self.queues {
            let Some(k) = q.peek_key() else { continue };
            match best {
                Some(b) if b <= k => {}
                _ => best = Some(k),
            }
        }
        best
    }

    /// Process a single event if one is pending. Returns `false` when the
    /// queues are empty. Always sequential — this is the canonical
    /// semantics the parallel engine reproduces.
    pub fn step(&mut self) -> bool {
        self.check_poisoned();
        self.ensure_partition();
        let chaos = self.chaos_queue.peek_key();
        let mut best: Option<(usize, EventKey)> = None;
        for (i, q) in self.queues.iter().enumerate() {
            let Some(k) = q.peek_key() else { continue };
            match best {
                Some((_, b)) if b <= k => {}
                _ => best = Some((i, k)),
            }
        }
        let take_chaos = match (chaos, best) {
            (None, None) => return false,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(c), Some((_, n))) => c < n,
        };
        if take_chaos {
            let ev = self.chaos_queue.pop().expect("peeked chaos event");
            self.apply_chaos_event(ev);
            return true;
        }
        let (i, _) = best.expect("peeked node event");
        let ev = self.queues[i].pop().expect("peeked node event");
        debug_assert!(ev.key.at >= self.time, "time went backwards");
        self.time = ev.key.at;
        let mut out = std::mem::take(&mut self.scratch_out);
        out.clear();
        let mut stats = LocalStats::default();
        {
            let mut env = DispatchEnv {
                topo: &self.topo,
                counters: &self.counters,
                out: &mut out,
                stats: &mut stats,
                tracer: Some(&mut self.tracer),
            };
            process_node_event(&mut env, &self.obs, ev, &mut self.queues[i]);
        }
        peering_obs::clear_dispatch_key();
        self.unrouted_frames += stats.unrouted;
        self.processed_events += stats.processed;
        self.route_events_drain(&mut out);
        self.scratch_out = out;
        true
    }

    /// Apply one chaos step on the main thread (chaos never runs on worker
    /// threads: windows stop at chaos timestamps so link state is frozen
    /// while shards execute).
    fn apply_chaos_event(&mut self, ev: Event) {
        let key = ev.key;
        debug_assert!(key.at >= self.time, "time went backwards");
        self.time = key.at;
        self.obs.set_now_nanos(self.time.as_nanos());
        peering_obs::set_dispatch_key(DispatchKey {
            at_nanos: key.at.as_nanos(),
            class: key.class,
            dst: key.dst,
            src: key.src,
            seq: key.seq,
        });
        self.processed_events += 1;
        let EventKind::Chaos(step) = ev.kind else {
            unreachable!("chaos queue holds only chaos events");
        };
        if let Some(slot) = self.topo.links.get(step.link.0 as usize) {
            let mut state = slot.lock().expect("link lock poisoned");
            let change = match step.change {
                ChaosChange::LinkDown => {
                    state.link.up = false;
                    "link-down"
                }
                ChaosChange::LinkUp => {
                    state.link.up = true;
                    "link-up"
                }
                ChaosChange::SetFaults(faults) => {
                    state.link.config.faults = faults;
                    "set-faults"
                }
                ChaosChange::RestoreFaults => {
                    state.link.config.faults = state.link.base_faults;
                    "restore-faults"
                }
            };
            drop(state);
            self.counters.chaos_steps.inc();
            self.obs.record(ObsEvent::ChaosInjection {
                link: step.link.0,
                change,
            });
        }
        peering_obs::clear_dispatch_key();
    }

    /// Conservative lookahead: the minimum latency over still-connected
    /// links whose endpoints live in different shards. `None` disables the
    /// parallel engine (a zero-latency cross-shard link leaves no safe
    /// window).
    fn cross_shard_lookahead(&self) -> Option<SimDuration> {
        let mut min: Option<SimDuration> = None;
        for (i, slot) in self.topo.links.iter().enumerate() {
            let state = slot.lock().expect("link lock poisoned");
            let id = LinkId(i as u32);
            if self.topo.ports.get(&state.ends[0]) != Some(&(id, 0)) {
                continue; // disconnected: no frames can cross it
            }
            let a = self.shard_of(state.ends[0].0 .0);
            let b = self.shard_of(state.ends[1].0 .0);
            if a == b {
                continue;
            }
            let latency = state.link.config.latency;
            if latency == SimDuration::ZERO {
                return None;
            }
            min = Some(match min {
                None => latency,
                Some(m) => m.min(latency),
            });
        }
        // No cross-shard links at all: the shards are fully independent and
        // any window length is safe.
        Some(min.unwrap_or(SimDuration::from_secs(3600)))
    }

    /// Run until the queue is exhausted or `deadline` is reached; the clock
    /// ends at `deadline` if it was reached, otherwise at the last event.
    ///
    /// With more than one shard (and tracing disabled), events execute in
    /// parallel lookahead windows on worker threads; the results — node
    /// state, counters, journal, clock — are bit-identical to a
    /// single-shard run.
    pub fn run_until(&mut self, deadline: SimTime) {
        self.check_poisoned();
        self.ensure_partition();
        let lookahead = if self.queues.len() > 1 && !self.tracer.enabled() {
            self.cross_shard_lookahead()
        } else {
            None
        };
        match lookahead {
            Some(la) => {
                self.run_parallel_until(deadline, la, None);
            }
            None => {
                while self.next_key().is_some_and(|k| k.at <= deadline) {
                    self.step();
                }
            }
        }
        if self.time < deadline {
            self.time = deadline;
            self.obs.set_now_nanos(self.time.as_nanos());
        }
    }

    /// Run for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.time + duration;
        self.run_until(deadline);
    }

    /// Per-shard minimum latency over cross-shard links incident to each
    /// shard (`L_out`). Any cross-shard arrival emitted by shard `s` is
    /// the end of a causal chain whose final hop adds at least
    /// `L_out(s)`, so shard `s` cannot disturb anyone before
    /// `t_s + L_out(s)`. Shards with no cross-shard links get the
    /// saturating "never" bound.
    fn per_shard_out_lookahead(&self) -> Vec<SimDuration> {
        let mut out = vec![SimDuration::from_nanos(u64::MAX); self.queues.len()];
        for (i, slot) in self.topo.links.iter().enumerate() {
            let state = slot.lock().expect("link lock poisoned");
            let id = LinkId(i as u32);
            if self.topo.ports.get(&state.ends[0]) != Some(&(id, 0)) {
                continue; // disconnected: no frames can cross it
            }
            let a = self.shard_of(state.ends[0].0 .0);
            let b = self.shard_of(state.ends[1].0 .0);
            if a == b {
                continue;
            }
            let latency = state.link.config.latency;
            out[a] = out[a].min(latency);
            out[b] = out[b].min(latency);
        }
        out
    }

    /// The parallel engine: advance in windows `[gvt, end)` where
    ///
    /// ```text
    /// end = min( gvt + lookahead × cap,            doubling heuristic
    ///            min_s (t_s + L_out(s)),           sound emission bound
    ///            next chaos step,
    ///            deadline + 1ns )
    /// ```
    ///
    /// Each dispatched shard runs on its parked pool worker; cross-shard
    /// deliveries land in SPSC lanes drained at the barrier through the
    /// canonical `EventKey`-ordered queues, so the merge — and every
    /// observable result — is independent of the window schedule. The
    /// `cap` multiplier doubles while windows stay cross-shard quiet (up
    /// to [`Simulator::set_window_cap`]) and snaps back to 1 when a lane
    /// carries traffic; the sound bound keeps any schedule correct.
    ///
    /// With `max_events`, stops early (at a window barrier) once the run
    /// has processed at least that many events, returning `false`; the
    /// sequential engine counts per event, so an over-budget parallel run
    /// may process a window's worth more before noticing.
    fn run_parallel_until(
        &mut self,
        deadline: SimTime,
        lookahead: SimDuration,
        max_events: Option<u64>,
    ) -> bool {
        let shard_count = self.queues.len();
        if self.pool.as_ref().map(|p| p.shards) != Some(shard_count) {
            self.pool = Some(WorkerPool::new(shard_count));
        }
        let l_out = self.per_shard_out_lookahead();
        let start_processed = self.processed_events;
        let mut cap_mult: u64 = 1;
        loop {
            if let Some(max) = max_events {
                if self.processed_events - start_processed >= max {
                    return false;
                }
            }
            let t_chaos = self.chaos_queue.peek_time();
            let t_node = self.queues.iter().filter_map(|q| q.peek_time()).min();
            let gvt = match (t_chaos, t_node) {
                (None, None) => break,
                (Some(a), Some(b)) => a.min(b),
                (Some(a), None) => a,
                (None, Some(b)) => b,
            };
            if gvt > deadline {
                break;
            }
            if t_chaos == Some(gvt) {
                // Chaos sorts before node events at the same instant
                // (CLASS_CHAOS), so apply every step due now before opening
                // a window.
                while self.chaos_queue.peek_time() == Some(gvt) {
                    let ev = self.chaos_queue.pop().expect("peeked chaos event");
                    self.apply_chaos_event(ev);
                }
                continue;
            }
            // Heuristic width, then clamp to the sound emission bound:
            // no shard can receive a cross-shard event before
            // min_s(t_s + L_out(s)), so any end at or below it is safe.
            let mut end = sat_add(
                gvt,
                SimDuration::from_nanos(lookahead.as_nanos().saturating_mul(cap_mult)),
            );
            for (s, q) in self.queues.iter().enumerate() {
                if let Some(t) = q.peek_time() {
                    end = end.min(sat_add(t, l_out[s]));
                }
            }
            if let Some(tc) = t_chaos {
                end = end.min(tc);
            }
            end = end.min(SimTime::from_nanos(deadline.as_nanos().saturating_add(1)));
            // Dispatch the window to every shard with due events. No
            // borrow of the queues is live once a worker starts mutating
            // its own: only raw pointers cross the channel.
            let mut active = 0usize;
            let queues_ptr = self.queues.as_mut_ptr();
            let topo: *const Topo = &self.topo;
            let counters: *const SimCounters = &self.counters;
            let obs: *const Obs = &self.obs;
            let node_shard = self.node_shard.as_ptr();
            let node_shard_len = self.node_shard.len();
            let pool = self.pool.as_ref().expect("pool built above");
            for shard in 0..shard_count {
                // SAFETY: reading the shard's own queue head; workers for
                // lower shards only mutate *their* queues.
                let due = unsafe { (*queues_ptr.add(shard)).peek_time() };
                if due.is_none_or(|t| t >= end) {
                    continue; // nothing to do this window
                }
                let job = WindowJob {
                    gvt,
                    end,
                    topo,
                    counters,
                    obs,
                    node_shard,
                    node_shard_len,
                    queues: queues_ptr,
                    lanes: pool.lanes.as_ptr(),
                    shards: shard_count,
                };
                pool.jobs[shard]
                    .send(Job::Window(job))
                    .expect("shard worker channel closed");
                active += 1;
            }
            debug_assert!(active > 0, "window [{gvt:?}, {end:?}) dispatched no shard");
            // Barrier: block until every dispatched worker reports.
            let mut poison: Option<(usize, String)> = None;
            for _ in 0..active {
                let done = pool
                    .done_rx
                    .recv()
                    .expect("shard worker died without reporting");
                match done.result {
                    Ok((stats, last)) => {
                        self.unrouted_frames += stats.unrouted;
                        self.processed_events += stats.processed;
                        if last > self.time {
                            self.time = last;
                        }
                    }
                    Err(msg) => poison = Some((done.shard, msg)),
                }
            }
            // Drain the SPSC lanes into the canonical per-shard queues.
            // Push order cannot matter: queues order by EventKey.
            let mut saw_cross = false;
            for src in 0..shard_count {
                for dst in 0..shard_count {
                    // SAFETY: all workers are parked (every done report
                    // collected), so the coordinator is the sole accessor.
                    let lane = unsafe { &mut *pool.lanes[src * shard_count + dst].get() };
                    if lane.is_empty() {
                        continue;
                    }
                    saw_cross = true;
                    for e in lane.drain(..) {
                        self.queues[dst].push(e.key, e.kind);
                    }
                }
            }
            cap_mult = if saw_cross {
                1
            } else {
                cap_mult.saturating_mul(2).min(self.window_cap)
            };
            self.obs.set_now_nanos(self.time.as_nanos());
            if let Some((shard, msg)) = poison {
                let tail = self.obs.journal_tail(12);
                let diag = format!(
                    "shard {shard} worker panicked in window [{}ns, {}ns): {msg}\njournal tail:\n{tail}",
                    gvt.as_nanos(),
                    end.as_nanos()
                );
                self.poisoned = Some(diag.clone());
                panic!("{diag}");
            }
        }
        true
    }

    /// Run until no events remain (the network is quiescent), with a safety
    /// cap on event count to catch livelock in tests. With shards
    /// configured (and tracing off) this uses the same windowed parallel
    /// engine as [`Simulator::run_until`] — quiescence is detected at
    /// window barriers, where the coordinator holds the global queue view —
    /// and produces results bit-identical to the sequential engine. When
    /// the cap trips, the parallel engine may have processed up to one
    /// window more than the sequential engine would before returning
    /// `false`.
    pub fn run_until_idle(&mut self, max_events: u64) -> bool {
        self.check_poisoned();
        self.ensure_partition();
        let lookahead = if self.queues.len() > 1 && !self.tracer.enabled() {
            self.cross_shard_lookahead()
        } else {
            None
        };
        if let Some(la) = lookahead {
            // Deadline at the saturating horizon: windows stop when the
            // queues drain (or the event budget trips).
            return self.run_parallel_until(SimTime::from_nanos(u64::MAX), la, Some(max_events));
        }
        let mut n = 0;
        while self.pending_events() > 0 {
            self.step();
            n += 1;
            if n >= max_events {
                return false;
            }
        }
        true
    }

    /// Number of pending events (all shards plus scheduled chaos steps).
    pub fn pending_events(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum::<usize>() + self.chaos_queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::frame::EtherType;
    use crate::mac::MacAddr;

    /// Echoes every frame back out the port it arrived on, swapping MACs.
    struct Echo {
        seen: u64,
    }

    impl Node for Echo {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame) {
            self.seen += 1;
            let reply = EtherFrame::new(frame.src, frame.dst, frame.ethertype, frame.payload);
            ctx.send_frame(port, reply);
        }
    }

    /// Sends one frame at t=0 via a timer, records replies.
    struct Pinger {
        replies: u64,
        target: MacAddr,
        me: MacAddr,
    }

    impl Node for Pinger {
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EtherFrame) {
            self.replies += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send_frame(
                PortId(0),
                EtherFrame::new(
                    self.target,
                    self.me,
                    EtherType::Other(0x9999),
                    Bytes::from_static(b"ping"),
                ),
            );
        }
    }

    #[test]
    fn ping_pong_over_link() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(
            pinger,
            PortId(0),
            echo,
            PortId(0),
            LinkConfig::with_latency(SimDuration::from_millis(5)),
        );
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        assert!(sim.run_until_idle(100));
        assert_eq!(sim.node::<Echo>(echo).unwrap().seen, 1);
        assert_eq!(sim.node::<Pinger>(pinger).unwrap().replies, 1);
        // Round trip = 2 × 5 ms.
        assert_eq!(sim.now().as_millis(), 10);
    }

    #[test]
    fn unconnected_port_counts_unrouted() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::BROADCAST,
            me: MacAddr::from_id(1),
        }));
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        sim.run_until_idle(10);
        assert_eq!(sim.unrouted_frames, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let pinger = sim.add_node(Box::new(Pinger {
                replies: 0,
                target: MacAddr::from_id(2),
                me: MacAddr::from_id(1),
            }));
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let cfg = LinkConfig::default().with_faults(crate::link::FaultInjector::dropping(50));
            sim.connect(pinger, PortId(0), echo, PortId(0), cfg);
            for i in 0..50 {
                sim.set_timer(pinger, SimDuration::from_millis(i), i);
            }
            sim.run_until_idle(10_000);
            (
                sim.node::<Echo>(echo).unwrap().seen,
                sim.node::<Pinger>(pinger).unwrap().replies,
            )
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let mut sim = Simulator::new(1);
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        assert!(sim.node::<Pinger>(echo).is_none());
        assert!(sim.node::<Echo>(echo).is_some());
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_nanos(1_000));
        assert_eq!(sim.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo { seen: 0 }));
        let b = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(a, PortId(0), b, PortId(0), LinkConfig::default());
        sim.connect(a, PortId(0), b, PortId(1), LinkConfig::default());
    }

    #[test]
    fn disconnect_stops_delivery() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let link = sim.connect(pinger, PortId(0), echo, PortId(0), LinkConfig::default());
        sim.disconnect(link);
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        sim.run_until_idle(10);
        assert_eq!(sim.node::<Echo>(echo).unwrap().seen, 0);
        assert_eq!(sim.unrouted_frames, 1);
    }

    /// A faulty ping-pong workload whose observable outcome must not depend
    /// on the shard count (the tentpole property).
    fn sharded_outcome(shards: usize) -> (u64, u64, u64, u64, u64) {
        let mut sim = Simulator::new(42);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let cfg = LinkConfig::with_latency(SimDuration::from_millis(2))
            .with_faults(FaultInjector::dropping(20));
        sim.connect(pinger, PortId(0), echo, PortId(0), cfg);
        sim.set_shards(shards);
        for i in 0..40 {
            sim.set_timer(pinger, SimDuration::from_millis(i), i);
        }
        sim.run_until(SimTime::from_nanos(1_000_000_000));
        (
            sim.node::<Echo>(echo).unwrap().seen,
            sim.node::<Pinger>(pinger).unwrap().replies,
            sim.processed_events,
            sim.unrouted_frames,
            sim.now().as_nanos(),
        )
    }

    #[test]
    fn sharded_run_matches_sequential() {
        let base = sharded_outcome(1);
        assert!(base.0 > 0, "workload should deliver some frames");
        assert_eq!(sharded_outcome(2), base);
        assert_eq!(sharded_outcome(4), base);
    }

    #[test]
    fn repartition_preserves_pending_events() {
        let mut sim = Simulator::new(3);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(pinger, PortId(0), echo, PortId(0), LinkConfig::default());
        sim.set_timer(pinger, SimDuration::from_millis(1), 0);
        // Re-shard with an event already queued: it must survive the move.
        sim.set_shards(2);
        sim.set_node_shard(echo, 1);
        assert!(sim.run_until_idle(100));
        assert_eq!(sim.node::<Echo>(echo).unwrap().seen, 1);
        assert_eq!(sim.node::<Pinger>(pinger).unwrap().replies, 1);
    }
}
