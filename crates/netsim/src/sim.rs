//! The simulator: nodes, ports, links and the event loop.
//!
//! A [`Simulator`] owns a set of [`Node`]s connected by point-to-point
//! [`Link`]s. Nodes react to frames and timers through a [`Ctx`] handle that
//! collects their outputs; the simulator applies those outputs after each
//! callback, keeping borrows simple and execution deterministic.

use std::any::Any;
use std::collections::HashMap;

use peering_obs::{Counter, EventKind as ObsEvent, Obs};

use crate::chaos::{ChaosChange, ChaosPlan, ChaosStep};
use crate::event::{EventKind, EventQueue};
use crate::frame::EtherFrame;
use crate::link::{FaultInjector, Link, LinkConfig, LinkStats, TxOutcome};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceDirection, TraceEvent, Tracer};

/// Identifies a node within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

/// Identifies a port on a node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PortId(pub u16);

/// Identifies a link within a simulator.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct LinkId(pub u32);

/// The two `(node, port)` endpoints of a link.
pub type LinkEnds = ((NodeId, PortId), (NodeId, PortId));

/// Deterministic pseudo-random source for fault injection (SplitMix64).
///
/// Everything random in the simulator — loss rolls, corruption positions —
/// draws from one of these, seeded at construction, so runs replay exactly.
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SimRng {
            state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A value in `0..bound` (`bound` must be non-zero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift mapping: fine for fault injection, avoids modulo
        // bias better than `% bound` for small bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Behaviour plugged into the simulator.
///
/// Implementors are event-driven: they receive frames and timer expirations,
/// and emit frames / arm timers through the [`Ctx`]. The `Any` supertrait
/// lets callers downcast back to the concrete type via [`Simulator::node`].
pub trait Node: Any {
    /// A frame arrived on `port`.
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame);

    /// Several frames arrived on `port` at the same instant. The simulator
    /// coalesces same-time deliveries to one `(node, port)` into a single
    /// call so nodes with a batched fast path can amortize per-packet work;
    /// the default just replays them through [`Node::on_frame`] in order.
    fn on_frames(&mut self, ctx: &mut Ctx<'_>, port: PortId, frames: Vec<EtherFrame>) {
        for frame in frames {
            self.on_frame(ctx, port, frame);
        }
    }

    /// A timer armed with `token` fired.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_>, _token: u64) {}

    /// Human-readable label for traces.
    fn label(&self) -> String {
        "node".to_string()
    }
}

enum Action {
    Send { port: PortId, frame: EtherFrame },
    Timer { at: SimTime, token: u64 },
}

/// Handle given to node callbacks for interacting with the simulation.
pub struct Ctx<'a> {
    now: SimTime,
    node: NodeId,
    actions: &'a mut Vec<Action>,
    rng: &'a mut SimRng,
}

impl<'a> Ctx<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node being called.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Transmit a frame out of `port`. If the port is unconnected the frame
    /// is silently discarded (counted by the simulator).
    pub fn send_frame(&mut self, port: PortId, frame: EtherFrame) {
        self.actions.push(Action::Send { port, frame });
    }

    /// Arm a timer that fires after `delay` with the given token.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.actions.push(Action::Timer {
            at: self.now + delay,
            token,
        });
    }

    /// Deterministic randomness (seeded at simulator construction).
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

struct LinkState {
    link: Link,
    ends: [(NodeId, PortId); 2],
}

/// The discrete-event simulator.
pub struct Simulator {
    time: SimTime,
    queue: EventQueue,
    nodes: Vec<Option<Box<dyn Node>>>,
    ports: HashMap<(NodeId, PortId), (LinkId, usize)>,
    links: Vec<LinkState>,
    rng: SimRng,
    tracer: Tracer,
    /// Frames sent to unconnected ports (usually a wiring bug in a scenario).
    pub unrouted_frames: u64,
    /// Total events processed.
    pub processed_events: u64,
    obs: Obs,
    c_link_drops: Counter,
    c_corrupted: Counter,
    c_duplicated: Counter,
    c_reordered: Counter,
    c_chaos_steps: Counter,
}

impl Simulator {
    /// Create a simulator with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        let obs = Obs::new();
        let (c_link_drops, c_corrupted, c_duplicated, c_reordered, c_chaos_steps) =
            Self::register_counters(&obs);
        Simulator {
            time: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: Vec::new(),
            ports: HashMap::new(),
            links: Vec::new(),
            rng: SimRng::new(seed),
            tracer: Tracer::disabled(),
            unrouted_frames: 0,
            processed_events: 0,
            obs,
            c_link_drops,
            c_corrupted,
            c_duplicated,
            c_reordered,
            c_chaos_steps,
        }
    }

    fn register_counters(obs: &Obs) -> (Counter, Counter, Counter, Counter, Counter) {
        (
            obs.counter("netsim.link_drops"),
            obs.counter("netsim.frames_corrupted"),
            obs.counter("netsim.frames_duplicated"),
            obs.counter("netsim.frames_reordered"),
            obs.counter("netsim.chaos_steps"),
        )
    }

    /// Adopt a shared observability handle (the platform installs one
    /// registry for the whole topology); the simulator's own counters and
    /// chaos events move to it, and the journal clock tracks `now()`.
    pub fn set_obs(&mut self, obs: Obs) {
        let (c_link_drops, c_corrupted, c_duplicated, c_reordered, c_chaos_steps) =
            Self::register_counters(&obs);
        obs.set_now_nanos(self.time.as_nanos());
        self.obs = obs;
        self.c_link_drops = c_link_drops;
        self.c_corrupted = c_corrupted;
        self.c_duplicated = c_duplicated;
        self.c_reordered = c_reordered;
        self.c_chaos_steps = c_chaos_steps;
    }

    /// The simulator's observability handle.
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.time
    }

    /// Enable frame tracing (see [`Tracer`]).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Access recorded trace events.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Register a node, returning its id.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Some(node));
        id
    }

    /// Every registered node id, in registration order. Harnesses use this
    /// to sweep the whole topology without tracking ids themselves.
    pub fn node_ids(&self) -> Vec<NodeId> {
        (0..self.nodes.len() as u32).map(NodeId).collect()
    }

    /// Connect `(a, pa)` to `(b, pb)` with the given link configuration.
    ///
    /// # Panics
    /// Panics if either port is already connected — topology is fixed wiring,
    /// and double-connecting is always a scenario bug.
    pub fn connect(
        &mut self,
        a: NodeId,
        pa: PortId,
        b: NodeId,
        pb: PortId,
        config: LinkConfig,
    ) -> LinkId {
        assert!(
            !self.ports.contains_key(&(a, pa)),
            "port {pa:?} on {a:?} already connected"
        );
        assert!(
            !self.ports.contains_key(&(b, pb)),
            "port {pb:?} on {b:?} already connected"
        );
        let id = LinkId(self.links.len() as u32);
        self.links.push(LinkState {
            link: Link::new(config),
            ends: [(a, pa), (b, pb)],
        });
        self.ports.insert((a, pa), (id, 0));
        self.ports.insert((b, pb), (id, 1));
        id
    }

    /// Tear down a link (e.g. a session reset test); both ports become
    /// unconnected. Link stats are retained until the slot is reused.
    pub fn disconnect(&mut self, link: LinkId) {
        let ends = self.links[link.0 as usize].ends;
        for end in ends {
            self.ports.remove(&end);
        }
    }

    /// Per-direction stats for a link.
    pub fn link_stats(&self, link: LinkId) -> [LinkStats; 2] {
        self.links[link.0 as usize].link.stats
    }

    /// Administratively raise or lower a link. A downed link stays wired
    /// but drops every frame until raised again — the substrate for chaos
    /// link flaps, partitions and tunnel resets.
    pub fn set_link_up(&mut self, link: LinkId, up: bool) {
        self.links[link.0 as usize].link.up = up;
    }

    /// Whether a link is administratively up.
    pub fn link_up(&self, link: LinkId) -> bool {
        self.links[link.0 as usize].link.up
    }

    /// Replace a link's fault injector (chaos fault bursts).
    pub fn set_link_faults(&mut self, link: LinkId, faults: FaultInjector) {
        self.links[link.0 as usize].link.config.faults = faults;
    }

    /// A link's current fault injector.
    pub fn link_faults(&self, link: LinkId) -> FaultInjector {
        self.links[link.0 as usize].link.config.faults
    }

    /// Restore a link's fault injector to the configuration it was created
    /// with (ends a chaos fault burst).
    pub fn restore_link_faults(&mut self, link: LinkId) {
        let state = &mut self.links[link.0 as usize];
        state.link.config.faults = state.link.base_faults;
    }

    /// Mutable access to the simulator's seeded RNG, so chaos plans can be
    /// generated from the same deterministic stream the run itself uses.
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Schedule every step of a chaos plan relative to the current time.
    /// Steps execute inline in the event loop at their appointed instants.
    pub fn schedule_chaos(&mut self, plan: &ChaosPlan) {
        for (offset, step) in plan.steps() {
            self.queue.push(self.time + offset, EventKind::Chaos(step));
        }
    }

    /// All currently-connected links touching `node`, with their endpoints.
    pub fn links_of(&self, node: NodeId) -> Vec<(LinkId, LinkEnds)> {
        self.links
            .iter()
            .enumerate()
            .filter(|(i, l)| {
                let id = LinkId(*i as u32);
                (l.ends[0].0 == node || l.ends[1].0 == node)
                    // Only links still wired (disconnect removes ports).
                    && self.ports.get(&l.ends[0]) == Some(&(id, 0))
            })
            .map(|(i, l)| (LinkId(i as u32), (l.ends[0], l.ends[1])))
            .collect()
    }

    /// Downcast a node to its concrete type.
    pub fn node<T: Node>(&self, id: NodeId) -> Option<&T> {
        let boxed = self.nodes.get(id.0 as usize)?.as_deref()?;
        (boxed as &dyn Any).downcast_ref::<T>()
    }

    /// Downcast a node to its concrete type, mutably.
    pub fn node_mut<T: Node>(&mut self, id: NodeId) -> Option<&mut T> {
        let boxed = self.nodes.get_mut(id.0 as usize)?.as_deref_mut()?;
        (boxed as &mut dyn Any).downcast_mut::<T>()
    }

    /// Inject a frame for delivery to `(node, port)` right now, as if it
    /// arrived from outside the simulated topology.
    pub fn inject_frame(&mut self, node: NodeId, port: PortId, frame: EtherFrame) {
        self.queue
            .push(self.time, EventKind::FrameDelivery { node, port, frame });
    }

    /// Transmit a frame from `(node, port)` over its connected link, exactly
    /// as if the node itself had sent it. Useful for external drivers (the
    /// experiment toolkit injects traffic this way).
    pub fn send_from(&mut self, node: NodeId, port: PortId, frame: EtherFrame) {
        let mut actions = vec![Action::Send { port, frame }];
        self.apply_actions(node, &mut actions);
    }

    /// Arm a timer on behalf of a node.
    pub fn set_timer(&mut self, node: NodeId, delay: SimDuration, token: u64) {
        self.queue
            .push(self.time + delay, EventKind::Timer { node, token });
    }

    /// Invoke a closure with mutable access to a node and a [`Ctx`], so
    /// external drivers can call node methods that need to emit frames.
    ///
    /// # Panics
    /// Panics if the node id is stale or of the wrong type.
    pub fn with_node_ctx<T: Node, R>(
        &mut self,
        id: NodeId,
        f: impl FnOnce(&mut T, &mut Ctx<'_>) -> R,
    ) -> R {
        let mut slot = self.nodes[id.0 as usize].take().expect("node busy/absent");
        let mut actions = Vec::new();
        let result = {
            let mut ctx = Ctx {
                now: self.time,
                node: id,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            let node = (slot.as_mut() as &mut dyn Any)
                .downcast_mut::<T>()
                .expect("node type mismatch");
            f(node, &mut ctx)
        };
        self.nodes[id.0 as usize] = Some(slot);
        self.apply_actions(id, &mut actions);
        result
    }

    fn apply_actions(&mut self, node: NodeId, actions: &mut Vec<Action>) {
        for action in actions.drain(..) {
            match action {
                Action::Timer { at, token } => {
                    self.queue.push(at, EventKind::Timer { node, token });
                }
                Action::Send { port, frame } => {
                    let Some(&(link_id, end)) = self.ports.get(&(node, port)) else {
                        self.unrouted_frames += 1;
                        continue;
                    };
                    self.tracer.record(TraceEvent {
                        time: self.time,
                        node,
                        port,
                        direction: TraceDirection::Tx,
                        src: frame.src,
                        dst: frame.dst,
                        ethertype: frame.ethertype,
                        len: frame.wire_len(),
                    });
                    let state = &mut self.links[link_id.0 as usize];
                    let drop_roll = self.rng.below(100) as u8;
                    let corrupt_roll = self.rng.below(100) as u8;
                    let is_data_plane = matches!(
                        frame.ethertype,
                        crate::frame::EtherType::Ipv4 | crate::frame::EtherType::Ipv6
                    );
                    let (outcome, corrupt) = state.link.transmit_typed(
                        end,
                        self.time,
                        frame.wire_len(),
                        drop_roll,
                        corrupt_roll,
                        is_data_plane,
                    );
                    if matches!(outcome, TxOutcome::Dropped) {
                        self.c_link_drops.inc();
                    }
                    if let TxOutcome::Deliver(at) = outcome {
                        let (dst_node, dst_port) = state.ends[1 - end];
                        let mut frame = frame;
                        if corrupt && !frame.payload.is_empty() {
                            let mut payload = frame.payload.to_vec();
                            let idx = self.rng.below(payload.len() as u64) as usize;
                            payload[idx] ^= 1 << self.rng.below(8);
                            frame.payload = payload.into();
                            self.c_corrupted.inc();
                        }
                        // Reorder/duplicate rolls are only drawn when the
                        // link configures them, so runs without these faults
                        // keep their exact RNG stream.
                        let faults = self.links[link_id.0 as usize].link.config.faults;
                        let mut at = at;
                        let mut duplicate = false;
                        if faults.perturbs_delivery() && (is_data_plane || !faults.data_plane_only)
                        {
                            let reorder_roll = self.rng.below(100) as u8;
                            let dup_roll = self.rng.below(100) as u8;
                            if reorder_roll < faults.reorder_pct
                                && faults.reorder_window > SimDuration::ZERO
                            {
                                let extra = self.rng.below(faults.reorder_window.as_nanos().max(1));
                                at += SimDuration::from_nanos(extra);
                                self.c_reordered.inc();
                            }
                            duplicate = dup_roll < faults.duplicate_pct;
                        }
                        if duplicate {
                            self.c_duplicated.inc();
                            self.queue.push(
                                at,
                                EventKind::FrameDelivery {
                                    node: dst_node,
                                    port: dst_port,
                                    frame: frame.clone(),
                                },
                            );
                        }
                        self.queue.push(
                            at,
                            EventKind::FrameDelivery {
                                node: dst_node,
                                port: dst_port,
                                frame,
                            },
                        );
                    }
                }
            }
        }
    }

    /// Process a single event if one is pending. Returns `false` when the
    /// queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(event) = self.queue.pop() else {
            return false;
        };
        debug_assert!(event.at >= self.time, "time went backwards");
        self.time = event.at;
        self.obs.set_now_nanos(self.time.as_nanos());
        self.processed_events += 1;
        match event.kind {
            EventKind::FrameDelivery { node, port, frame } => {
                self.tracer.record(TraceEvent {
                    time: self.time,
                    node,
                    port,
                    direction: TraceDirection::Rx,
                    src: frame.src,
                    dst: frame.dst,
                    ethertype: frame.ethertype,
                    len: frame.wire_len(),
                });
                // Coalesce the consecutive deliveries for the same instant,
                // node and port into one batched callback. Only head-of-queue
                // events are taken, so the scheduled (time, seq) order across
                // nodes is untouched.
                let mut batch: Option<Vec<EtherFrame>> = None;
                while let Some(next) = self.queue.peek() {
                    let same = next.at == self.time
                        && matches!(
                            &next.kind,
                            EventKind::FrameDelivery { node: n, port: p, .. }
                                if *n == node && *p == port
                        );
                    if !same {
                        break;
                    }
                    let Some(ev) = self.queue.pop() else {
                        break;
                    };
                    let EventKind::FrameDelivery { frame, .. } = ev.kind else {
                        unreachable!("peek said FrameDelivery");
                    };
                    self.processed_events += 1;
                    self.tracer.record(TraceEvent {
                        time: self.time,
                        node,
                        port,
                        direction: TraceDirection::Rx,
                        src: frame.src,
                        dst: frame.dst,
                        ethertype: frame.ethertype,
                        len: frame.wire_len(),
                    });
                    batch
                        .get_or_insert_with(|| Vec::with_capacity(4))
                        .push(frame);
                }
                match batch {
                    None => self.dispatch(node, |node, ctx| node.on_frame(ctx, port, frame)),
                    Some(mut rest) => {
                        rest.insert(0, frame);
                        self.dispatch(node, |node, ctx| node.on_frames(ctx, port, rest));
                    }
                }
            }
            EventKind::Timer { node, token } => {
                self.dispatch(node, |node, ctx| node.on_timer(ctx, token));
            }
            EventKind::Chaos(step) => self.apply_chaos(step),
        }
        true
    }

    fn apply_chaos(&mut self, step: ChaosStep) {
        let Some(state) = self.links.get_mut(step.link.0 as usize) else {
            return;
        };
        let change = match step.change {
            ChaosChange::LinkDown => {
                state.link.up = false;
                "link-down"
            }
            ChaosChange::LinkUp => {
                state.link.up = true;
                "link-up"
            }
            ChaosChange::SetFaults(faults) => {
                state.link.config.faults = faults;
                "set-faults"
            }
            ChaosChange::RestoreFaults => {
                state.link.config.faults = state.link.base_faults;
                "restore-faults"
            }
        };
        self.c_chaos_steps.inc();
        self.obs.record(ObsEvent::ChaosInjection {
            link: step.link.0,
            change,
        });
    }

    fn dispatch(&mut self, id: NodeId, f: impl FnOnce(&mut dyn Node, &mut Ctx<'_>)) {
        let Some(slot) = self.nodes.get_mut(id.0 as usize) else {
            return;
        };
        let Some(mut node) = slot.take() else {
            // Node is mid-callback (re-entrant event) — cannot happen with the
            // action-buffer design, but degrade gracefully.
            return;
        };
        let mut actions = Vec::new();
        {
            let mut ctx = Ctx {
                now: self.time,
                node: id,
                actions: &mut actions,
                rng: &mut self.rng,
            };
            f(node.as_mut(), &mut ctx);
        }
        self.nodes[id.0 as usize] = Some(node);
        self.apply_actions(id, &mut actions);
    }

    /// Run until the queue is exhausted or `deadline` is reached; the clock
    /// ends at `deadline` if it was reached, otherwise at the last event.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            self.step();
        }
        if self.time < deadline {
            self.time = deadline;
            self.obs.set_now_nanos(self.time.as_nanos());
        }
    }

    /// Run for `duration` of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.time + duration;
        self.run_until(deadline);
    }

    /// Run until no events remain (the network is quiescent), with a safety
    /// cap on event count to catch livelock in tests.
    pub fn run_until_idle(&mut self, max_events: u64) -> bool {
        let mut n = 0;
        while !self.queue.is_empty() {
            self.step();
            n += 1;
            if n >= max_events {
                return false;
            }
        }
        true
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::frame::EtherType;
    use crate::mac::MacAddr;

    /// Echoes every frame back out the port it arrived on, swapping MACs.
    struct Echo {
        seen: u64,
    }

    impl Node for Echo {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame) {
            self.seen += 1;
            let reply = EtherFrame::new(frame.src, frame.dst, frame.ethertype, frame.payload);
            ctx.send_frame(port, reply);
        }
    }

    /// Sends one frame at t=0 via a timer, records replies.
    struct Pinger {
        replies: u64,
        target: MacAddr,
        me: MacAddr,
    }

    impl Node for Pinger {
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, _frame: EtherFrame) {
            self.replies += 1;
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, _token: u64) {
            ctx.send_frame(
                PortId(0),
                EtherFrame::new(
                    self.target,
                    self.me,
                    EtherType::Other(0x9999),
                    Bytes::from_static(b"ping"),
                ),
            );
        }
    }

    #[test]
    fn ping_pong_over_link() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(
            pinger,
            PortId(0),
            echo,
            PortId(0),
            LinkConfig::with_latency(SimDuration::from_millis(5)),
        );
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        assert!(sim.run_until_idle(100));
        assert_eq!(sim.node::<Echo>(echo).unwrap().seen, 1);
        assert_eq!(sim.node::<Pinger>(pinger).unwrap().replies, 1);
        // Round trip = 2 × 5 ms.
        assert_eq!(sim.now().as_millis(), 10);
    }

    #[test]
    fn unconnected_port_counts_unrouted() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::BROADCAST,
            me: MacAddr::from_id(1),
        }));
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        sim.run_until_idle(10);
        assert_eq!(sim.unrouted_frames, 1);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> (u64, u64) {
            let mut sim = Simulator::new(seed);
            let pinger = sim.add_node(Box::new(Pinger {
                replies: 0,
                target: MacAddr::from_id(2),
                me: MacAddr::from_id(1),
            }));
            let echo = sim.add_node(Box::new(Echo { seen: 0 }));
            let cfg = LinkConfig::default().with_faults(crate::link::FaultInjector::dropping(50));
            sim.connect(pinger, PortId(0), echo, PortId(0), cfg);
            for i in 0..50 {
                sim.set_timer(pinger, SimDuration::from_millis(i), i);
            }
            sim.run_until_idle(10_000);
            (
                sim.node::<Echo>(echo).unwrap().seen,
                sim.node::<Pinger>(pinger).unwrap().replies,
            )
        }
        assert_eq!(run(7), run(7));
    }

    #[test]
    fn downcast_wrong_type_is_none() {
        let mut sim = Simulator::new(1);
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        assert!(sim.node::<Pinger>(echo).is_none());
        assert!(sim.node::<Echo>(echo).is_some());
    }

    #[test]
    fn run_until_advances_clock_without_events() {
        let mut sim = Simulator::new(1);
        sim.run_until(SimTime::from_nanos(1_000));
        assert_eq!(sim.now(), SimTime::from_nanos(1_000));
    }

    #[test]
    #[should_panic(expected = "already connected")]
    fn double_connect_panics() {
        let mut sim = Simulator::new(1);
        let a = sim.add_node(Box::new(Echo { seen: 0 }));
        let b = sim.add_node(Box::new(Echo { seen: 0 }));
        sim.connect(a, PortId(0), b, PortId(0), LinkConfig::default());
        sim.connect(a, PortId(0), b, PortId(1), LinkConfig::default());
    }

    #[test]
    fn disconnect_stops_delivery() {
        let mut sim = Simulator::new(1);
        let pinger = sim.add_node(Box::new(Pinger {
            replies: 0,
            target: MacAddr::from_id(2),
            me: MacAddr::from_id(1),
        }));
        let echo = sim.add_node(Box::new(Echo { seen: 0 }));
        let link = sim.connect(pinger, PortId(0), echo, PortId(0), LinkConfig::default());
        sim.disconnect(link);
        sim.set_timer(pinger, SimDuration::ZERO, 0);
        sim.run_until_idle(10);
        assert_eq!(sim.node::<Echo>(echo).unwrap().seen, 0);
        assert_eq!(sim.unrouted_frames, 1);
    }
}
