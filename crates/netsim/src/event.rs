//! The discrete-event queue.
//!
//! Events are ordered by an intrinsic [`EventKey`] — `(time, class,
//! destination node, source, per-source sequence)` — rather than by a
//! global insertion counter. Every component of the key is determined by
//! the simulation itself (when the event fires, which node produced it,
//! how many events that producer had emitted before), so the total order
//! is identical no matter how the simulator's work is partitioned across
//! shards. That property is what lets the sharded-parallel engine replay
//! runs bit-identically to the single-threaded baseline.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::chaos::ChaosStep;
use crate::frame::EtherFrame;
use crate::sim::{NodeId, PortId};
use crate::time::SimTime;

/// `src` value for events pushed from outside the event loop (external
/// drivers, traffic injection). Sorts after node-sourced events that share
/// a `(time, class, dst)`.
pub const EXTERNAL_SRC: u32 = u32::MAX;

/// Event class for chaos steps: they sort before node events at the same
/// instant, so a link flap at time `t` affects every frame sent at `t`.
pub const CLASS_CHAOS: u8 = 0;

/// Event class for node events (frame deliveries and timers).
pub const CLASS_NODE: u8 = 1;

/// The total order on simulator events.
///
/// Lexicographic over `(at, class, dst, src, seq)`. `seq` is a per-source
/// counter (each node numbers the events it emits; external pushes share
/// one counter), so two events never compare equal and the order never
/// depends on wall-clock scheduling or shard layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// When the event fires.
    pub at: SimTime,
    /// [`CLASS_CHAOS`] or [`CLASS_NODE`].
    pub class: u8,
    /// Node the event is delivered to (the link index for chaos steps).
    pub dst: u32,
    /// Node that emitted the event, or [`EXTERNAL_SRC`].
    pub src: u32,
    /// Per-source sequence number.
    pub seq: u64,
}

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A frame arrives at a node's port.
    FrameDelivery {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// The frame.
        frame: EtherFrame,
    },
    /// A timer set by a node fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque token chosen by the node when the timer was set.
        token: u64,
    },
    /// A scheduled chaos-plan step mutates link state (flap, fault burst).
    Chaos(ChaosStep),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// The event's position in the simulation's total order.
    pub key: EventKey,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other.key.cmp(&self.key)
    }
}

/// A key-ordered event queue (one per shard in sharded runs).
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at its key's position in the total order.
    pub fn push(&mut self, key: EventKey, kind: EventKind) {
        self.heap.push(Event { key, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The earliest event without removing it (the simulator uses this to
    /// coalesce same-instant deliveries to one node into a batch).
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// The earliest event's key, if any (shards compare heads to find the
    /// global minimum).
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// When the next event fires, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.at)
    }

    /// Remove every event, returning them in no particular order (used
    /// when re-partitioning nodes across shards).
    pub fn drain(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.heap).into_vec()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    fn key(at: u64, dst: u32, src: u32, seq: u64) -> EventKey {
        EventKey {
            at: SimTime::from_nanos(at),
            class: CLASS_NODE,
            dst,
            src,
            seq,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(key(30, 0, 0, 0), timer(0, 3));
        q.push(key(10, 0, 0, 1), timer(0, 1));
        q.push(key(20, 0, 0, 2), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_dst_then_src_then_seq() {
        let mut q = EventQueue::new();
        q.push(key(5, 2, 0, 0), timer(2, 3));
        q.push(key(5, 1, 9, 0), timer(1, 2));
        q.push(key(5, 1, 0, 5), timer(1, 1));
        q.push(key(5, 1, 0, 2), timer(1, 0));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chaos_class_sorts_before_node_class_at_same_time() {
        let a = EventKey {
            at: SimTime::from_nanos(5),
            class: CLASS_CHAOS,
            dst: 99,
            src: 0,
            seq: 0,
        };
        let b = key(5, 0, 0, 0);
        assert!(a < b);
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(key(7, 0, 0, 0), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.push(key(3, 0, 0, 1), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 2);
    }
}
