//! The discrete-event queue.
//!
//! Events are ordered by simulated time, with a monotonically increasing
//! sequence number breaking ties so that simultaneous events execute in the
//! order they were scheduled — this is what makes runs deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::chaos::ChaosStep;
use crate::frame::EtherFrame;
use crate::sim::{NodeId, PortId};
use crate::time::SimTime;

/// What happens when an event fires.
#[derive(Debug)]
pub enum EventKind {
    /// A frame arrives at a node's port.
    FrameDelivery {
        /// Receiving node.
        node: NodeId,
        /// Receiving port.
        port: PortId,
        /// The frame.
        frame: EtherFrame,
    },
    /// A timer set by a node fires.
    Timer {
        /// Owning node.
        node: NodeId,
        /// Opaque token chosen by the node when the timer was set.
        token: u64,
    },
    /// A scheduled chaos-plan step mutates link state (flap, fault burst).
    Chaos(ChaosStep),
}

/// A scheduled event.
#[derive(Debug)]
pub struct Event {
    /// When the event fires.
    pub at: SimTime,
    /// FIFO tiebreak for identical timestamps.
    pub seq: u64,
    /// The action.
    pub kind: EventKind,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse so the earliest event pops first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Event>,
    next_seq: u64,
}

impl EventQueue {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule `kind` at time `at`.
    pub fn push(&mut self, at: SimTime, kind: EventKind) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { at, seq, kind });
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop()
    }

    /// The earliest event without removing it (the simulator uses this to
    /// coalesce same-instant deliveries to one node into a batch).
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek()
    }

    /// When the next event fires, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timer(node: u32, token: u64) -> EventKind {
        EventKind::Timer {
            node: NodeId(node),
            token,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_nanos(30), timer(0, 3));
        q.push(SimTime::from_nanos(10), timer(0, 1));
        q.push(SimTime::from_nanos(20), timer(0, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for token in 0..10 {
            q.push(t, timer(0, token));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { token, .. } => token,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_tracks_head() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(7), timer(0, 0));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(7)));
        q.push(SimTime::from_nanos(3), timer(0, 1));
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(3)));
        assert_eq!(q.len(), 2);
    }
}
