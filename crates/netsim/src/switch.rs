//! An L2 learning switch — the IXP fabric.
//!
//! PEERING PoPs at IXPs hang off a shared switch with hundreds of members
//! (paper §4.2). The switch learns source MACs, forwards unicast to the
//! learned port, and floods unknown unicast / broadcast to all other ports.
//! Entries age out so topology changes converge.

use std::collections::HashMap;

use crate::frame::EtherFrame;
use crate::mac::MacAddr;
use crate::sim::{Ctx, Node, PortId};
use crate::time::{SimDuration, SimTime};

/// Default MAC-table entry lifetime (typical switch default: 300 s).
pub const MAC_AGING_TIME: SimDuration = SimDuration::from_secs(300);

#[derive(Clone, Copy, Debug)]
struct TableEntry {
    port: PortId,
    last_seen: SimTime,
}

/// A learning switch with a fixed number of ports.
pub struct LearningSwitch {
    ports: u16,
    table: HashMap<MacAddr, TableEntry>,
    aging: SimDuration,
    /// Frames forwarded to a single learned port.
    pub forwarded: u64,
    /// Frames flooded to all other ports.
    pub flooded: u64,
    label: String,
}

impl LearningSwitch {
    /// A switch with `ports` ports and default aging.
    pub fn new(ports: u16) -> Self {
        LearningSwitch {
            ports,
            table: HashMap::new(),
            aging: MAC_AGING_TIME,
            forwarded: 0,
            flooded: 0,
            label: "switch".to_string(),
        }
    }

    /// Override the label shown in traces.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Override the MAC aging time.
    pub fn with_aging(mut self, aging: SimDuration) -> Self {
        self.aging = aging;
        self
    }

    /// Number of learned (possibly stale) MAC entries.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// The port a MAC was last learned on, if fresh.
    pub fn lookup(&self, mac: MacAddr, now: SimTime) -> Option<PortId> {
        self.table
            .get(&mac)
            .filter(|e| now.saturating_since(e.last_seen) < self.aging)
            .map(|e| e.port)
    }
}

impl Node for LearningSwitch {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame) {
        let now = ctx.now();
        // Learn the source (unicast sources only).
        if frame.src.is_unicast() {
            self.table.insert(
                frame.src,
                TableEntry {
                    port,
                    last_seen: now,
                },
            );
        }
        // Forward.
        let learned = if frame.dst.is_unicast() {
            self.lookup(frame.dst, now)
        } else {
            None
        };
        match learned {
            Some(out) if out != port => {
                self.forwarded += 1;
                ctx.send_frame(out, frame);
            }
            Some(_) => {
                // Destination hangs off the ingress port: filter (drop).
            }
            None => {
                self.flooded += 1;
                for p in 0..self.ports {
                    let out = PortId(p);
                    if out != port {
                        ctx.send_frame(out, frame.clone());
                    }
                }
            }
        }
    }

    fn label(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytes::Bytes;
    use crate::frame::EtherType;
    use crate::link::LinkConfig;
    use crate::sim::{NodeId, Simulator};

    /// Records every received frame.
    struct Sink {
        frames: Vec<EtherFrame>,
    }

    impl Node for Sink {
        fn on_frame(&mut self, _ctx: &mut Ctx<'_>, _port: PortId, frame: EtherFrame) {
            self.frames.push(frame);
        }
    }

    fn build(ports: u16) -> (Simulator, NodeId, Vec<NodeId>) {
        let mut sim = Simulator::new(3);
        let sw = sim.add_node(Box::new(LearningSwitch::new(ports)));
        let hosts: Vec<NodeId> = (0..ports)
            .map(|p| {
                let h = sim.add_node(Box::new(Sink { frames: Vec::new() }));
                sim.connect(sw, PortId(p), h, PortId(0), LinkConfig::default());
                h
            })
            .collect();
        (sim, sw, hosts)
    }

    fn frame(src: u32, dst: MacAddr) -> EtherFrame {
        EtherFrame::new(
            dst,
            MacAddr::from_id(src),
            EtherType::Ipv4,
            Bytes::from_static(b"x"),
        )
    }

    #[test]
    fn floods_unknown_unicast_then_forwards() {
        let (mut sim, sw, hosts) = build(4);
        // Host 0 sends to unknown MAC of host 3: flood to ports 1,2,3.
        sim.send_from(hosts[0], PortId(0), frame(100, MacAddr::from_id(103)));
        sim.run_until_idle(100);
        for h in &hosts[1..] {
            assert_eq!(sim.node::<Sink>(*h).unwrap().frames.len(), 1);
        }
        // Host 3 replies: switch learned 100 on port 0, so only host 0 gets it.
        sim.send_from(hosts[3], PortId(0), frame(103, MacAddr::from_id(100)));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(hosts[0]).unwrap().frames.len(), 1);
        assert_eq!(sim.node::<Sink>(hosts[1]).unwrap().frames.len(), 1);
        assert_eq!(sim.node::<Sink>(hosts[2]).unwrap().frames.len(), 1);
        let sw_ref = sim.node::<LearningSwitch>(sw).unwrap();
        assert_eq!(sw_ref.flooded, 1);
        assert_eq!(sw_ref.forwarded, 1);
    }

    #[test]
    fn broadcast_always_floods() {
        let (mut sim, _sw, hosts) = build(3);
        sim.send_from(hosts[0], PortId(0), frame(100, MacAddr::BROADCAST));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(hosts[1]).unwrap().frames.len(), 1);
        assert_eq!(sim.node::<Sink>(hosts[2]).unwrap().frames.len(), 1);
        assert_eq!(sim.node::<Sink>(hosts[0]).unwrap().frames.len(), 0);
    }

    #[test]
    fn same_port_destination_is_filtered() {
        let (mut sim, sw, hosts) = build(2);
        // Teach the switch that 100 lives on port 0.
        sim.send_from(hosts[0], PortId(0), frame(100, MacAddr::BROADCAST));
        sim.run_until_idle(100);
        // Now host 0 sends to itself (e.g. a hairpin): the switch drops it.
        sim.send_from(hosts[0], PortId(0), frame(101, MacAddr::from_id(100)));
        sim.run_until_idle(100);
        assert_eq!(sim.node::<Sink>(hosts[0]).unwrap().frames.len(), 0);
        assert_eq!(sim.node::<Sink>(hosts[1]).unwrap().frames.len(), 1); // only the broadcast
        assert_eq!(sim.node::<LearningSwitch>(sw).unwrap().forwarded, 0);
    }

    #[test]
    fn entries_age_out() {
        let mut sw = LearningSwitch::new(2).with_aging(SimDuration::from_secs(10));
        sw.table.insert(
            MacAddr::from_id(1),
            TableEntry {
                port: PortId(1),
                last_seen: SimTime::ZERO,
            },
        );
        assert_eq!(
            sw.lookup(MacAddr::from_id(1), SimTime::from_nanos(5_000_000_000)),
            Some(PortId(1))
        );
        assert_eq!(
            sw.lookup(MacAddr::from_id(1), SimTime::from_nanos(11_000_000_000)),
            None
        );
    }
}
