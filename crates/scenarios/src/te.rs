//! Scenario family (c): inbound traffic engineering with action
//! communities.
//!
//! Every transit opts into the platform's TE action communities
//! (`asn16:50` = do-not-announce-to-peers, `asn16:6N` = prepend N times
//! toward peers), interpreted by the Gao–Rexford policy engine on its
//! peer exports. Three variants run against one fixture, one leased
//! prefix each:
//!
//! - **baseline** — announced at PoPs 0 and 1, no communities. Transit
//!   2000's cone ingresses at PoP 0, 2001's at PoP 1; transit 2002 holds
//!   a (pref, len) tie between its two peers, so its cone's catchment is
//!   seed-deterministic but not model-predictable (recorded, not
//!   asserted).
//! - **prepend** — same announcement plus community `2000:61`: transit
//!   2000 prepends once toward its peers, breaking 2002's tie toward
//!   2001 and moving 2002's single-homed cone to PoP 1 (model-certain).
//! - **do-not-announce** — announced at PoP 0 only, with `2000:50`:
//!   transit 2000 suppresses its peer export entirely, blackholing every
//!   AS outside its customer cone — and incrementing the speaker's
//!   `export_rejected` counter on the way.
//!
//! Catchment is measured in the data plane: every stub sends one probe
//! at the victim address and the experiment node records which tunnel
//! port (= PoP) it ingressed on; measurements are cross-checked against
//! catchments derived from the model's predicted paths wherever those
//! are untainted.

use std::collections::BTreeMap;

use peering_bgp::types::Community;
use peering_toolkit::client::AnnounceOptions;

use crate::net::{reconcile, ScenarioNet, ScenarioParams, STUB_ASN0, TRANSIT_ASN0};
use crate::report::ScenarioReport;

/// TE scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct TeParams {
    /// Topology + simulator seed.
    pub seed: u64,
    /// Simulator shards.
    pub shards: usize,
}

impl TeParams {
    /// Single shard.
    pub fn new(seed: u64) -> Self {
        TeParams { seed, shards: 1 }
    }

    /// Run under `shards` simulator shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

struct Variant {
    name: &'static str,
    pops: &'static [usize],
    communities: &'static [(u16, u16)],
}

const VARIANTS: [Variant; 3] = [
    Variant {
        name: "baseline",
        pops: &[0, 1],
        communities: &[],
    },
    Variant {
        name: "prepend",
        pops: &[0, 1],
        communities: &[(2000, 61)],
    },
    Variant {
        name: "dna",
        pops: &[0],
        communities: &[(2000, 50)],
    },
];

/// Run the TE-communities scenario.
///
/// Counts (per variant `v`): `pop1_{v}` (stubs ingressing at PoP 1),
/// `reached_{v}` (stubs with any route), plus `shifted_prepend` (stubs
/// whose catchment moved baseline → prepend), `t2cone_moved` (single-homed
/// transit-2002-cone stubs at PoP 1 under prepend), `t2cone_stubs`,
/// `blackholed_dna` (modeled ASes without a route under do-not-announce),
/// `catchment_mismatch` (sim vs model-predicted ingress where the model
/// path is untainted) and `model_mismatches`. `per_as` holds the prepend
/// variant's verdicts with `catchment=N` / `shifted` notes on stubs.
pub fn run_te(params: TeParams) -> ScenarioReport {
    let mut net = ScenarioNet::build(ScenarioParams::new(params.seed).with_shards(params.shards));
    let mut report = ScenarioReport::new("te-communities", params.seed);
    let (counter0, journal0) = net.export_suppressions();
    net.enable_te();

    // Single-homed customers of transit 2002 and their stubs: the cone
    // the prepend community must move.
    let t2cone: Vec<u32> = net
        .ases
        .values()
        .filter(|i| {
            i.asn >= STUB_ASN0
                && i.asn != net.vantage
                && net.ases[&i.providers[0]].providers == vec![TRANSIT_ASN0 + 2]
        })
        .map(|i| i.asn)
        .collect();

    let mut mismatches = 0u64;
    let mut catchment_mismatch = 0u64;
    let mut catchments: BTreeMap<&'static str, BTreeMap<u32, usize>> = BTreeMap::new();

    for (idx, variant) in VARIANTS.iter().enumerate() {
        let opts = AnnounceOptions {
            communities: variant
                .communities
                .iter()
                .map(|&(hi, lo)| Community::new(hi, lo))
                .collect(),
            ..AnnounceOptions::default()
        };
        for &pop in variant.pops {
            net.announce(pop, idx, &opts);
        }
        net.run_secs(20);
        let dst = net.prefix_addr(idx, 1);

        let injections: Vec<_> = variant
            .pops
            .iter()
            .map(|&pop| net.injection(pop, 0, &[], variant.communities))
            .collect();
        let observed = net.observe(dst, None);
        let predicted = net.model().propagate(&injections, None);
        let (verdicts, mm) = reconcile(&observed, &predicted);
        mismatches += mm.len() as u64;

        let measured = net.measure_catchment(dst);
        // Cross-check the data-plane ingress against the control-plane
        // prediction wherever the model pinned down the concrete path.
        for (&asn, pred) in &predicted {
            if asn < STUB_ASN0 || asn == net.vantage {
                continue;
            }
            let model_pop = pred.path.as_ref().and_then(|p| net.catchment_of_path(p));
            if let Some(pop) = model_pop {
                if measured.get(&asn) != Some(&pop) {
                    catchment_mismatch += 1;
                }
            }
            if !pred.has_route && measured.contains_key(&asn) {
                catchment_mismatch += 1;
            }
        }

        let pop1 = measured.values().filter(|&&p| p == 1).count() as u64;
        report.counts.insert(format!("pop1_{}", variant.name), pop1);
        report
            .counts
            .insert(format!("reached_{}", variant.name), measured.len() as u64);
        report.timeline.push((idx as u64, pop1));

        if variant.name == "prepend" {
            let mut verdicts = verdicts;
            for (asn, v) in verdicts.iter_mut() {
                if let Some(pop) = measured.get(asn) {
                    v.note = format!("catchment={pop}");
                }
            }
            report.per_as = verdicts;
        }
        if variant.name == "dna" {
            let blackholed = predicted.values().filter(|p| !p.has_route).count() as u64;
            report.counts.insert("blackholed_dna".into(), blackholed);
        }
        catchments.insert(variant.name, measured);
    }

    let baseline = &catchments["baseline"];
    let prepend = &catchments["prepend"];
    let shifted: Vec<u32> = prepend
        .iter()
        .filter(|(asn, pop)| baseline.get(asn).is_some_and(|b| b != *pop))
        .map(|(&asn, _)| asn)
        .collect();
    for asn in &shifted {
        if let Some(v) = report.per_as.get_mut(asn) {
            if !v.note.is_empty() {
                v.note.push(',');
            }
            v.note.push_str("shifted");
        }
    }
    report
        .counts
        .insert("shifted_prepend".into(), shifted.len() as u64);
    report.counts.insert(
        "t2cone_moved".into(),
        t2cone
            .iter()
            .filter(|asn| prepend.get(asn) == Some(&1))
            .count() as u64,
    );
    report
        .counts
        .insert("t2cone_stubs".into(), t2cone.len() as u64);
    report.counts.insert("model_mismatches".into(), mismatches);
    report
        .counts
        .insert("catchment_mismatch".into(), catchment_mismatch);

    let (counter1, journal1) = net.export_suppressions();
    report
        .obs_deltas
        .insert("bgp.export_rejected".into(), counter1 - counter0);
    report.journal_export_suppressions = journal1 - journal0;
    report
}
