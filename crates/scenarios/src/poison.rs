//! Scenario family (b): AS-path poisoning depth sweep.
//!
//! The experiment announces one leased prefix per poison depth `d ∈
//! 0..=max_depth` at PoP 0, inserting the first `d` entries of a fixed
//! poison list into the path (the toolkit builds the `[exp, p…, exp]`
//! sandwich; the review capped the announced path at the platform's
//! `max_as_path_len`). Two behaviors are measured per depth:
//!
//! - **Who drops the poisoned path.** Poisoned ASes reject it via the
//!   own-ASN loop check ("dropped-own-asn"); mids 3002 and 3005 carry
//!   `AsPathLenAtLeast` import caps on their provider sessions and start
//!   rejecting once the sandwich pushes received paths over the cap
//!   ("len-capped"); single-homed descendants of droppers go dark
//!   ("no-route-upstream").
//! - **Return-path steering.** The vantage stub 4999 buys transit from
//!   mid 3003 (transit 2000's cone) and mid 3001 (2001's cone). At depth
//!   0 its best route uses 3003 (shorter); poisoning 3003 at depth ≥ 1
//!   flips the return path to 3001 — verified both in the RIB and by a
//!   TTL-1 traceroute probe whose time-exceeded reply must come from the
//!   steered provider's interface.
//!
//! Every depth is checked against the reference model.

use peering_bgp::types::Asn;
use peering_toolkit::client::AnnounceOptions;

use crate::net::{reconcile, ScenarioNet, ScenarioParams, MID_ASN0, STUB_ASN0};
use crate::report::ScenarioReport;

/// Poison targets, in insertion order. 3003 first (the steering target);
/// never 3001 (the steered-to provider) and never the len-capped mids
/// 3002/3005 (so cap drops and own-ASN drops stay distinguishable).
pub const POISON_ORDER: [u32; 5] = [
    MID_ASN0 + 3,
    MID_ASN0 + 4,
    MID_ASN0,
    STUB_ASN0,
    STUB_ASN0 + 1,
];

/// Mids carrying `AsPathLenAtLeast` caps on their provider sessions:
/// (ASN, cap).
pub const LEN_CAPS: [(u32, usize); 2] = [(MID_ASN0 + 2, 6), (MID_ASN0 + 5, 7)];

/// Poisoning scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct PoisonParams {
    /// Topology + simulator seed.
    pub seed: u64,
    /// Deepest poison sandwich to sweep (≤ 5: one leased prefix per
    /// depth, and the review caps the announced path length).
    pub max_depth: usize,
    /// Simulator shards.
    pub shards: usize,
}

impl PoisonParams {
    /// Full-depth sweep, single shard.
    pub fn new(seed: u64) -> Self {
        PoisonParams {
            seed,
            max_depth: 5,
            shards: 1,
        }
    }

    /// Run under `shards` simulator shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Run the poisoning depth sweep.
///
/// Counts: `dropped_d{d}` (modeled ASes without a route at depth `d`),
/// `steered_depths` (depths ≥ 1 whose RIB + traceroute both confirm the
/// flip to 3001), `traceroute_confirms`, `model_mismatches`. `per_as`
/// holds the deepest depth's verdicts. The timeline is (depth, dropped).
pub fn run_poison(params: PoisonParams) -> ScenarioReport {
    assert!(params.max_depth <= POISON_ORDER.len());
    let mut net = ScenarioNet::build(ScenarioParams::new(params.seed).with_shards(params.shards));
    let mut report = ScenarioReport::new("poisoning", params.seed);
    let (counter0, journal0) = net.export_suppressions();

    for (asn, cap) in LEN_CAPS {
        net.install_len_cap(asn, cap);
    }

    let mut mismatches = 0u64;
    let mut steered = 0u64;
    let mut traceroute_confirms = 0u64;
    let via_short = net.vantage_link_to(MID_ASN0 + 3);
    let via_steered = net.vantage_link_to(MID_ASN0 + 1);

    for depth in 0..=params.max_depth {
        let poisons = &POISON_ORDER[..depth];
        let opts = AnnounceOptions {
            poison: poisons.iter().map(|&p| Asn(p)).collect(),
            ..AnnounceOptions::default()
        };
        net.announce(0, depth, &opts);
        net.run_secs(20);
        let dst = net.prefix_addr(depth, 1);
        let adversary = poisons.first().copied();

        let observed = net.observe(dst, adversary);
        let predicted = net
            .model()
            .propagate(&[net.injection(0, 0, poisons, &[])], adversary);
        let (mut verdicts, mm) = reconcile(&observed, &predicted);
        mismatches += mm.len() as u64;

        let dropped = verdicts.values().filter(|v| !v.has_route).count() as u64;
        report.timeline.push((depth as u64, dropped));
        report.counts.insert(format!("dropped_d{depth}"), dropped);

        // Return-path steering: RIB view + TTL-1 traceroute evidence.
        let vantage_path = &observed[&net.vantage].path;
        let first_hop = net.vantage_first_hop(dst, 100 + depth as u16);
        if depth == 0 {
            debug_assert_eq!(vantage_path.first(), Some(&(MID_ASN0 + 3)));
            if first_hop == Some(via_short) {
                traceroute_confirms += 1;
            }
        } else if vantage_path.first() == Some(&(MID_ASN0 + 1)) {
            steered += 1;
            if first_hop == Some(via_steered) {
                traceroute_confirms += 1;
            }
        }

        if depth == params.max_depth {
            for (asn, v) in verdicts.iter_mut() {
                if !v.has_route {
                    v.note = if poisons.contains(asn) {
                        "dropped-own-asn".to_string()
                    } else if LEN_CAPS.iter().any(|(capped, _)| capped == asn) {
                        "len-capped".to_string()
                    } else {
                        "no-route-upstream".to_string()
                    };
                } else if poisons.contains(asn) {
                    v.note = "poison-escaped".to_string();
                }
            }
            report.per_as = verdicts;
        }
    }

    report.counts.insert("steered_depths".into(), steered);
    report
        .counts
        .insert("traceroute_confirms".into(), traceroute_confirms);
    report.counts.insert("model_mismatches".into(), mismatches);

    let (counter1, journal1) = net.export_suppressions();
    report
        .obs_deltas
        .insert("bgp.export_rejected".into(), counter1 - counter0);
    report.journal_export_suppressions = journal1 - journal0;
    report
}
