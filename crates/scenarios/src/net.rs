//! The scenario fixture: a small PEERING deployment plus a seeded AS
//! hierarchy hanging off its transits.
//!
//! [`ScenarioNet::build`] stands up three IXP PoPs, each hosting one
//! transit AS (the transits are full-mesh peers over the platform core),
//! attaches one reviewed experiment with poisoning + community
//! capabilities, and then grows a seeded two-tier customer cone under the
//! transits: mid-tier ASes (some multihomed, some peering laterally),
//! stub customers, and one multihomed *vantage* stub whose providers sit
//! in different transit cones — the return-path steering target for the
//! poisoning scenario.
//!
//! Two ASes are placed deterministically regardless of seed so every
//! scenario family has its protagonist: mid `3000` (the designated route
//! leaker, multihomed to transits 2000 and 2001, peered with mid `3001`)
//! and mid `3001` (kept single-homed to transit 2001 so the vantage's
//! alternate return path is unambiguous). Everything else — extra
//! multihoming, lateral peerings — is drawn from the seed.
//!
//! The fixture mirrors itself into the pure-Rust reference
//! [`Model`] ([`ScenarioNet::model`]) and exposes
//! [`ScenarioNet::observe`] + [`reconcile`] so every scenario run is a
//! differential test against that model.

use std::collections::BTreeMap;
use std::net::Ipv4Addr;

use peering_bgp::policy::{Match, Rule};
use peering_bgp::rib::PeerId;
use peering_bgp::types::{Asn, Prefix, RouterId};
use peering_netsim::{Bytes, LinkConfig, MacAddr, NodeId, PortId, SimDuration, SimRng};
use peering_obs::EventKind;
use peering_platform::experiment::CapabilityRequest;
use peering_platform::{
    AttachedExperiment, InternetAs, NeighborIntent, NeighborRole, Peering, PlatformIntent,
    PopIntent, PopKind, Proposal, Relationship,
};
use peering_toolkit::client::AnnounceOptions;
use peering_toolkit::node::ExperimentNode;
use peering_vbgp::ids::NeighborId;

use crate::model::{Injection, Model, ModelAs, Predicted, Rel};
use crate::report::AsVerdict;

/// The platform's ASN (PEERING's real AS47065).
pub const PLATFORM_ASN: u32 = 47065;
/// PoP / transit count.
pub const POPS: usize = 3;
/// First transit ASN; transit `i` is `TRANSIT_ASN0 + i` at PoP `i`.
pub const TRANSIT_ASN0: u32 = 2000;
/// First mid-tier ASN.
pub const MID_ASN0: u32 = 3000;
/// First stub ASN.
pub const STUB_ASN0: u32 = 4000;
/// The multihomed vantage stub (providers in two transit cones).
pub const VANTAGE_ASN: u32 = 4999;

const GRAPH_SALT: u64 = 0x5ce7_0a51_0b1d_c0de;

/// Fixture knobs.
#[derive(Debug, Clone, Copy)]
pub struct ScenarioParams {
    /// Seed for topology generation and the simulator.
    pub seed: u64,
    /// Mid-tier AS count (≥ 4: ASes 3000..3003 have fixed roles).
    pub mids: usize,
    /// Stub customers per mid.
    pub stubs_per_mid: usize,
    /// Simulator shards to run under.
    pub shards: usize,
}

impl ScenarioParams {
    /// The default fixture: 6 mids × 2 stubs, single shard.
    pub fn new(seed: u64) -> Self {
        ScenarioParams {
            seed,
            mids: 6,
            stubs_per_mid: 2,
            shards: 1,
        }
    }

    /// Same fixture under `shards` simulator shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// One BGP session as seen from a scenario AS.
#[derive(Debug, Clone)]
pub struct SessionInfo {
    /// Session id on the local speaker.
    pub id: PeerId,
    /// What the remote is to us.
    pub rel: Relationship,
    /// Remote ASN.
    pub remote_asn: u32,
    /// Our interface address on the link.
    pub local_addr: Ipv4Addr,
    /// Their interface address on the link.
    pub remote_addr: Ipv4Addr,
}

/// One scenario AS (mid, stub or vantage).
#[derive(Debug, Clone)]
pub struct AsInfo {
    /// Its ASN.
    pub asn: u32,
    /// Its simulator node.
    pub node: NodeId,
    /// The prefix it originates.
    pub prefix: Prefix,
    /// Provider ASNs.
    pub providers: Vec<u32>,
    /// Lateral peer ASNs.
    pub peers: Vec<u32>,
    /// Customer ASNs.
    pub customers: Vec<u32>,
    /// Home PoP (shard placement + catchment expectations).
    pub pop: usize,
    /// Its sessions.
    pub sessions: Vec<SessionInfo>,
}

/// What one AS actually held in the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Observed {
    /// A best route for the measured prefix exists.
    pub has_route: bool,
    /// Its LOCAL_PREF.
    pub local_pref: Option<u32>,
    /// Its AS_PATH length.
    pub path_len: Option<usize>,
    /// The path contains the adversary.
    pub via: bool,
    /// The concrete AS_PATH.
    pub path: Vec<u32>,
}

/// The scenario fixture.
pub struct ScenarioNet {
    /// The platform under test.
    pub platform: Peering,
    /// The attached experiment (lease, toolkit, node).
    pub exp: AttachedExperiment,
    /// Build parameters.
    pub params: ScenarioParams,
    /// Transit ASN → (node, PoP index).
    pub transits: BTreeMap<u32, (NodeId, usize)>,
    /// Scenario ASes by ASN (mids, stubs, vantage).
    pub ases: BTreeMap<u32, AsInfo>,
    /// Sessions on transit nodes toward mids: (transit ASN, session, mid
    /// ASN) — the Peerlock deployment surface.
    pub transit_sessions: Vec<(u32, PeerId, u32)>,
    /// The designated leaker mid.
    pub leaker: u32,
    /// The multihomed vantage stub.
    pub vantage: u32,
    leaker_active: bool,
    te_enabled: bool,
    /// (at, from) → ASNs whose presence in a path `at` rejects from `from`.
    reject_contains: BTreeMap<(u32, u32), Vec<u32>>,
    /// (at, from) → reject paths at least this long.
    len_caps: BTreeMap<(u32, u32), usize>,
}

struct AsPlan {
    asn: u32,
    prefix: Prefix,
    providers: Vec<u32>,
    pop: usize,
}

impl ScenarioNet {
    /// Build the platform, attach the experiment, grow the seeded AS
    /// hierarchy and converge it.
    pub fn build(params: ScenarioParams) -> Self {
        assert!(
            (4..=24).contains(&params.mids),
            "mids 3000..3003 carry fixed scenario roles"
        );
        assert!((1..=4).contains(&params.stubs_per_mid));
        assert!(params.shards >= 1);

        let intent = PlatformIntent {
            platform_asn: PLATFORM_ASN,
            pops: (0..POPS)
                .map(|i| PopIntent {
                    name: format!("pop{i}"),
                    kind: PopKind::Ixp,
                    neighbors: vec![NeighborIntent {
                        id: (i + 1) as u32,
                        name: format!("transit{i}"),
                        asn: TRANSIT_ASN0 + i as u32,
                        role: NeighborRole::Transit,
                        rs_members: 0,
                    }],
                    bandwidth_limit: None,
                    backbone: false,
                })
                .collect(),
            experiments: Vec::new(),
        };
        let mut platform = Peering::build(intent, params.seed);

        let mut proposal = Proposal::basic("adversarial-scenarios");
        proposal.goals = "route-leak containment, path poisoning, community TE".to_string();
        proposal.v4_prefixes = 6;
        proposal.capabilities = vec![
            CapabilityRequest::Poisoning { max: 8 },
            CapabilityRequest::Communities { max: 8 },
        ];
        let mut exp = platform.submit(proposal).expect("proposal approved");
        for pop in platform.pop_names() {
            exp.toolkit
                .open_tunnel(&mut platform.sim, &pop)
                .expect("tunnel");
            exp.toolkit
                .start_bgp(&mut platform.sim, &pop)
                .expect("bgp up");
        }
        platform.run_for(SimDuration::from_secs(15));

        let mut transits = BTreeMap::new();
        for i in 0..POPS {
            let node = platform
                .neighbor_node(NeighborId((i + 1) as u32))
                .expect("transit node");
            transits.insert(TRANSIT_ASN0 + i as u32, (node, i));
        }
        // Transits journal their valley-free / Peerlock suppressions.
        for (&asn, &(node, _)) in &transits {
            let obs = platform.obs().scoped(&format!("as{asn}"));
            platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, _| n.set_obs(obs));
        }

        // --- seeded AS hierarchy -------------------------------------
        let mut rng = SimRng::new(params.seed ^ GRAPH_SALT);
        let mut plans: Vec<AsPlan> = Vec::new();
        for j in 0..params.mids {
            let asn = MID_ASN0 + j as u32;
            let primary = j % POPS;
            let mut providers = vec![TRANSIT_ASN0 + primary as u32];
            if j == 0 {
                // The leaker: multihomed so its leak crosses cones.
                providers.push(TRANSIT_ASN0 + 1);
            } else if j == 1 || j == 2 {
                // Kept single-homed: 3001 so the poison scenario's
                // alternate return path is unambiguous (no (pref, len)
                // tie at the vantage), 3002 so transit 2002's cone always
                // contains at least one stub whose ingress catchment the
                // TE prepend community can move.
            } else if rng.below(100) < 50 {
                let secondary = (primary + 1 + rng.below(2) as usize) % POPS;
                providers.push(TRANSIT_ASN0 + secondary as u32);
            }
            plans.push(AsPlan {
                asn,
                prefix: Prefix::v4(Ipv4Addr::new(203, 0, j as u8, 0), 24).expect("mid prefix"),
                providers,
                pop: primary,
            });
        }
        // Lateral peerings: (3000, 3001) always (the leaker needs a
        // peer-learned route to leak); others from the seed.
        let mut peerings: Vec<(usize, usize)> = vec![(0, 1)];
        for j in 0..params.mids {
            for k in (j + 1)..params.mids {
                if (j, k) != (0, 1) && rng.below(100) < 15 {
                    peerings.push((j, k));
                }
            }
        }
        for j in 0..params.mids {
            for s in 0..params.stubs_per_mid {
                let k = j * params.stubs_per_mid + s;
                plans.push(AsPlan {
                    asn: STUB_ASN0 + k as u32,
                    prefix: Prefix::v4(Ipv4Addr::new(203, 1, k as u8, 0), 24).expect("stub prefix"),
                    providers: vec![MID_ASN0 + j as u32],
                    pop: j % POPS,
                });
            }
        }
        // The vantage: one provider in transit 2000's cone (mid 3003, a
        // primary-pop0 mid), one in 2001's (mid 3001).
        plans.push(AsPlan {
            asn: VANTAGE_ASN,
            prefix: Prefix::v4(Ipv4Addr::new(203, 2, 0, 0), 24).expect("vantage prefix"),
            providers: vec![MID_ASN0 + 3, MID_ASN0 + 1],
            pop: 0,
        });

        let mut ases: BTreeMap<u32, AsInfo> = BTreeMap::new();
        for plan in &plans {
            let mut n = InternetAs::new(Asn(plan.asn), RouterId(plan.asn));
            n.originate(plan.prefix);
            n.set_obs(platform.obs().scoped(&format!("as{}", plan.asn)));
            let node = platform.sim.add_node(Box::new(n));
            ases.insert(
                plan.asn,
                AsInfo {
                    asn: plan.asn,
                    node,
                    prefix: plan.prefix,
                    providers: plan.providers.clone(),
                    peers: Vec::new(),
                    customers: Vec::new(),
                    pop: plan.pop,
                    sessions: Vec::new(),
                },
            );
        }
        for plan in &plans {
            for &p in &plan.providers {
                if p >= MID_ASN0 {
                    let info = ases.get_mut(&p).expect("provider mid exists");
                    info.customers.push(plan.asn);
                }
            }
        }
        for &(j, k) in &peerings {
            let (a, b) = (MID_ASN0 + j as u32, MID_ASN0 + k as u32);
            ases.get_mut(&a).expect("mid").peers.push(b);
            ases.get_mut(&b).expect("mid").peers.push(a);
        }

        // --- wiring ---------------------------------------------------
        // Per-node free-port and free-session counters. Transit nodes
        // already use port 0 (fabric) and 1 (core mesh), and sessions 0
        // (platform) plus 1.. (core); scenario sessions start at 100.
        let mut next_port: BTreeMap<NodeId, u16> = BTreeMap::new();
        let mut next_sess: BTreeMap<NodeId, u32> = BTreeMap::new();
        for &(node, _) in transits.values() {
            next_port.insert(node, 2);
            next_sess.insert(node, 100);
        }
        for info in ases.values() {
            next_port.insert(info.node, 0);
            next_sess.insert(info.node, 0);
        }

        let mut net = ScenarioNet {
            platform,
            exp,
            params,
            transits,
            ases,
            transit_sessions: Vec::new(),
            leaker: MID_ASN0,
            vantage: VANTAGE_ASN,
            leaker_active: false,
            te_enabled: false,
            reject_contains: BTreeMap::new(),
            len_caps: BTreeMap::new(),
        };

        let mut seq: u32 = 0;
        // Provider links, in plan order (mids, stubs, vantage).
        for plan in &plans {
            for &p in &plan.providers {
                net.wire(p, plan.asn, &mut seq, &mut next_port, &mut next_sess);
            }
        }
        // Lateral mid peerings.
        for &(j, k) in &peerings {
            net.wire_rel(
                MID_ASN0 + j as u32,
                Relationship::Peer,
                MID_ASN0 + k as u32,
                &mut seq,
                &mut next_port,
                &mut next_sess,
            );
        }

        // Start transit-side sessions (their hosts are already running;
        // session-up replays the full Adj-RIB-Out), then the scenario
        // nodes.
        let starts: Vec<(NodeId, PeerId)> = net
            .transit_sessions
            .iter()
            .map(|(t, s, _)| (net.transits[t].0, *s))
            .collect();
        for (node, session) in starts {
            net.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                    let events = n.host.start(ctx, session);
                    n.events.extend(events);
                });
        }
        let scenario_nodes: Vec<NodeId> = net.ases.values().map(|i| i.node).collect();
        for node in scenario_nodes {
            net.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| n.start(ctx));
        }

        if net.params.shards > 1 {
            net.platform.set_shards(net.params.shards);
            let shards = net.platform.sim.shards();
            let placement: Vec<(NodeId, usize)> = net
                .ases
                .values()
                .map(|i| (i.node, i.pop % shards))
                .collect();
            for (node, shard) in placement {
                net.platform.sim.set_node_shard(node, shard);
            }
        }
        net.platform.run_for(SimDuration::from_secs(40));
        net
    }

    /// Connect `upper` (provider side if transit/mid, passive opener) to
    /// `lower` (customer, active opener).
    fn wire(
        &mut self,
        upper: u32,
        lower: u32,
        seq: &mut u32,
        next_port: &mut BTreeMap<NodeId, u16>,
        next_sess: &mut BTreeMap<NodeId, u32>,
    ) {
        self.wire_rel(
            upper,
            Relationship::Customer,
            lower,
            seq,
            next_port,
            next_sess,
        );
    }

    /// Connect two ASes; `rel_at_upper` is what `lower` is to `upper`.
    fn wire_rel(
        &mut self,
        upper: u32,
        rel_at_upper: Relationship,
        lower: u32,
        seq: &mut u32,
        next_port: &mut BTreeMap<NodeId, u16>,
        next_sess: &mut BTreeMap<NodeId, u32>,
    ) {
        assert!(*seq < 250, "scenario link subnet pool exhausted");
        let rel_at_lower = match rel_at_upper {
            Relationship::Customer => Relationship::Provider,
            Relationship::Provider => Relationship::Customer,
            Relationship::Peer => Relationship::Peer,
            Relationship::RsClient => Relationship::RsClient,
        };
        let upper_node = self
            .transits
            .get(&upper)
            .map(|&(n, _)| n)
            .unwrap_or_else(|| self.ases[&upper].node);
        let lower_node = self.ases[&lower].node;
        let addr_u = Ipv4Addr::new(172, 20, *seq as u8, 1);
        let addr_l = Ipv4Addr::new(172, 20, *seq as u8, 2);
        let mac_u = MacAddr::from_id(0x0900_0000 | (*seq * 2));
        let mac_l = MacAddr::from_id(0x0900_0000 | (*seq * 2 + 1));
        let port_u = PortId(*next_port.get(&upper_node).expect("port ctr"));
        *next_port.get_mut(&upper_node).expect("port ctr") += 1;
        let port_l = PortId(*next_port.get(&lower_node).expect("port ctr"));
        *next_port.get_mut(&lower_node).expect("port ctr") += 1;
        let sess_u = PeerId(*next_sess.get(&upper_node).expect("sess ctr"));
        *next_sess.get_mut(&upper_node).expect("sess ctr") += 1;
        let sess_l = PeerId(*next_sess.get(&lower_node).expect("sess ctr"));
        *next_sess.get_mut(&lower_node).expect("sess ctr") += 1;

        self.platform
            .sim
            .with_node_ctx::<InternetAs, _>(upper_node, |n, _| {
                n.add_session(
                    sess_u,
                    rel_at_upper,
                    Asn(lower),
                    port_u,
                    mac_u,
                    addr_u,
                    mac_l,
                    addr_l,
                    true, // passive: the lower side opens
                );
            });
        self.platform
            .sim
            .with_node_ctx::<InternetAs, _>(lower_node, |n, _| {
                n.add_session(
                    sess_l,
                    rel_at_lower,
                    Asn(upper),
                    port_l,
                    mac_l,
                    addr_l,
                    mac_u,
                    addr_u,
                    false,
                );
            });
        self.platform.sim.connect(
            upper_node,
            port_u,
            lower_node,
            port_l,
            LinkConfig::with_latency(SimDuration::from_millis(5)),
        );

        if self.transits.contains_key(&upper) {
            self.transit_sessions.push((upper, sess_u, lower));
        } else if let Some(info) = self.ases.get_mut(&upper) {
            info.sessions.push(SessionInfo {
                id: sess_u,
                rel: rel_at_upper,
                remote_asn: lower,
                local_addr: addr_u,
                remote_addr: addr_l,
            });
        }
        if let Some(info) = self.ases.get_mut(&lower) {
            info.sessions.push(SessionInfo {
                id: sess_l,
                rel: rel_at_lower,
                remote_asn: upper,
                local_addr: addr_l,
                remote_addr: addr_u,
            });
        }
        *seq += 1;
    }

    // --- experiment surface ------------------------------------------

    /// The `idx`-th leased prefix.
    pub fn prefix(&self, idx: usize) -> Prefix {
        self.exp.lease.v4[idx]
    }

    /// An address inside the `idx`-th leased prefix.
    pub fn prefix_addr(&self, idx: usize, host: u32) -> Ipv4Addr {
        addr_in(self.prefix(idx), host)
    }

    /// Announce a leased prefix at a PoP.
    pub fn announce(&mut self, pop: usize, idx: usize, opts: &AnnounceOptions) {
        let prefix = self.prefix(idx);
        let pop = format!("pop{pop}");
        self.exp
            .toolkit
            .announce(&mut self.platform.sim, &pop, prefix, opts)
            .expect("announce");
    }

    /// Withdraw a leased prefix at a PoP.
    pub fn withdraw(&mut self, pop: usize, idx: usize) {
        let prefix = self.prefix(idx);
        let pop = format!("pop{pop}");
        self.exp
            .toolkit
            .withdraw(&mut self.platform.sim, &pop, prefix)
            .expect("withdraw");
    }

    /// Advance the simulation.
    pub fn run_secs(&mut self, secs: u64) {
        self.platform.run_for(SimDuration::from_secs(secs));
    }

    // --- scenario actions ----------------------------------------------

    /// Turn the designated leaker on: it starts exporting its full table
    /// (peer- and provider-learned routes included) upstream.
    pub fn trigger_leak(&mut self) {
        let node = self.ases[&self.leaker].node;
        self.platform
            .sim
            .with_node_ctx::<InternetAs, _>(node, |n, ctx| n.become_leaker(ctx));
        self.leaker_active = true;
    }

    /// Enable TE action-community interpretation at every transit.
    pub fn enable_te(&mut self) {
        let nodes: Vec<NodeId> = self.transits.values().map(|&(n, _)| n).collect();
        for node in nodes {
            self.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| n.enable_te_communities(ctx));
        }
        self.te_enabled = true;
    }

    /// Deploy Peerlock: every transit rejects, on its customer (mid)
    /// sessions, any path containing another transit. `lite: false`
    /// additionally protects the mid tier — every mid rejects
    /// transit-containing paths over its lateral peerings (full Peerlock
    /// deployment; "peerlock-lite" protects only the transit tier).
    pub fn install_peerlock(&mut self, lite: bool) {
        let all: Vec<u32> = self.transits.keys().copied().collect();
        let deployments = self.transit_sessions.clone();
        for (t, session, mid) in deployments {
            let banned: Vec<u32> = all.iter().copied().filter(|&o| o != t).collect();
            let rules: Vec<Rule> = banned
                .iter()
                .map(|&b| Rule::reject(Match::AsPathContains(Asn(b))))
                .collect();
            let node = self.transits[&t].0;
            self.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                    n.install_import_filter(ctx, session, rules)
                });
            self.reject_contains.insert((t, mid), banned);
        }
        if !lite {
            let mids: Vec<(u32, NodeId, Vec<SessionInfo>)> = self
                .ases
                .values()
                .map(|i| (i.asn, i.node, i.sessions.clone()))
                .collect();
            for (asn, node, sessions) in mids {
                for s in sessions.iter().filter(|s| s.rel == Relationship::Peer) {
                    let rules: Vec<Rule> = all
                        .iter()
                        .map(|&b| Rule::reject(Match::AsPathContains(Asn(b))))
                        .collect();
                    let session = s.id;
                    self.platform
                        .sim
                        .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                            n.install_import_filter(ctx, session, rules)
                        });
                    self.reject_contains
                        .insert((asn, s.remote_asn), all.clone());
                }
            }
        }
    }

    /// Install an AS_PATH length cap (reject length ≥ `cap`) on every
    /// provider session of `asn` — the "some ASes drop long poisoned
    /// paths" behavior the poisoning scenario measures.
    pub fn install_len_cap(&mut self, asn: u32, cap: usize) {
        let (node, sessions) = {
            let info = &self.ases[&asn];
            (info.node, info.sessions.clone())
        };
        for s in sessions.iter().filter(|s| s.rel == Relationship::Provider) {
            let session = s.id;
            self.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                    n.install_import_filter(
                        ctx,
                        session,
                        vec![Rule::reject(Match::AsPathLenAtLeast(cap))],
                    )
                });
            self.len_caps.insert((asn, s.remote_asn), cap);
        }
    }

    // --- measurement ---------------------------------------------------

    fn observed_at(&self, node: NodeId, dst: Ipv4Addr, adversary: Option<u32>) -> Observed {
        let n = self
            .platform
            .sim
            .node::<InternetAs>(node)
            .expect("scenario node");
        match n.best_route(dst) {
            Some(r) => Observed {
                has_route: true,
                local_pref: r.attrs.local_pref,
                path_len: Some(r.attrs.as_path.path_len()),
                via: adversary.is_some_and(|a| r.attrs.as_path.contains(Asn(a))),
                path: r.attrs.as_path.asns().iter().map(|a| a.0).collect(),
            },
            None => Observed {
                has_route: false,
                local_pref: None,
                path_len: None,
                via: false,
                path: Vec::new(),
            },
        }
    }

    /// What every modeled AS (transits + scenario tier) holds for `dst`.
    pub fn observe(&self, dst: Ipv4Addr, adversary: Option<u32>) -> BTreeMap<u32, Observed> {
        let mut out = BTreeMap::new();
        for (&asn, &(node, _)) in &self.transits {
            out.insert(asn, self.observed_at(node, dst, adversary));
        }
        for (&asn, info) in &self.ases {
            out.insert(asn, self.observed_at(info.node, dst, adversary));
        }
        out
    }

    /// ASes whose best path for `dst` traverses `adversary`.
    pub fn polluted(&self, dst: Ipv4Addr, adversary: u32) -> Vec<u32> {
        self.observe(dst, Some(adversary))
            .into_iter()
            .filter(|(_, o)| o.via)
            .map(|(asn, _)| asn)
            .collect()
    }

    /// Mirror the fixture into the reference model (current leaker /
    /// filter / TE state included).
    pub fn model(&self) -> Model {
        let mut m = Model::default();
        for &t in self.transits.keys() {
            let mut sessions: Vec<(u32, Rel)> = self
                .transits
                .keys()
                .filter(|&&o| o != t)
                .map(|&o| (o, Rel::Peer))
                .collect();
            for info in self.ases.values() {
                if info.providers.contains(&t) {
                    sessions.push((info.asn, Rel::Customer));
                }
            }
            m.ases.insert(
                t,
                ModelAs {
                    sessions,
                    te: self.te_enabled,
                    ..ModelAs::default()
                },
            );
        }
        for info in self.ases.values() {
            let mut sessions: Vec<(u32, Rel)> =
                info.providers.iter().map(|&p| (p, Rel::Provider)).collect();
            sessions.extend(info.peers.iter().map(|&p| (p, Rel::Peer)));
            sessions.extend(info.customers.iter().map(|&c| (c, Rel::Customer)));
            m.ases.insert(
                info.asn,
                ModelAs {
                    sessions,
                    leaker: self.leaker_active && info.asn == self.leaker,
                    ..ModelAs::default()
                },
            );
        }
        for (&(at, from), banned) in &self.reject_contains {
            m.ases
                .get_mut(&at)
                .expect("filter target modeled")
                .reject_contains
                .insert(from, banned.clone());
        }
        for (&(at, from), &cap) in &self.len_caps {
            m.ases
                .get_mut(&at)
                .expect("cap target modeled")
                .len_cap
                .insert(from, cap);
        }
        m
    }

    /// The model-side [`Injection`] matching a toolkit announcement at
    /// `pop`: the platform prepends its own ASN exactly once, the
    /// experiment node prepends itself `1 + prepend` times and appends
    /// the (sanitized) poison sandwich.
    pub fn injection(
        &self,
        pop: usize,
        prepend: usize,
        poisons: &[u32],
        communities: &[(u16, u16)],
    ) -> Injection {
        let exp = self.exp.lease.asn.0;
        let mut path = vec![PLATFORM_ASN];
        path.extend(std::iter::repeat_n(exp, 1 + prepend));
        let mut sanitized: Vec<u32> = Vec::new();
        for &p in poisons {
            if p != exp && !sanitized.contains(&p) {
                sanitized.push(p);
            }
        }
        if !sanitized.is_empty() {
            path.extend(&sanitized);
            path.push(exp);
        }
        Injection {
            at: TRANSIT_ASN0 + pop as u32,
            rel: Rel::Customer,
            path,
            communities: communities.to_vec(),
        }
    }

    /// PoP index a predicted path ingresses at: the transit immediately
    /// before the platform ASN. `None` when the path never enters the
    /// platform through a modeled transit.
    pub fn catchment_of_path(&self, path: &[u32]) -> Option<usize> {
        let at = path.iter().position(|&a| a == PLATFORM_ASN)?;
        if at == 0 {
            return None;
        }
        self.transits.get(&path[at - 1]).map(|&(_, pop)| pop)
    }

    /// Send one probe per stub toward `dst` and report which PoP each
    /// stub's traffic ingressed at (the TE catchment measurement). Stubs
    /// without a route are absent.
    pub fn measure_catchment(&mut self, dst: Ipv4Addr) -> BTreeMap<u32, usize> {
        let exp_node = self.exp.node;
        self.platform
            .sim
            .with_node_ctx::<ExperimentNode, _>(exp_node, |n, _| n.received.clear());
        let stubs: Vec<(u32, NodeId, Prefix)> = self
            .ases
            .values()
            .filter(|i| i.asn >= STUB_ASN0)
            .map(|i| (i.asn, i.node, i.prefix))
            .collect();
        for &(_, node, prefix) in &stubs {
            let src = addr_in(prefix, 1);
            self.platform
                .sim
                .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                    let _ = n.send_probe(ctx, src, dst, Bytes::from_static(b"catchment"));
                });
        }
        self.run_secs(10);
        let n = self
            .platform
            .sim
            .node::<ExperimentNode>(exp_node)
            .expect("experiment node");
        let mut out = BTreeMap::new();
        for r in &n.received {
            if r.packet.header.dst != dst {
                continue;
            }
            for &(asn, _, prefix) in &stubs {
                if prefix.contains_addr(r.packet.header.src.into()) {
                    out.insert(asn, r.port.0 as usize);
                }
            }
        }
        out
    }

    /// TTL-1 traceroute probe from the vantage toward `dst`; returns the
    /// first-hop address (the provider interface the vantage's best route
    /// points at — return-path steering evidence).
    pub fn vantage_first_hop(&mut self, dst: Ipv4Addr, ident: u16) -> Option<Ipv4Addr> {
        let (node, prefix) = {
            let info = &self.ases[&self.vantage];
            (info.node, info.prefix)
        };
        let src = addr_in(prefix, 1);
        self.platform
            .sim
            .with_node_ctx::<InternetAs, _>(node, |n, ctx| {
                let _ = n.send_probe_with_ttl(ctx, src, dst, 1, ident);
            });
        self.run_secs(8);
        let n = self
            .platform
            .sim
            .node::<InternetAs>(node)
            .expect("vantage node");
        n.traceroute_hops(ident)
            .iter()
            .find(|(_, d)| *d == dst)
            .map(|(hop, _)| *hop)
    }

    /// The vantage's interface address toward provider `mid` (what a
    /// first-hop probe reply should come from).
    pub fn vantage_link_to(&self, mid: u32) -> Ipv4Addr {
        self.ases[&self.vantage]
            .sessions
            .iter()
            .find(|s| s.remote_asn == mid)
            .expect("vantage provider session")
            .remote_addr
    }

    /// (summed `export_rejected` speaker counters, `ExportSuppressed`
    /// journal events) across transit + scenario nodes — the satellite-1
    /// regression surface.
    pub fn export_suppressions(&self) -> (u64, u64) {
        let mut counter = 0;
        let nodes: Vec<NodeId> = self
            .transits
            .values()
            .map(|&(n, _)| n)
            .chain(self.ases.values().map(|i| i.node))
            .collect();
        for node in nodes {
            let n = self
                .platform
                .sim
                .node::<InternetAs>(node)
                .expect("scenario node");
            for pid in n.host.speaker.peer_ids() {
                if let Some(stats) = n.host.speaker.peer_stats(pid) {
                    counter += stats.export_rejected;
                }
            }
        }
        let journal = self
            .platform
            .obs()
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::ExportSuppressed { .. }))
            .count() as u64;
        (counter, journal)
    }
}

/// An address inside `prefix` (IPv4 only).
pub fn addr_in(prefix: Prefix, host: u32) -> Ipv4Addr {
    match prefix {
        Prefix::V4 { addr, .. } => Ipv4Addr::from(u32::from(addr) + host),
        _ => unreachable!("scenarios lease IPv4 only"),
    }
}

/// Merge sim observations with model predictions into per-AS verdicts,
/// collecting differential mismatches (must come back empty).
pub fn reconcile(
    observed: &BTreeMap<u32, Observed>,
    predicted: &BTreeMap<u32, Predicted>,
) -> (BTreeMap<u32, AsVerdict>, Vec<String>) {
    let mut verdicts = BTreeMap::new();
    let mut mismatches = Vec::new();
    for (asn, pred) in predicted {
        let Some(obs) = observed.get(asn) else {
            mismatches.push(format!("as{asn}: modeled but not observed"));
            continue;
        };
        if obs.has_route != pred.has_route {
            mismatches.push(format!(
                "as{asn}: has_route sim={} model={}",
                obs.has_route, pred.has_route
            ));
        }
        if obs.local_pref != pred.local_pref {
            mismatches.push(format!(
                "as{asn}: local_pref sim={:?} model={:?}",
                obs.local_pref, pred.local_pref
            ));
        }
        if obs.path_len != pred.path_len {
            mismatches.push(format!(
                "as{asn}: path_len sim={:?} model={:?}",
                obs.path_len, pred.path_len
            ));
        }
        if let Some(via) = pred.via {
            if obs.via != via {
                mismatches.push(format!(
                    "as{asn}: via-adversary sim={} model={}",
                    obs.via, via
                ));
            }
        }
        if let Some(path) = &pred.path {
            if &obs.path != path {
                mismatches.push(format!("as{asn}: path sim={:?} model={:?}", obs.path, path));
            }
        }
        verdicts.insert(
            *asn,
            AsVerdict {
                asn: *asn,
                has_route: obs.has_route,
                local_pref: obs.local_pref,
                path_len: obs.path_len,
                via_adversary: pred.via.map(|_| obs.via),
                note: String::new(),
            },
        );
    }
    (verdicts, mismatches)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end smoke run of the fixture: announce the first leased
    /// prefix at PoP 0 and check every modeled AS against the reference
    /// model — validating the injection path formula (platform prepends
    /// exactly once), relationship prefs, and valley-free reach in one go.
    #[test]
    fn fixture_matches_reference_model() {
        let mut net = ScenarioNet::build(ScenarioParams {
            seed: 11,
            mids: 4,
            stubs_per_mid: 1,
            shards: 1,
        });
        net.announce(0, 0, &AnnounceOptions::default());
        net.run_secs(20);
        let dst = net.prefix_addr(0, 9);
        let observed = net.observe(dst, None);
        let predicted = net
            .model()
            .propagate(&[net.injection(0, 0, &[], &[])], None);
        let (verdicts, mismatches) = reconcile(&observed, &predicted);
        assert!(mismatches.is_empty(), "differential: {mismatches:?}");
        // Customer-learned at transit 2000 → everyone is reachable.
        assert!(verdicts.values().all(|v| v.has_route));
        // The transit that heard the platform directly trusts its customer.
        assert_eq!(verdicts[&TRANSIT_ASN0].local_pref, Some(200));
        assert_eq!(verdicts[&TRANSIT_ASN0].path_len, Some(2));
        // Sibling transits hear it over the core peering.
        assert_eq!(verdicts[&(TRANSIT_ASN0 + 2)].local_pref, Some(100));
    }
}
