//! Structured scenario outcomes.
//!
//! A [`ScenarioReport`] is the deliverable of one scenario run: per-AS
//! verdicts, aggregate counts, a pollution timeline and obs deltas. It is
//! built exclusively from `BTreeMap`s and plain integers so that two runs
//! with the same seed compare bit-identically (`PartialEq`) no matter how
//! many simulator shards executed them — the tentpole determinism claim.

use std::collections::BTreeMap;

/// What one synthetic AS held for the measured prefix at a measurement
/// point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsVerdict {
    /// The AS.
    pub asn: u32,
    /// It holds a route for the measured prefix.
    pub has_route: bool,
    /// LOCAL_PREF of its best route.
    pub local_pref: Option<u32>,
    /// AS_PATH length of its best route.
    pub path_len: Option<usize>,
    /// Best path traverses the adversary (leaker / poisoned AS). `None`
    /// when the reference model marks the AS tie-tainted — the decision
    /// process broke a (pref, len) tie by arrival order, so path *content*
    /// is seed-reproducible but not model-predictable.
    pub via_adversary: Option<bool>,
    /// Scenario-specific annotation ("polluted", "dropped-own-asn",
    /// "len-capped", "catchment=1", …). Empty when unremarkable.
    pub note: String,
}

/// The structured outcome of one scenario run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioReport {
    /// Scenario family ("route-leak", "poisoning", "te-communities").
    pub family: String,
    /// The seed that drove topology generation and the simulator.
    pub seed: u64,
    /// Per-AS verdicts at the final measurement point, keyed by ASN.
    pub per_as: BTreeMap<u32, AsVerdict>,
    /// Aggregate counts (family-specific: "polluted", "dropped_own_asn",
    /// "shifted", …).
    pub counts: BTreeMap<String, u64>,
    /// (sim-second, value) samples of the family's headline series —
    /// polluted-AS count for leaks, per-depth drop counts for poisoning,
    /// per-variant shifted-stub counts for TE.
    pub timeline: Vec<(u64, u64)>,
    /// Selected observability counter deltas over the scenario (summed
    /// across scenario nodes), e.g. "bgp.export_rejected".
    pub obs_deltas: BTreeMap<String, u64>,
    /// `ExportSuppressed` journal events recorded by scenario nodes.
    pub journal_export_suppressions: u64,
    /// Leak only: sim-seconds from reactive filter install to the polluted
    /// set returning to baseline.
    pub containment_secs: Option<u64>,
}

impl ScenarioReport {
    /// A fresh report shell for a family.
    pub fn new(family: &str, seed: u64) -> Self {
        ScenarioReport {
            family: family.to_string(),
            seed,
            per_as: BTreeMap::new(),
            counts: BTreeMap::new(),
            timeline: Vec::new(),
            obs_deltas: BTreeMap::new(),
            journal_export_suppressions: 0,
            containment_secs: None,
        }
    }

    /// Aggregate count by name (0 when absent).
    pub fn count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// ASNs whose verdict carries `note`.
    pub fn asns_with_note(&self, note: &str) -> Vec<u32> {
        self.per_as
            .values()
            .filter(|v| v.note.split(',').any(|n| n == note))
            .map(|v| v.asn)
            .collect()
    }

    /// Render the per-AS table and counts as aligned text (the
    /// EXPERIMENTS.md tables are generated from this).
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "scenario {} seed={}", self.family, self.seed);
        for (name, v) in &self.counts {
            let _ = writeln!(out, "  {name} = {v}");
        }
        if let Some(s) = self.containment_secs {
            let _ = writeln!(out, "  containment_secs = {s}");
        }
        for (name, v) in &self.obs_deltas {
            let _ = writeln!(out, "  obs {name} += {v}");
        }
        let _ = writeln!(
            out,
            "  journal export-suppressions = {}",
            self.journal_export_suppressions
        );
        if !self.timeline.is_empty() {
            let series: Vec<String> = self
                .timeline
                .iter()
                .map(|(t, v)| format!("{t}s:{v}"))
                .collect();
            let _ = writeln!(out, "  timeline: {}", series.join(" "));
        }
        let _ = writeln!(
            out,
            "  {:>6} {:>5} {:>4} {:>3} {:>5}  note",
            "asn", "route", "pref", "len", "adv"
        );
        for v in self.per_as.values() {
            let pref = v.local_pref.map_or("-".into(), |p| p.to_string());
            let len = v.path_len.map_or("-".into(), |l| l.to_string());
            let adv = match v.via_adversary {
                Some(true) => "yes",
                Some(false) => "no",
                None => "tie",
            };
            let _ = writeln!(
                out,
                "  {:>6} {:>5} {:>4} {:>3} {:>5}  {}",
                v.asn,
                if v.has_route { "yes" } else { "no" },
                pref,
                len,
                adv,
                v.note
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn verdict(asn: u32, note: &str) -> AsVerdict {
        AsVerdict {
            asn,
            has_route: true,
            local_pref: Some(100),
            path_len: Some(3),
            via_adversary: Some(false),
            note: note.to_string(),
        }
    }

    #[test]
    fn reports_compare_bitwise() {
        let mut a = ScenarioReport::new("route-leak", 7);
        let mut b = ScenarioReport::new("route-leak", 7);
        for r in [&mut a, &mut b] {
            r.per_as.insert(10, verdict(10, "polluted"));
            r.counts.insert("polluted".into(), 1);
            r.timeline.push((4, 1));
        }
        assert_eq!(a, b);
        b.timeline.push((6, 0));
        assert_ne!(a, b);
    }

    #[test]
    fn note_queries_match_comma_lists() {
        let mut r = ScenarioReport::new("poisoning", 1);
        r.per_as.insert(10, verdict(10, "len-capped,polluted"));
        r.per_as.insert(11, verdict(11, "polluted"));
        r.per_as.insert(12, verdict(12, ""));
        assert_eq!(r.asns_with_note("polluted"), vec![10, 11]);
        assert_eq!(r.asns_with_note("len-capped"), vec![10]);
        assert!(r.asns_with_note("missing").is_empty());
    }

    #[test]
    fn text_rendering_contains_table() {
        let mut r = ScenarioReport::new("te-communities", 3);
        r.per_as.insert(10, verdict(10, "catchment=1"));
        r.counts.insert("shifted".into(), 4);
        let text = r.to_text();
        assert!(text.contains("te-communities"));
        assert!(text.contains("shifted = 4"));
        assert!(text.contains("catchment=1"));
    }
}
