//! Pure-Rust reference propagation model.
//!
//! A tiny, simulator-free Gao–Rexford fixpoint over the scenario's AS
//! graph. Every scenario run is checked against it: the model predicts,
//! per AS, whether a route for the measured prefix exists and its
//! LOCAL_PREF and AS_PATH length — all of which are invariant under the
//! speaker's arrival-order tie-breaking — plus whether the best path
//! traverses the adversary, which is only asserted where no tie could
//! change the answer (see [`Predicted::via`]).
//!
//! The model mirrors exactly the policy surface the scenarios exercise:
//! relationship-based import preferences and valley-free exports, the
//! leaker's export-everything override, Peerlock `AsPathContains` import
//! rejects, `AsPathLenAtLeast` caps, own-ASN loop suppression, and the TE
//! action communities honored by transit ASes.

use std::collections::BTreeMap;

/// What a session remote is to the local AS (model-local mirror of the
/// simulator's relationship enum, so this module has zero sim deps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rel {
    /// They pay us.
    Customer,
    /// Settlement-free.
    Peer,
    /// We pay them.
    Provider,
}

/// LOCAL_PREF assigned to routes imported from a `rel` remote (matches
/// `peering_platform::internet::Relationship::local_pref`).
pub fn rel_pref(rel: Rel) -> u32 {
    match rel {
        Rel::Customer => 200,
        Rel::Peer => 100,
        Rel::Provider => 50,
    }
}

/// One AS in the model.
#[derive(Debug, Clone, Default)]
pub struct ModelAs {
    /// (neighbor ASN, what the neighbor is to us).
    pub sessions: Vec<(u32, Rel)>,
    /// Export the full table to peers and providers (the route leaker).
    pub leaker: bool,
    /// Peerlock-style import filters: per sending neighbor, drop any path
    /// containing one of these ASNs.
    pub reject_contains: BTreeMap<u32, Vec<u32>>,
    /// Per sending neighbor, drop paths whose length is at least this.
    pub len_cap: BTreeMap<u32, usize>,
    /// Honors TE action communities (`asn16:50` do-not-announce-to-peers,
    /// `asn16:61..=63` prepend-to-peer) on peer exports.
    pub te: bool,
}

/// An externally injected route: the platform announcing the experiment's
/// prefix into a transit AS.
#[derive(Debug, Clone)]
pub struct Injection {
    /// AS that hears it.
    pub at: u32,
    /// What the (out-of-model) sender is to `at` — `Customer` for the
    /// platform's transit sessions.
    pub rel: Rel,
    /// The AS_PATH as received (platform ASN first, then the experiment's
    /// announced path, poisons included).
    pub path: Vec<u32>,
    /// Communities attached to the announcement.
    pub communities: Vec<(u16, u16)>,
}

/// The model's prediction for one AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Predicted {
    /// A route for the prefix exists.
    pub has_route: bool,
    /// LOCAL_PREF of the best route.
    pub local_pref: Option<u32>,
    /// AS_PATH length (prepends counted) of the best route.
    pub path_len: Option<usize>,
    /// Best path contains the adversary ASN. `None` when a (pref, len) tie
    /// anywhere upstream could change the answer: the simulator breaks
    /// such ties by arrival order, which is seed-deterministic but not
    /// statically predictable, so the differential check skips the
    /// via-adversary assertion there.
    pub via: Option<bool>,
    /// The concrete best AS_PATH. `None` when a (pref, len) tie anywhere
    /// upstream offered *different* paths — a strictly weaker condition
    /// than `via` taint (candidates may differ in path yet agree on
    /// adversary traversal), used for catchment prediction in the TE
    /// scenario.
    pub path: Option<Vec<u32>>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Cand {
    path: Vec<u32>,
    pref: u32,
    via_tainted: bool,
    path_tainted: bool,
    communities: Vec<(u16, u16)>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Best {
    path: Vec<u32>,
    pref: u32,
    /// Tie at the (pref, len) level whose candidates disagree on
    /// adversary-traversal, or inherited from a tie candidate.
    via_tainted: bool,
    /// Tie candidates offered different concrete paths, or inherited.
    path_tainted: bool,
    communities: Vec<(u16, u16)>,
}

/// The AS graph under one measured prefix.
#[derive(Debug, Clone, Default)]
pub struct Model {
    /// ASes by ASN.
    pub ases: BTreeMap<u32, ModelAs>,
}

impl Model {
    /// Propagate `injections` to a fixpoint and predict every AS's verdict.
    /// `adversary` is the ASN whose traversal the scenario measures (the
    /// leaker or a poisoned AS); pass `None` to skip traversal tracking.
    pub fn propagate(
        &self,
        injections: &[Injection],
        adversary: Option<u32>,
    ) -> BTreeMap<u32, Predicted> {
        // Adj-RIB-In per AS, keyed by sender ASN. u32::MAX keys the
        // injection slot (at most one per AS in every scenario).
        let mut seeded: BTreeMap<u32, BTreeMap<u32, Cand>> = BTreeMap::new();
        for inj in injections {
            seeded.entry(inj.at).or_default().insert(
                u32::MAX,
                Cand {
                    path: inj.path.clone(),
                    pref: rel_pref(inj.rel),
                    via_tainted: false,
                    path_tainted: false,
                    communities: inj.communities.clone(),
                },
            );
        }

        // Each round rebuilds every Adj-RIB-In from the injections plus
        // what every AS currently exports, so a best-path change both
        // replaces AND withdraws its previous advertisement.
        let mut ribs = seeded.clone();
        for round in 0.. {
            assert!(round < 1000, "model fixpoint did not converge");
            let mut next = seeded.clone();
            for (&asn, me) in &self.ases {
                let Some(best) = self.select(asn, &ribs, adversary) else {
                    continue;
                };
                for &(nbr, nbr_rel) in &me.sessions {
                    let Some(cand) = self.export(asn, me, &best, nbr, nbr_rel) else {
                        continue;
                    };
                    next.entry(nbr).or_default().insert(asn, cand);
                }
            }
            if next == ribs {
                break;
            }
            ribs = next;
        }

        let mut out = BTreeMap::new();
        for &asn in self.ases.keys() {
            let verdict = match self.select(asn, &ribs, adversary) {
                Some(best) => Predicted {
                    has_route: true,
                    local_pref: Some(best.pref),
                    path_len: Some(best.path.len()),
                    via: if best.via_tainted {
                        None
                    } else {
                        Some(adversary.is_some_and(|a| best.path.contains(&a)))
                    },
                    path: if best.path_tainted {
                        None
                    } else {
                        Some(best.path.clone())
                    },
                },
                None => Predicted {
                    has_route: false,
                    local_pref: None,
                    path_len: None,
                    via: Some(false),
                    path: None,
                },
            };
            out.insert(asn, verdict);
        }
        out
    }

    /// Decision process: highest pref, then shortest path; among exact
    /// (pref, len) ties pick the lowest sender ASN for the concrete path
    /// but mark the result tainted if the tie candidates disagree on
    /// adversary traversal (the simulator would break that tie by arrival
    /// order instead).
    fn select(
        &self,
        asn: u32,
        ribs: &BTreeMap<u32, BTreeMap<u32, Cand>>,
        adversary: Option<u32>,
    ) -> Option<Best> {
        let rib = ribs.get(&asn)?;
        let best_key = rib
            .values()
            .map(|c| (std::cmp::Reverse(c.pref), c.path.len()))
            .min()?;
        let tier: Vec<&Cand> = rib
            .values()
            .filter(|c| (std::cmp::Reverse(c.pref), c.path.len()) == best_key)
            .collect();
        let chosen = tier[0];
        let via0 = adversary.is_some_and(|a| chosen.path.contains(&a));
        let via_disagree = tier
            .iter()
            .any(|c| adversary.is_some_and(|a| c.path.contains(&a)) != via0);
        let paths_differ = tier.iter().any(|c| c.path != chosen.path);
        Some(Best {
            path: chosen.path.clone(),
            pref: chosen.pref,
            via_tainted: via_disagree || tier.iter().any(|c| c.via_tainted),
            path_tainted: paths_differ || tier.iter().any(|c| c.path_tainted),
            communities: chosen.communities.clone(),
        })
    }

    /// What `asn` sends `nbr`, if anything: valley-free eligibility (or the
    /// leaker override), sender-side loop suppression, TE action
    /// communities on peer exports, then the receiver's import pipeline
    /// (own-ASN drop, Peerlock rejects, length caps, relationship pref).
    fn export(&self, asn: u32, me: &ModelAs, best: &Best, nbr: u32, nbr_rel: Rel) -> Option<Cand> {
        // Valley-free: customers get everything; peers/providers only see
        // customer-learned (pref 200) routes — unless we're the leaker.
        if nbr_rel != Rel::Customer && best.pref != rel_pref(Rel::Customer) && !me.leaker {
            return None;
        }
        if best.path.contains(&nbr) {
            return None; // sender-side loop check
        }
        let mut prepend = 1usize;
        if me.te && nbr_rel == Rel::Peer {
            let asn16 = (asn & 0xFFFF) as u16;
            if best.communities.contains(&(asn16, 50)) {
                return None; // do-not-announce-regional
            }
            for n in 1..=3u16 {
                if best.communities.contains(&(asn16, 60 + n)) {
                    prepend += n as usize;
                }
            }
        }
        let mut path = vec![asn; prepend];
        path.extend_from_slice(&best.path);

        let receiver = self.ases.get(&nbr)?;
        if let Some(banned) = receiver.reject_contains.get(&asn) {
            if banned.iter().any(|b| path.contains(b)) {
                return None;
            }
        }
        if let Some(&cap) = receiver.len_cap.get(&asn) {
            if path.len() >= cap {
                return None;
            }
        }
        // What WE are to the receiver, for its import pref.
        let my_rel_at_nbr = receiver
            .sessions
            .iter()
            .find(|(a, _)| *a == asn)
            .map(|(_, r)| *r)?;
        Some(Cand {
            path,
            pref: rel_pref(my_rel_at_nbr),
            via_tainted: best.via_tainted,
            path_tainted: best.path_tainted,
            communities: best.communities.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// stub(1) —customer-of→ t1(2) ←peer→ t2(3) ←provider-of— stub2(4),
    /// t1 —customer-of→ big(5): the same diamond the simulator unit tests
    /// use, so the expectations below are cross-checked against real
    /// speaker behavior.
    fn diamond() -> Model {
        let mut m = Model::default();
        let mut add = |asn: u32, sessions: Vec<(u32, Rel)>| {
            m.ases.insert(
                asn,
                ModelAs {
                    sessions,
                    ..ModelAs::default()
                },
            );
        };
        add(1, vec![(2, Rel::Provider)]);
        add(
            2,
            vec![(1, Rel::Customer), (3, Rel::Peer), (5, Rel::Provider)],
        );
        add(3, vec![(2, Rel::Peer), (4, Rel::Customer)]);
        add(4, vec![(3, Rel::Provider)]);
        add(5, vec![(2, Rel::Customer)]);
        m
    }

    fn inject_at(asn: u32) -> Vec<Injection> {
        vec![Injection {
            at: asn,
            rel: Rel::Customer,
            path: vec![47065, 61574],
            communities: Vec::new(),
        }]
    }

    #[test]
    fn valley_free_propagation() {
        let m = diamond();
        let out = m.propagate(&inject_at(2), None);
        // Injected at t1 as customer-learned: everyone sees it...
        assert!(out[&1].has_route);
        assert!(out[&3].has_route);
        assert!(out[&4].has_route);
        assert!(out[&5].has_route);
        // ...but t2 (peer-learned, pref 100) must not have re-exported to
        // any provider — there is none in this graph; instead check prefs
        // and lengths.
        assert_eq!(out[&2].local_pref, Some(200));
        assert_eq!(out[&2].path_len, Some(2));
        assert_eq!(out[&3].local_pref, Some(100));
        assert_eq!(out[&3].path_len, Some(3));
        assert_eq!(out[&4].local_pref, Some(50));
        assert_eq!(out[&4].path_len, Some(4));
        assert_eq!(out[&5].local_pref, Some(200));
        assert_eq!(out[&5].path_len, Some(3));
    }

    #[test]
    fn peer_learned_routes_stop_at_the_peering_edge() {
        // Inject at t2: t1 hears it over the peering (pref 100) and must
        // NOT pass it up to big.
        let m = diamond();
        let out = m.propagate(&inject_at(3), None);
        assert!(out[&2].has_route);
        assert!(out[&1].has_route, "customers still get peer routes");
        assert!(!out[&5].has_route, "valley-free: no peer route upstream");
    }

    #[test]
    fn leaker_override_pushes_peer_routes_upstream() {
        let mut m = diamond();
        m.ases.get_mut(&2).unwrap().leaker = true;
        let out = m.propagate(&inject_at(3), Some(2));
        assert!(out[&5].has_route, "leaker exports peer routes to providers");
        assert_eq!(out[&5].via, Some(true));
        assert_eq!(out[&5].local_pref, Some(200), "big trusts its customer");
    }

    #[test]
    fn peerlock_reject_contains_blocks_the_leak() {
        let mut m = diamond();
        m.ases.get_mut(&2).unwrap().leaker = true;
        // big filters paths containing t2 on the session from t1.
        m.ases
            .get_mut(&5)
            .unwrap()
            .reject_contains
            .insert(2, vec![3]);
        let out = m.propagate(&inject_at(3), Some(2));
        assert!(!out[&5].has_route, "Peerlock drops the leaked path");
    }

    #[test]
    fn len_cap_drops_long_paths() {
        let mut m = diamond();
        // stub2 caps paths from t2 at 4 hops: the 4-hop injected path
        // (2 + t1 + t2) is dropped.
        m.ases.get_mut(&4).unwrap().len_cap.insert(3, 4);
        let out = m.propagate(&inject_at(2), None);
        assert!(!out[&4].has_route);
        assert!(out[&1].has_route);
    }

    #[test]
    fn own_asn_in_path_suppresses_export() {
        // Poisoned path containing the receiver: t2 never accepts it.
        let m = diamond();
        let inj = vec![Injection {
            at: 2,
            rel: Rel::Customer,
            path: vec![47065, 61574, 3, 61574],
            communities: Vec::new(),
        }];
        let out = m.propagate(&inj, Some(3));
        assert!(out[&2].has_route);
        assert!(!out[&3].has_route, "own ASN in path drops the route");
        assert!(!out[&4].has_route, "nothing to pass on");
        assert_eq!(out[&5].via, Some(true), "poison rides along upstream");
    }

    #[test]
    fn te_do_not_announce_gates_peer_export_only() {
        let mut m = diamond();
        m.ases.get_mut(&2).unwrap().te = true;
        let inj = vec![Injection {
            at: 2,
            rel: Rel::Customer,
            path: vec![47065, 61574],
            communities: vec![(2, 50)],
        }];
        let out = m.propagate(&inj, None);
        assert!(!out[&3].has_route, "suppressed toward the peer");
        assert!(out[&5].has_route, "provider export unaffected");
        assert!(out[&1].has_route, "customer export unaffected");
    }

    #[test]
    fn te_prepend_lengthens_peer_paths_only() {
        let mut m = diamond();
        m.ases.get_mut(&2).unwrap().te = true;
        let inj = vec![Injection {
            at: 2,
            rel: Rel::Customer,
            path: vec![47065, 61574],
            communities: vec![(2, 62)],
        }];
        let out = m.propagate(&inj, None);
        // t2 sees 2 extra prepends: 1 + 2 + injected 2 = 5.
        assert_eq!(out[&3].path_len, Some(5));
        // big sees the normal 3-hop path.
        assert_eq!(out[&5].path_len, Some(3));
    }

    #[test]
    fn disagreeing_tie_taints_but_agreeing_tie_does_not() {
        // Two providers hand AS 9 equal-pref equal-len paths, one through
        // the adversary and one clean → via must be None. A downstream
        // customer inherits the taint.
        let mut m = Model::default();
        m.ases.insert(
            7,
            ModelAs {
                sessions: vec![(9, Rel::Customer)],
                ..ModelAs::default()
            },
        );
        m.ases.insert(
            8,
            ModelAs {
                sessions: vec![(9, Rel::Customer)],
                ..ModelAs::default()
            },
        );
        m.ases.insert(
            9,
            ModelAs {
                sessions: vec![(7, Rel::Provider), (8, Rel::Provider), (10, Rel::Customer)],
                ..ModelAs::default()
            },
        );
        m.ases.insert(
            10,
            ModelAs {
                sessions: vec![(9, Rel::Provider)],
                ..ModelAs::default()
            },
        );
        let inj = |at: u32, path: Vec<u32>| Injection {
            at,
            rel: Rel::Customer,
            path,
            communities: Vec::new(),
        };
        // 666 is the adversary; only 7's copy traverses it.
        let out = m.propagate(
            &[inj(7, vec![666, 61574]), inj(8, vec![470, 61574])],
            Some(666),
        );
        assert_eq!(out[&9].via, None, "disagreeing tie must taint");
        assert!(out[&9].has_route);
        assert_eq!(out[&9].path_len, Some(3), "length is tie-invariant");
        assert_eq!(out[&9].path, None, "tie paths differ: no concrete path");
        assert_eq!(out[&10].via, None, "taint propagates downstream");
        // Same shape but both copies clean: agreeing tie keeps via
        // asserted, yet the concrete path is still unpredictable.
        let out = m.propagate(
            &[inj(7, vec![470, 61574]), inj(8, vec![471, 61574])],
            Some(666),
        );
        assert_eq!(out[&9].via, Some(false));
        assert_eq!(out[&9].path, None, "path taint is weaker than via taint");
        assert_eq!(out[&10].via, Some(false));
    }

    #[test]
    fn unique_best_exposes_the_concrete_path() {
        let m = diamond();
        let out = m.propagate(&inject_at(2), Some(3));
        assert_eq!(out[&1].path, Some(vec![2, 47065, 61574]));
        assert_eq!(out[&5].path, Some(vec![2, 47065, 61574]));
        assert_eq!(out[&4].path, Some(vec![3, 2, 47065, 61574]));
    }
}
