//! Adversarial interdomain scenarios, run as first-class PEERING
//! experiments against the synthetic internet (ROADMAP item: scenario
//! library; related work: "Flexsealing BGP Against Route Leaks" and
//! "Withdrawing the BGP Re-Routing Curtain", see PAPERS.md).
//!
//! Three seeded, scripted scenario families:
//!
//! - [`leak`] — a multihomed customer AS re-exports provider/peer-learned
//!   routes upstream (the RFC 7908 route leak), with configurable
//!   Peerlock / peerlock-lite filter deployment at the transit tier and a
//!   reactive-containment phase measuring time-to-containment.
//! - [`poison`] — AS-path poisoning through the platform's poisoning
//!   capability, sweeping poison depth and reporting which synthetic ASes
//!   drop poisoned paths (own-ASN filters, path-length caps) plus the
//!   achieved return-path steering, verified by traceroute-style probes.
//! - [`te`] — inbound traffic engineering with action communities
//!   (prepend-to-peer, do-not-announce-regional) interpreted by the
//!   Gao–Rexford policy engine, measuring ingress PoP catchment shifts.
//!
//! Every scenario runs on a [`net::ScenarioNet`] (a small PEERING
//! deployment plus a seeded AS hierarchy under its transits), emits a
//! structured [`report::ScenarioReport`], and is verified against the
//! pure-Rust reference propagation model in [`model`]. Reports are
//! bit-identical across simulator shard counts for the same seed.

pub mod leak;
pub mod model;
pub mod net;
pub mod poison;
pub mod report;
pub mod te;

pub use leak::{run_leak, FilterMode, LeakParams};
pub use model::{rel_pref, Injection, Model, ModelAs, Predicted, Rel};
pub use net::{
    addr_in, reconcile, AsInfo, Observed, ScenarioNet, ScenarioParams, SessionInfo, MID_ASN0,
    PLATFORM_ASN, STUB_ASN0, TRANSIT_ASN0, VANTAGE_ASN,
};
pub use poison::{run_poison, PoisonParams, LEN_CAPS, POISON_ORDER};
pub use report::{AsVerdict, ScenarioReport};
pub use te::{run_te, TeParams};
