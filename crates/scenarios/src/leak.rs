//! Scenario family (a): route-leak injection with configurable Peerlock
//! deployment and reactive containment.
//!
//! Mid 3000 is multihomed to transits 2000 and 2001 and peers laterally
//! with mid 3001. The experiment announces a leased prefix at PoP 0 only,
//! so the leaker's best route is provider-learned via 2000; when
//! [`ScenarioNet::trigger_leak`] flips it to full-table export (the RFC
//! 7908 type-1 leak), that route is re-advertised upstream to transit
//! 2001 and laterally to its peers, polluting every AS that prefers the
//! leaked customer/peer route over its legitimate path.
//!
//! [`FilterMode`] controls the defense: `PeerlockLite` protects only the
//! transit tier (each transit rejects customer-announced paths containing
//! another transit), `Peerlock` additionally protects mid-tier lateral
//! peerings. `reactive` leaves the network unfiltered until pollution is
//! first observed, then deploys full Peerlock and measures
//! time-to-containment.

use std::collections::BTreeSet;

use peering_toolkit::client::AnnounceOptions;

use crate::net::{reconcile, ScenarioNet, ScenarioParams};
use crate::report::ScenarioReport;

/// Peerlock deployment level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterMode {
    /// No path filters anywhere.
    None,
    /// Transit tier only ("peerlock-lite").
    PeerlockLite,
    /// Transit tier plus mid-tier lateral peerings.
    Peerlock,
}

/// Leak scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct LeakParams {
    /// Topology + simulator seed.
    pub seed: u64,
    /// Pre-installed filter deployment.
    pub filter: FilterMode,
    /// Deploy full Peerlock only after pollution is first observed, and
    /// measure time-to-containment.
    pub reactive: bool,
    /// Simulator shards.
    pub shards: usize,
}

impl LeakParams {
    /// Unfiltered, non-reactive, single shard.
    pub fn new(seed: u64) -> Self {
        LeakParams {
            seed,
            filter: FilterMode::None,
            reactive: false,
            shards: 1,
        }
    }

    /// Select the filter deployment.
    pub fn with_filter(mut self, filter: FilterMode) -> Self {
        self.filter = filter;
        self
    }

    /// Enable reactive containment.
    pub fn reactive(mut self) -> Self {
        self.reactive = true;
        self
    }

    /// Run under `shards` simulator shards.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }
}

/// Run the route-leak scenario.
///
/// Counts: `polluted` (ASes beyond the leaker's legitimate customer cone
/// whose best path traverses the leaker at the end), `polluted_peak` (max
/// over the timeline), `baseline_via` (legitimate cone size),
/// `model_mismatches` (differential failures against the reference model
/// — always asserted zero by the battery).
pub fn run_leak(params: LeakParams) -> ScenarioReport {
    let mut net = ScenarioNet::build(ScenarioParams::new(params.seed).with_shards(params.shards));
    let mut report = ScenarioReport::new("route-leak", params.seed);
    let (counter0, journal0) = net.export_suppressions();

    match params.filter {
        FilterMode::None => {}
        FilterMode::PeerlockLite => net.install_peerlock(true),
        FilterMode::Peerlock => net.install_peerlock(false),
    }

    net.announce(0, 0, &AnnounceOptions::default());
    net.run_secs(20);
    let dst = net.prefix_addr(0, 1);
    let leaker = net.leaker;
    let injections = [net.injection(0, 0, &[], &[])];

    // Pre-leak differential: the baseline via-leaker set is exactly the
    // leaker's customer cone.
    let observed = net.observe(dst, Some(leaker));
    let predicted = net.model().propagate(&injections, Some(leaker));
    let (_, mm) = reconcile(&observed, &predicted);
    let mut mismatches = mm.len() as u64;
    let baseline: BTreeSet<u32> = observed
        .iter()
        .filter(|(_, o)| o.via)
        .map(|(&asn, _)| asn)
        .collect();

    net.trigger_leak();

    let mut peak = 0u64;
    let mut installed_at: Option<u64> = None;
    let mut containment: Option<u64> = None;
    let mut elapsed = 0u64;
    for _ in 0..15 {
        net.run_secs(2);
        elapsed += 2;
        let now: BTreeSet<u32> = net.polluted(dst, leaker).into_iter().collect();
        let extra = now.difference(&baseline).count() as u64;
        report.timeline.push((elapsed, extra));
        peak = peak.max(extra);
        if params.reactive {
            if extra > 0 && installed_at.is_none() {
                net.install_peerlock(false);
                installed_at = Some(elapsed);
            }
            if let (Some(at), 0, None) = (installed_at, extra, containment) {
                containment = Some(elapsed - at);
            }
        }
    }
    report.containment_secs = containment;

    // Final differential with the leaker (and any reactive filters)
    // mirrored into the model.
    let observed = net.observe(dst, Some(leaker));
    let predicted = net.model().propagate(&injections, Some(leaker));
    let (mut verdicts, mm) = reconcile(&observed, &predicted);
    mismatches += mm.len() as u64;
    let polluted: BTreeSet<u32> = observed
        .iter()
        .filter(|(asn, o)| o.via && !baseline.contains(asn))
        .map(|(&asn, _)| asn)
        .collect();
    for (asn, v) in verdicts.iter_mut() {
        if polluted.contains(asn) {
            v.note = "polluted".to_string();
        } else if baseline.contains(asn) {
            v.note = "customer-of-leaker".to_string();
        }
    }
    report.per_as = verdicts;
    report
        .counts
        .insert("polluted".into(), polluted.len() as u64);
    report.counts.insert("polluted_peak".into(), peak);
    report
        .counts
        .insert("baseline_via".into(), baseline.len() as u64);
    report.counts.insert("model_mismatches".into(), mismatches);

    let (counter1, journal1) = net.export_suppressions();
    report
        .obs_deltas
        .insert("bgp.export_rejected".into(), counter1 - counter0);
    report.journal_export_suppressions = journal1 - journal0;
    report
}
