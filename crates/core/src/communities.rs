//! The control-community scheme (paper §3.2.1).
//!
//! vBGP defines whitelist/blacklist BGP communities for the neighbors at
//! every PoP. Experiments label prefix announcements with these communities
//! to steer which neighbors the announcement propagates to; when no control
//! community is attached, the announcement goes to all neighbors. Control
//! communities are stripped before export to the Internet.
//!
//! Scheme (mirroring PEERING's real `47065:X` convention):
//!
//! * `ASN:nbr`           — announce **only** to neighbor `nbr` (whitelist;
//!   repeatable to build a set)
//! * `ASN:(10000+nbr)`   — do **not** announce to neighbor `nbr` (blacklist)
//!
//! Neighbor ids are therefore capped at [`MAX_NEIGHBOR_ID`].

use peering_bgp::types::Community;

use crate::ids::NeighborId;

/// Largest neighbor id encodable in the community scheme.
pub const MAX_NEIGHBOR_ID: u32 = 9_999;

const BLACKLIST_BASE: u16 = 10_000;

/// The control-community codec for one platform ASN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlCommunities {
    /// The platform's (2-byte) ASN owning the community namespace.
    pub platform_asn: u16,
}

/// A decoded steering directive.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Steering {
    /// Announce only to this neighbor.
    AnnounceTo(NeighborId),
    /// Do not announce to this neighbor.
    DoNotAnnounceTo(NeighborId),
}

impl ControlCommunities {
    /// Build the codec for a platform ASN.
    pub fn new(platform_asn: u16) -> Self {
        ControlCommunities { platform_asn }
    }

    /// The whitelist community for a neighbor.
    pub fn announce_to(&self, nbr: NeighborId) -> Community {
        assert!(
            nbr.0 <= MAX_NEIGHBOR_ID,
            "neighbor id out of community range"
        );
        Community::new(self.platform_asn, nbr.0 as u16)
    }

    /// The blacklist community for a neighbor.
    pub fn do_not_announce_to(&self, nbr: NeighborId) -> Community {
        assert!(
            nbr.0 <= MAX_NEIGHBOR_ID,
            "neighbor id out of community range"
        );
        Community::new(self.platform_asn, BLACKLIST_BASE + nbr.0 as u16)
    }

    /// Whether a community belongs to this control namespace.
    pub fn is_control(&self, c: Community) -> bool {
        c.high() == self.platform_asn
    }

    /// Decode a community into a steering directive, if it is one.
    pub fn decode(&self, c: Community) -> Option<Steering> {
        if !self.is_control(c) {
            return None;
        }
        let low = c.low();
        if low >= BLACKLIST_BASE && u32::from(low - BLACKLIST_BASE) <= MAX_NEIGHBOR_ID {
            Some(Steering::DoNotAnnounceTo(NeighborId(u32::from(
                low - BLACKLIST_BASE,
            ))))
        } else {
            Some(Steering::AnnounceTo(NeighborId(u32::from(low))))
        }
    }

    /// Given the communities attached to an announcement, decide whether it
    /// should be exported to `nbr`:
    ///
    /// * any whitelist present → export iff `nbr` is whitelisted;
    /// * otherwise → export unless `nbr` is blacklisted.
    pub fn allows_export(&self, communities: &[Community], nbr: NeighborId) -> bool {
        let mut any_whitelist = false;
        let mut whitelisted = false;
        let mut blacklisted = false;
        for &c in communities {
            match self.decode(c) {
                Some(Steering::AnnounceTo(n)) => {
                    any_whitelist = true;
                    whitelisted |= n == nbr;
                }
                Some(Steering::DoNotAnnounceTo(n)) => {
                    blacklisted |= n == nbr;
                }
                None => {}
            }
        }
        if blacklisted {
            false
        } else if any_whitelist {
            whitelisted
        } else {
            true
        }
    }

    /// Strip every control community (done before export to the Internet).
    pub fn strip(&self, communities: &mut Vec<Community>) {
        communities.retain(|c| !self.is_control(*c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CC: ControlCommunities = ControlCommunities {
        platform_asn: 47065,
    };

    #[test]
    fn encode_decode_roundtrip() {
        let n = NeighborId(42);
        assert_eq!(CC.decode(CC.announce_to(n)), Some(Steering::AnnounceTo(n)));
        assert_eq!(
            CC.decode(CC.do_not_announce_to(n)),
            Some(Steering::DoNotAnnounceTo(n))
        );
        assert_eq!(CC.decode(Community::new(3356, 42)), None);
    }

    #[test]
    fn default_exports_everywhere() {
        let communities = vec![Community::new(65000, 5)]; // unrelated community
        assert!(CC.allows_export(&communities, NeighborId(1)));
        assert!(CC.allows_export(&communities, NeighborId(2)));
        assert!(CC.allows_export(&[], NeighborId(3)));
    }

    #[test]
    fn whitelist_restricts_to_listed_set() {
        let communities = vec![CC.announce_to(NeighborId(1)), CC.announce_to(NeighborId(3))];
        assert!(CC.allows_export(&communities, NeighborId(1)));
        assert!(!CC.allows_export(&communities, NeighborId(2)));
        assert!(CC.allows_export(&communities, NeighborId(3)));
    }

    #[test]
    fn blacklist_excludes() {
        let communities = vec![CC.do_not_announce_to(NeighborId(2))];
        assert!(CC.allows_export(&communities, NeighborId(1)));
        assert!(!CC.allows_export(&communities, NeighborId(2)));
    }

    #[test]
    fn blacklist_overrides_whitelist() {
        let communities = vec![
            CC.announce_to(NeighborId(2)),
            CC.do_not_announce_to(NeighborId(2)),
        ];
        assert!(!CC.allows_export(&communities, NeighborId(2)));
    }

    #[test]
    fn strip_removes_only_control_namespace() {
        let keep = Community::new(3356, 100);
        let mut communities = vec![
            CC.announce_to(NeighborId(1)),
            keep,
            CC.do_not_announce_to(NeighborId(9)),
        ];
        CC.strip(&mut communities);
        assert_eq!(communities, vec![keep]);
    }

    #[test]
    #[should_panic(expected = "neighbor id out of community range")]
    fn oversized_neighbor_id_panics() {
        CC.announce_to(NeighborId(MAX_NEIGHBOR_ID + 1));
    }
}
