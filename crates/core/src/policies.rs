//! Generated speaker policies — the intent-compiled BIRD filters of the
//! paper's deployment (§5's templating pipeline emits these; here they are
//! constructed programmatically from the same inputs).
//!
//! Internal route tagging: imports stamp each route with a community in the
//! platform's control namespace recording where it was learned
//! (`ASN:20000` from a neighbor, `ASN:20001` from an experiment,
//! `ASN:20002` via the backbone). Export policies dispatch on the tags —
//! e.g. "never export neighbor-learned routes to neighbors" is the
//! platform's no-transit guarantee (§7.4) — and strip the whole control
//! namespace before anything reaches the Internet.

use std::net::{IpAddr, Ipv4Addr};

use peering_bgp::policy::{Action, Match, Policy, Rule, Verdict};
use peering_bgp::types::Community;

use crate::communities::{ControlCommunities, MAX_NEIGHBOR_ID};
use crate::ids::NeighborId;

/// Tag: route learned from an Internet neighbor.
pub fn tag_from_neighbor(platform_asn: u16) -> Community {
    Community::new(platform_asn, 20_000)
}

/// Tag: route announced by an experiment.
pub fn tag_from_experiment(platform_asn: u16) -> Community {
    Community::new(platform_asn, 20_001)
}

/// Tag: route relayed across the backbone mesh.
pub fn tag_via_backbone(platform_asn: u16) -> Community {
    Community::new(platform_asn, 20_002)
}

/// Import policy for a directly-attached neighbor: rewrite the next hop to
/// the neighbor's virtual address (paper Fig. 2a steps 3–4) and tag.
pub fn neighbor_import(platform_asn: u16, vnh_ip: Ipv4Addr) -> Policy {
    Policy::new(
        vec![Rule::transform(
            Match::Any,
            vec![
                Action::SetNextHop(IpAddr::V4(vnh_ip)),
                Action::AddCommunity(tag_from_neighbor(platform_asn)),
            ],
        )],
        Verdict::Reject,
    )
}

/// Export policy toward a neighbor `nbr`: community-steered experiment
/// announcements only (paper §3.2.1), control namespace stripped.
pub fn neighbor_export(cc: &ControlCommunities, nbr: NeighborId) -> Policy {
    let strip = vec![Action::StripCommunitiesOf(cc.platform_asn)];
    Policy::new(
        vec![
            // The platform is not a transit: neighbor-learned routes never
            // go back out to neighbors.
            Rule::reject(Match::HasCommunity(tag_from_neighbor(cc.platform_asn))),
            // Announcement control is per-mux (§3.2.1): a route relayed over
            // the backbone was announced at another PoP's sessions and must
            // not leak out this PoP's neighbors. The backbone carries it for
            // data-plane reachability only.
            Rule::reject(Match::HasCommunity(tag_via_backbone(cc.platform_asn))),
            // Blacklist: experiment said "not this neighbor".
            Rule::reject(Match::HasCommunity(cc.do_not_announce_to(nbr))),
            // Whitelist naming this neighbor: export (stripped).
            Rule::transform(Match::HasCommunity(cc.announce_to(nbr)), strip.clone()),
            // Some other whitelist present: this neighbor is not in the set.
            Rule::reject(Match::HasCommunityInRange {
                high: cc.platform_asn,
                low_min: 0,
                low_max: MAX_NEIGHBOR_ID as u16,
            }),
            // No steering: announce to all neighbors (stripped).
            Rule::transform(Match::Any, strip),
        ],
        Verdict::Reject,
    )
}

/// Import policy for an experiment session (applied after the enforcement
/// engine's interposition): tag the route as experiment-announced.
pub fn experiment_import(platform_asn: u16) -> Policy {
    Policy::new(
        vec![Rule::transform(
            Match::Any,
            vec![Action::AddCommunity(tag_from_experiment(platform_asn))],
        )],
        Verdict::Reject,
    )
}

/// Export policy toward an experiment: every neighbor/backbone route (the
/// ADD-PATH fan-out) but never other experiments' announcements —
/// experiments are isolated from each other (§2.1). Internal tags are
/// removed; neighbor-attached communities pass through as data.
pub fn experiment_export(platform_asn: u16) -> Policy {
    Policy::new(
        vec![
            Rule::reject(Match::HasCommunity(tag_from_experiment(platform_asn))),
            Rule::transform(
                Match::Any,
                vec![
                    Action::RemoveCommunity(tag_from_neighbor(platform_asn)),
                    Action::RemoveCommunity(tag_via_backbone(platform_asn)),
                ],
            ),
        ],
        Verdict::Reject,
    )
}

/// Import policy for a backbone (iBGP mesh) session: map each remote
/// neighbor's global-pool next hop to the local virtual next hop allocated
/// for it (§4.4's hop-by-hop rewrite). Unmapped next hops (remote
/// experiment tunnels) stay global.
pub fn backbone_import(mappings: &[(Ipv4Addr, Ipv4Addr)]) -> Policy {
    let mut rules: Vec<Rule> = mappings
        .iter()
        .map(|(global, local)| {
            Rule::amend(
                Match::NextHopIs(IpAddr::V4(*global)),
                vec![Action::SetNextHop(IpAddr::V4(*local))],
            )
        })
        .collect();
    rules.push(Rule::accept(Match::Any));
    Policy::new(rules, Verdict::Accept)
}

/// Export policy toward a backbone peer: relay everything learned locally
/// (never re-relay backbone routes — the mesh is full), translating local
/// next hops (neighbor vNHs, experiment tunnel addresses) to their
/// global-pool equivalents.
pub fn backbone_export(platform_asn: u16, mappings: &[(Ipv4Addr, Ipv4Addr)]) -> Policy {
    let mut rules = vec![Rule::reject(Match::HasCommunity(tag_via_backbone(
        platform_asn,
    )))];
    for (local, global) in mappings {
        rules.push(Rule::amend(
            Match::NextHopIs(IpAddr::V4(*local)),
            vec![Action::SetNextHop(IpAddr::V4(*global))],
        ));
    }
    rules.push(Rule::transform(
        Match::Any,
        vec![Action::AddCommunity(tag_via_backbone(platform_asn))],
    ));
    Policy::new(rules, Verdict::Reject)
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::attrs::{AsPath, PathAttributes};
    use peering_bgp::rib::{PeerId, Route, RouteSource};
    use peering_bgp::types::{prefix, Asn, Prefix, RouterId};

    const ASN: u16 = 47065;

    fn cc() -> ControlCommunities {
        ControlCommunities::new(ASN)
    }

    fn route(p: Prefix, next_hop: IpAddr, communities: Vec<Community>) -> Route {
        Route {
            prefix: p,
            path_id: 0,
            attrs: PathAttributes {
                as_path: AsPath::from_asns(&[Asn(61574)]),
                next_hop: Some(next_hop),
                communities,
                ..Default::default()
            }
            .into(),
            source: RouteSource::Peer {
                peer: PeerId(0),
                ebgp: true,
                router_id: RouterId(1),
                addr: "10.0.0.1".parse().unwrap(),
            },
            stamp: 0,
        }
    }

    #[test]
    fn neighbor_import_rewrites_and_tags() {
        let policy = neighbor_import(ASN, "127.65.0.1".parse().unwrap());
        let r = route(prefix("192.168.0.0/24"), "1.1.1.1".parse().unwrap(), vec![]);
        let attrs = policy.evaluate(&r).unwrap();
        assert_eq!(attrs.next_hop, Some("127.65.0.1".parse().unwrap()));
        assert!(attrs.has_community(tag_from_neighbor(ASN)));
    }

    #[test]
    fn neighbor_export_no_transit() {
        let policy = neighbor_export(&cc(), NeighborId(1));
        let r = route(
            prefix("192.168.0.0/24"),
            "127.65.0.1".parse().unwrap(),
            vec![tag_from_neighbor(ASN)],
        );
        assert!(
            policy.evaluate(&r).is_none(),
            "neighbor routes never transit"
        );
    }

    #[test]
    fn neighbor_export_steering_matrix() {
        let n1 = NeighborId(1);
        let n2 = NeighborId(2);
        let p1 = neighbor_export(&cc(), n1);
        let p2 = neighbor_export(&cc(), n2);
        let exp_tag = tag_from_experiment(ASN);

        // No steering: exported to both, tags stripped.
        let r = route(
            prefix("184.164.224.0/24"),
            "10.9.0.2".parse().unwrap(),
            vec![exp_tag],
        );
        let a1 = p1.evaluate(&r).unwrap();
        assert!(p2.evaluate(&r).is_some());
        assert!(a1.communities.is_empty(), "control namespace stripped");

        // Whitelist n1: only n1.
        let r = route(
            prefix("184.164.224.0/24"),
            "10.9.0.2".parse().unwrap(),
            vec![exp_tag, cc().announce_to(n1)],
        );
        assert!(p1.evaluate(&r).is_some());
        assert!(p2.evaluate(&r).is_none());

        // Blacklist n2: all but n2.
        let r = route(
            prefix("184.164.224.0/24"),
            "10.9.0.2".parse().unwrap(),
            vec![exp_tag, cc().do_not_announce_to(n2)],
        );
        assert!(p1.evaluate(&r).is_some());
        assert!(p2.evaluate(&r).is_none());
    }

    #[test]
    fn experiment_export_isolates_experiments_and_keeps_data_communities() {
        let policy = experiment_export(ASN);
        // Another experiment's route: rejected.
        let r = route(
            prefix("184.164.226.0/24"),
            "10.9.0.3".parse().unwrap(),
            vec![tag_from_experiment(ASN)],
        );
        assert!(policy.evaluate(&r).is_none());
        // A neighbor route: accepted, internal tags dropped, neighbor's own
        // communities preserved.
        let data_comm = Community::new(3356, 7);
        let r = route(
            prefix("192.168.0.0/24"),
            "127.65.0.1".parse().unwrap(),
            vec![tag_from_neighbor(ASN), data_comm],
        );
        let attrs = policy.evaluate(&r).unwrap();
        assert_eq!(attrs.communities, vec![data_comm]);
    }

    #[test]
    fn backbone_round_trip_mapping() {
        let vnh: Ipv4Addr = "127.65.0.1".parse().unwrap();
        let global: Ipv4Addr = "127.127.0.5".parse().unwrap();
        let export = backbone_export(ASN, &[(vnh, global)]);
        let import = backbone_import(&[(global, vnh)]);

        let r = route(
            prefix("192.168.0.0/24"),
            IpAddr::V4(vnh),
            vec![tag_from_neighbor(ASN)],
        );
        let exported = export.evaluate(&r).unwrap();
        assert_eq!(exported.next_hop, Some(IpAddr::V4(global)));
        assert!(exported.has_community(tag_via_backbone(ASN)));

        // The receiving PoP maps it back to its own local pool address.
        let mut relayed = r.clone();
        relayed.attrs = exported;
        let imported = import.evaluate(&relayed).unwrap();
        assert_eq!(imported.next_hop, Some(IpAddr::V4(vnh)));
    }

    #[test]
    fn backbone_export_refuses_relay_of_backbone_routes() {
        let export = backbone_export(ASN, &[]);
        let r = route(
            prefix("192.168.0.0/24"),
            "127.127.0.9".parse().unwrap(),
            vec![tag_via_backbone(ASN)],
        );
        assert!(export.evaluate(&r).is_none(), "full mesh: no re-relay");
    }

    #[test]
    fn backbone_import_leaves_unmapped_next_hops_global() {
        let import = backbone_import(&[(
            "127.127.0.5".parse().unwrap(),
            "127.65.0.1".parse().unwrap(),
        )]);
        let r = route(
            prefix("184.164.224.0/24"),
            "127.127.1.7".parse().unwrap(), // a remote experiment tunnel
            vec![tag_from_experiment(ASN), tag_via_backbone(ASN)],
        );
        let attrs = import.evaluate(&r).unwrap();
        assert_eq!(attrs.next_hop, Some("127.127.1.7".parse().unwrap()));
    }
}
