//! A fast non-cryptographic hasher for data-plane maps.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, which is DoS-robust
//! but costs ~1ns/byte — noticeable when the key is a 6-byte MAC or a
//! 4-byte IP consulted per packet. Keys here are either platform-assigned
//! (MACs, neighbor ids) or already constrained by enforcement, so a
//! Fx-style multiply-rotate hash is safe and several times faster.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The FxHash multiplier (from Firefox; a.k.a. the golden-ratio constant
/// folded to 64 bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher; processes input a word at a time.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_ne_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_ne_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FastHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Hash one `u32` key directly (flow-cache slot selection).
#[inline]
pub fn hash_u32(v: u32) -> u64 {
    (v as u64).wrapping_mul(SEED).rotate_left(32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_works_like_std() {
        let mut m: FastHashMap<u32, &str> = FastHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.remove(&2), Some("b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn hash_u32_spreads_sequential_keys() {
        // Direct-mapped flow caches index with the low bits; sequential IPs
        // must not collapse onto one slot.
        let mask = 8191;
        let mut slots: Vec<u64> = (0..1024u32).map(|i| hash_u32(i) & mask).collect();
        slots.sort_unstable();
        slots.dedup();
        assert!(slots.len() > 900, "only {} distinct slots", slots.len());
    }
}
