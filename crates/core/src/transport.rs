//! BGP-over-simulated-Ethernet transport.
//!
//! In the paper's deployment BGP runs over TCP between the vBGP router and
//! its neighbors / experiments. In the reproduction, sessions run over
//! simulated Ethernet frames carrying a minimal connection protocol
//! (SYN/SYN-ACK/FIN/DATA) plus the real, byte-exact BGP wire encoding.
//! [`BgpHost`] adapts a sans-IO [`Speaker`] to the event-driven simulator:
//! it owns the per-session endpoints, translates speaker actions into
//! frames and timers, and surfaces structural events to its embedder.
//!
//! Crucially for vBGP, a session can be marked **interposed**: its decoded
//! UPDATEs are handed to the embedder instead of the speaker, which is how
//! the control-plane enforcement engine sits in the BGP pipeline exactly
//! like the paper's ExaBGP process (§3.3). The embedder re-injects the
//! compliant subset via [`BgpHost::deliver`].

use std::collections::{HashMap, HashSet};

use peering_bgp::fsm::TimerKind;
use peering_bgp::message::{CodecError, Message, UpdateMsg};
use peering_bgp::rib::{PeerId, Route};
use peering_bgp::speaker::{PeerConfig, Speaker, SpeakerEvent, SpeakerOutput};
use peering_bgp::types::{PathId, Prefix};
use peering_netsim::{Ctx, EtherFrame, EtherType, MacAddr, PortId, SimDuration};
use peering_obs::{EventKind as ObsEvent, Obs};

/// EtherType used for the simulated BGP transport.
pub const ETHERTYPE_BGP: EtherType = EtherType::Other(0x0B69);

const OP_SYN: u8 = 0;
const OP_SYNACK: u8 = 1;
const OP_FIN: u8 = 2;
const OP_DATA: u8 = 3;

/// High bit marking a timer token as owned by the BGP transport (the
/// embedding node may use the rest of the token space freely).
pub const BGP_TIMER_BIT: u64 = 1 << 63;

/// Where a session's frames go.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Endpoint {
    /// The simulator port this session uses.
    pub port: PortId,
    /// Our MAC on that port.
    pub local_mac: MacAddr,
    /// The peer's MAC.
    pub remote_mac: MacAddr,
}

/// Structural events surfaced to the embedding node.
#[derive(Debug, Clone, PartialEq)]
pub enum HostEvent {
    /// Session reached Established.
    SessionUp(PeerId),
    /// Session went down.
    SessionDown(PeerId, &'static str),
    /// A route entered the Adj-RIB-In.
    RouteLearned(PeerId, Route),
    /// A route left the Adj-RIB-In.
    RouteWithdrawn(PeerId, Prefix, PathId),
    /// A decoded UPDATE from an **interposed** session, awaiting the
    /// embedder's enforcement decision (paper §3.3).
    InterposedUpdate(PeerId, UpdateMsg),
}

/// The transport adapter around a [`Speaker`].
pub struct BgpHost {
    /// The BGP engine.
    pub speaker: Speaker,
    endpoints: HashMap<PeerId, Endpoint>,
    by_addr: HashMap<(PortId, MacAddr), PeerId>,
    timer_gen: HashMap<(PeerId, u8), u64>,
    interposed: HashSet<PeerId>,
    rx_buf: HashMap<PeerId, Vec<u8>>,
    transport_up: HashSet<PeerId>,
    /// Next sequence number to send / expect per session. Real BGP rides
    /// TCP, which either delivers the byte stream intact or kills the
    /// connection; these counters give the frame transport the same
    /// property. A gap (lost or reordered frame) resets the connection, so
    /// a session can never silently diverge from its peer — it dies and
    /// resynchronizes through the FSM instead.
    tx_seq: HashMap<PeerId, u32>,
    rx_seq: HashMap<PeerId, u32>,
    /// Counters.
    pub stats: TransportStats,
    obs: Obs,
}

/// Transport counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct TransportStats {
    /// Connections reset after a sequence gap (a frame lost or reordered
    /// under the byte stream).
    pub gap_resets: u64,
    /// Connections reset after an undecodable BGP message on an
    /// interposed session.
    pub decode_resets: u64,
}

fn timer_kind_index(kind: TimerKind) -> u8 {
    match kind {
        TimerKind::ConnectRetry => 0,
        TimerKind::Hold => 1,
        TimerKind::Keepalive => 2,
        TimerKind::StaleSweep => 3,
    }
}

fn timer_kind_from_index(idx: u8) -> Option<TimerKind> {
    match idx {
        0 => Some(TimerKind::ConnectRetry),
        1 => Some(TimerKind::Hold),
        2 => Some(TimerKind::Keepalive),
        3 => Some(TimerKind::StaleSweep),
        _ => None,
    }
}

/// Timer-token layout: bit 63 the ownership flag, bits 39..63 the peer
/// id, bits 37..39 the timer kind, bits 0..37 the arm generation.
///
/// The generation field must be wide. Hold timers are re-armed on every
/// received message and stale arms are only *invalidated*, never
/// cancelled — each one stays queued in the simulator for its full 90 s.
/// A full-table feed re-arms a session's hold timer millions of times,
/// so a 16-bit generation wraps while stale timers are still queued and
/// a 90-second-old hold expiry fires with a colliding generation,
/// killing a perfectly live session. 37 bits needs ~10^11 re-arms to
/// wrap within one hold interval.
const GEN_MASK: u64 = (1 << 37) - 1;

fn encode_token(peer: PeerId, kind: TimerKind, gen: u64) -> u64 {
    BGP_TIMER_BIT
        | ((peer.0 as u64) << 39)
        | ((timer_kind_index(kind) as u64) << 37)
        | (gen & GEN_MASK)
}

impl BgpHost {
    /// Wrap a speaker.
    pub fn new(speaker: Speaker) -> Self {
        BgpHost {
            speaker,
            endpoints: HashMap::new(),
            by_addr: HashMap::new(),
            timer_gen: HashMap::new(),
            interposed: HashSet::new(),
            rx_buf: HashMap::new(),
            transport_up: HashSet::new(),
            tx_seq: HashMap::new(),
            rx_seq: HashMap::new(),
            stats: TransportStats::default(),
            obs: Obs::new(),
        }
    }

    /// Attach a shared observability handle and cascade it to the speaker.
    pub fn set_obs(&mut self, obs: Obs) {
        self.speaker.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Mirror transport counters into the registry and cascade to the
    /// speaker's own mirror.
    pub fn publish_obs(&self) {
        self.obs
            .counter("transport.gap_resets")
            .set(self.stats.gap_resets);
        self.obs
            .counter("transport.decode_resets")
            .set(self.stats.decode_resets);
        self.speaker.publish_obs();
    }

    /// Register a session: speaker peer config plus its transport endpoint.
    /// `interposed` routes the session's UPDATEs through the embedder.
    pub fn add_session(
        &mut self,
        id: PeerId,
        cfg: PeerConfig,
        endpoint: Endpoint,
        interposed: bool,
    ) {
        self.speaker.add_peer(id, cfg);
        self.by_addr
            .insert((endpoint.port, endpoint.remote_mac), id);
        self.endpoints.insert(id, endpoint);
        if interposed {
            self.interposed.insert(id);
        }
    }

    /// Remove a session entirely.
    pub fn remove_session(&mut self, ctx: &mut Ctx<'_>, id: PeerId) -> Vec<HostEvent> {
        let mut events = Vec::new();
        if let Some(ep) = self.endpoints.remove(&id) {
            self.by_addr.remove(&(ep.port, ep.remote_mac));
            self.send_op(ctx, &ep, OP_FIN, &[]);
        }
        self.interposed.remove(&id);
        self.rx_buf.remove(&id);
        self.transport_up.remove(&id);
        self.tx_seq.remove(&id);
        self.rx_seq.remove(&id);
        let (_, out) = self.speaker.remove_peer(id);
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Whether a session is interposed.
    pub fn is_interposed(&self, id: PeerId) -> bool {
        self.interposed.contains(&id)
    }

    /// The endpoint of a session.
    pub fn endpoint(&self, id: PeerId) -> Option<Endpoint> {
        self.endpoints.get(&id).copied()
    }

    /// The session using `(port, remote_mac)`, if any.
    pub fn session_at(&self, port: PortId, remote_mac: MacAddr) -> Option<PeerId> {
        self.by_addr.get(&(port, remote_mac)).copied()
    }

    /// Start a session (active or passive per its config).
    pub fn start(&mut self, ctx: &mut Ctx<'_>, id: PeerId) -> Vec<HostEvent> {
        let mut events = Vec::new();
        let out = self.speaker.start_peer(id);
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Stop a session gracefully.
    pub fn stop(&mut self, ctx: &mut Ctx<'_>, id: PeerId) -> Vec<HostEvent> {
        let mut events = Vec::new();
        let out = self.speaker.stop_peer(id);
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Whether a timer token belongs to this transport.
    pub fn owns_timer(token: u64) -> bool {
        token & BGP_TIMER_BIT != 0
    }

    /// Handle a timer previously armed by this host.
    pub fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) -> Vec<HostEvent> {
        let mut events = Vec::new();
        if !Self::owns_timer(token) {
            return events;
        }
        let peer = PeerId(((token >> 39) & 0xff_ffff) as u32);
        let Some(kind) = timer_kind_from_index(((token >> 37) & 0x3) as u8) else {
            return events;
        };
        let gen = token & GEN_MASK;
        let current = self
            .timer_gen
            .get(&(peer, timer_kind_index(kind)))
            .map(|g| g & GEN_MASK);
        if current != Some(gen) {
            return events; // stale timer
        }
        let out = self.speaker.on_timer(peer, kind);
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Handle a frame; returns structural events. Non-BGP frames yield no
    /// events (`handled == false` via returning `None`).
    pub fn on_frame(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        frame: &EtherFrame,
    ) -> Option<Vec<HostEvent>> {
        if frame.ethertype != ETHERTYPE_BGP {
            return None;
        }
        let mut events = Vec::new();
        let Some(&peer) = self.by_addr.get(&(port, frame.src)) else {
            // Unknown speaker on this segment: ignore (frames to the IXP
            // fabric reach every member).
            return Some(events);
        };
        let Some((&op, data)) = frame.payload.split_first() else {
            return Some(events);
        };
        match op {
            OP_SYN | OP_SYNACK => {
                if op == OP_SYN {
                    let ep = self.endpoints[&peer];
                    self.send_op(ctx, &ep, OP_SYNACK, &[]);
                }
                if self.transport_up.insert(peer) {
                    // The handshake that actually brings the transport up
                    // begins a fresh byte stream on both directions. A
                    // duplicate SYN on an already-up transport (e.g. from
                    // simultaneous open) must NOT reset the counters — the
                    // stream it belongs to is the one already running.
                    self.tx_seq.insert(peer, 0);
                    self.rx_seq.insert(peer, 0);
                    self.rx_buf.remove(&peer);
                    let out = self.speaker.on_transport_up(peer);
                    self.handle_output(ctx, out, &mut events);
                }
            }
            OP_FIN if self.transport_up.remove(&peer) => {
                self.rx_buf.remove(&peer);
                let out = self.speaker.on_transport_down(peer);
                self.handle_output(ctx, out, &mut events);
            }
            OP_DATA => {
                if data.len() < 4 {
                    return Some(events);
                }
                let (seq_bytes, payload) = data.split_at(4);
                let seq = u32::from_be_bytes(seq_bytes.try_into().expect("4 bytes"));
                let expected = self.rx_seq.get(&peer).copied().unwrap_or(0);
                if seq < expected {
                    // A stale duplicate; the stream already moved past it.
                    return Some(events);
                }
                if seq > expected {
                    // A frame went missing or arrived out of order. TCP
                    // would retransmit or kill the connection; the frame
                    // transport has no retransmission, so reset — the FSM
                    // reconnects (with backoff) and resynchronizes rather
                    // than silently diverging from its peer.
                    self.stats.gap_resets += 1;
                    self.obs.record(ObsEvent::TransportReset {
                        peer: peer.0,
                        reason: "sequence-gap",
                    });
                    self.reset_transport(ctx, peer, &mut events);
                    return Some(events);
                }
                self.rx_seq.insert(peer, expected.wrapping_add(1));
                if self.interposed.contains(&peer) {
                    self.on_interposed_bytes(ctx, peer, payload, &mut events);
                } else {
                    let out = self.speaker.on_bytes(peer, payload);
                    self.handle_output(ctx, out, &mut events);
                }
            }
            _ => {}
        }
        Some(events)
    }

    /// Decode interposed bytes: UPDATEs go to the embedder, everything else
    /// (OPEN, KEEPALIVE, NOTIFICATION…) feeds the speaker directly.
    fn on_interposed_bytes(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer: PeerId,
        data: &[u8],
        events: &mut Vec<HostEvent>,
    ) {
        let buf = self.rx_buf.entry(peer).or_default();
        buf.extend_from_slice(data);
        loop {
            let ctx_codec = self.speaker.codec_ctx(peer);
            let buf = self.rx_buf.entry(peer).or_default();
            match Message::decode(buf, &ctx_codec) {
                Ok((msg, used)) => {
                    buf.drain(..used);
                    match msg {
                        Message::Update(update) => {
                            events.push(HostEvent::InterposedUpdate(peer, update));
                        }
                        other => {
                            let wire = other.encode(&ctx_codec);
                            let out = self.speaker.on_bytes(peer, &wire);
                            self.handle_output(ctx, out, events);
                        }
                    }
                }
                Err(CodecError::Truncated) => break,
                Err(_) => {
                    buf.clear();
                    self.stats.decode_resets += 1;
                    self.obs.record(ObsEvent::TransportReset {
                        peer: peer.0,
                        reason: "decode-error",
                    });
                    let out = self.speaker.on_transport_down(peer);
                    self.handle_output(ctx, out, events);
                    break;
                }
            }
        }
    }

    /// Inject an (enforcement-approved) UPDATE into the speaker as if it
    /// had arrived on the session — the ExaBGP "announce compliant routes
    /// back to the router" step.
    pub fn deliver(
        &mut self,
        ctx: &mut Ctx<'_>,
        peer: PeerId,
        update: UpdateMsg,
    ) -> Vec<HostEvent> {
        let mut events = Vec::new();
        let codec = self.speaker.codec_ctx(peer);
        let wire = Message::Update(update).encode(&codec);
        let out = self.speaker.on_bytes(peer, &wire);
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Send a raw UPDATE toward a specific peer (vBGP steering).
    pub fn advertise_raw(&mut self, ctx: &mut Ctx<'_>, peer: PeerId, update: UpdateMsg) {
        let mut events = Vec::new();
        let out = self.speaker.advertise_raw(peer, update);
        self.handle_output(ctx, out, &mut events);
    }

    /// Apply a speaker output produced outside this host (e.g. after
    /// calling a speaker method directly).
    pub fn apply(&mut self, ctx: &mut Ctx<'_>, out: SpeakerOutput) -> Vec<HostEvent> {
        let mut events = Vec::new();
        self.handle_output(ctx, out, &mut events);
        events
    }

    /// Tear a session's transport down after a sequence gap: notify the
    /// peer (best effort, like a RST) and let the speaker's FSM retry.
    fn reset_transport(&mut self, ctx: &mut Ctx<'_>, peer: PeerId, events: &mut Vec<HostEvent>) {
        if let Some(ep) = self.endpoints.get(&peer).copied() {
            self.send_op(ctx, &ep, OP_FIN, &[]);
        }
        self.transport_up.remove(&peer);
        self.rx_buf.remove(&peer);
        let out = self.speaker.on_transport_down(peer);
        self.handle_output(ctx, out, events);
    }

    fn send_op(&self, ctx: &mut Ctx<'_>, ep: &Endpoint, op: u8, data: &[u8]) {
        let mut payload = Vec::with_capacity(1 + data.len());
        payload.push(op);
        payload.extend_from_slice(data);
        ctx.send_frame(
            ep.port,
            EtherFrame::new(ep.remote_mac, ep.local_mac, ETHERTYPE_BGP, payload.into()),
        );
    }

    fn handle_output(
        &mut self,
        ctx: &mut Ctx<'_>,
        out: SpeakerOutput,
        events: &mut Vec<HostEvent>,
    ) {
        for (peer, bytes) in out.send {
            if let Some(ep) = self.endpoints.get(&peer).copied() {
                let seq = self.tx_seq.entry(peer).or_insert(0);
                let mut payload = Vec::with_capacity(5 + bytes.len());
                payload.push(OP_DATA);
                payload.extend_from_slice(&seq.to_be_bytes());
                *seq = seq.wrapping_add(1);
                payload.extend_from_slice(&bytes);
                ctx.send_frame(
                    ep.port,
                    EtherFrame::new(ep.remote_mac, ep.local_mac, ETHERTYPE_BGP, payload.into()),
                );
            }
        }
        for ev in out.events {
            match ev {
                SpeakerEvent::TransportOpen(peer) => {
                    self.tx_seq.insert(peer, 0);
                    self.rx_seq.insert(peer, 0);
                    if let Some(ep) = self.endpoints.get(&peer).copied() {
                        self.send_op(ctx, &ep, OP_SYN, &[]);
                    }
                }
                SpeakerEvent::TransportClose(peer) => {
                    if self.transport_up.remove(&peer) {
                        if let Some(ep) = self.endpoints.get(&peer).copied() {
                            self.send_op(ctx, &ep, OP_FIN, &[]);
                        }
                    }
                    self.rx_buf.remove(&peer);
                    self.tx_seq.remove(&peer);
                    self.rx_seq.remove(&peer);
                }
                SpeakerEvent::ArmTimer(peer, kind, secs) => {
                    let gen = self
                        .timer_gen
                        .entry((peer, timer_kind_index(kind)))
                        .or_insert(0);
                    *gen = gen.wrapping_add(1);
                    ctx.set_timer(
                        SimDuration::from_secs(secs as u64),
                        encode_token(peer, kind, *gen),
                    );
                }
                SpeakerEvent::StopTimer(peer, kind) => {
                    // Invalidate by bumping the generation.
                    let gen = self
                        .timer_gen
                        .entry((peer, timer_kind_index(kind)))
                        .or_insert(0);
                    *gen = gen.wrapping_add(1);
                }
                SpeakerEvent::SessionUp(peer) => events.push(HostEvent::SessionUp(peer)),
                SpeakerEvent::SessionDown(peer, reason) => {
                    events.push(HostEvent::SessionDown(peer, reason))
                }
                SpeakerEvent::RouteLearned(peer, route) => {
                    events.push(HostEvent::RouteLearned(peer, route))
                }
                SpeakerEvent::RouteWithdrawn(peer, prefix, path_id) => {
                    events.push(HostEvent::RouteWithdrawn(peer, prefix, path_id))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::attrs::PathAttributes;
    use peering_bgp::speaker::SpeakerConfig;
    use peering_bgp::types::{prefix, Asn, RouterId};
    use peering_netsim::{LinkConfig, Node, Simulator};

    /// A plain BGP speaker node for tests: collects host events.
    struct SpeakerNode {
        host: BgpHost,
        events: Vec<HostEvent>,
    }

    impl Node for SpeakerNode {
        fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame) {
            if let Some(evs) = self.host.on_frame(ctx, port, &frame) {
                self.events.extend(evs);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
            let evs = self.host.on_timer(ctx, token);
            self.events.extend(evs);
        }
    }

    fn mk_speaker(asn: u32, id: u32) -> Speaker {
        Speaker::new(SpeakerConfig {
            asn: Asn(asn),
            router_id: RouterId(id),
        })
    }

    fn setup(interpose_b: bool) -> (Simulator, peering_netsim::NodeId, peering_netsim::NodeId) {
        let mut sim = Simulator::new(11);
        let mac_a = MacAddr::from_id(1);
        let mac_b = MacAddr::from_id(2);
        let mut host_a = BgpHost::new(mk_speaker(100, 1));
        let mut host_b = BgpHost::new(mk_speaker(200, 2));
        host_a.add_session(
            PeerId(0),
            PeerConfig::ebgp(
                Asn(200),
                "10.0.0.2".parse().unwrap(),
                "10.0.0.1".parse().unwrap(),
            ),
            Endpoint {
                port: PortId(0),
                local_mac: mac_a,
                remote_mac: mac_b,
            },
            false,
        );
        host_b.add_session(
            PeerId(0),
            PeerConfig::ebgp(
                Asn(100),
                "10.0.0.1".parse().unwrap(),
                "10.0.0.2".parse().unwrap(),
            )
            .with_passive(),
            Endpoint {
                port: PortId(0),
                local_mac: mac_b,
                remote_mac: mac_a,
            },
            interpose_b,
        );
        let a = sim.add_node(Box::new(SpeakerNode {
            host: host_a,
            events: Vec::new(),
        }));
        let b = sim.add_node(Box::new(SpeakerNode {
            host: host_b,
            events: Vec::new(),
        }));
        sim.connect(a, PortId(0), b, PortId(0), LinkConfig::default());
        sim.with_node_ctx::<SpeakerNode, _>(b, |node, ctx| {
            let evs = node.host.start(ctx, PeerId(0));
            node.events.extend(evs);
        });
        sim.with_node_ctx::<SpeakerNode, _>(a, |node, ctx| {
            let evs = node.host.start(ctx, PeerId(0));
            node.events.extend(evs);
        });
        (sim, a, b)
    }

    #[test]
    fn sessions_establish_over_simulated_ethernet() {
        let (mut sim, a, b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        let node_a = sim.node::<SpeakerNode>(a).unwrap();
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(node_a.host.speaker.is_established(PeerId(0)));
        assert!(node_b.host.speaker.is_established(PeerId(0)));
        assert!(node_a.events.contains(&HostEvent::SessionUp(PeerId(0))));
    }

    #[test]
    fn routes_flow_and_events_surface() {
        let (mut sim, a, b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        sim.with_node_ctx::<SpeakerNode, _>(a, |node, ctx| {
            let out = node.host.speaker.originate(
                prefix("184.164.224.0/24"),
                PathAttributes::originated("10.0.0.1".parse().unwrap()),
            );
            let evs = node.host.apply(ctx, out);
            node.events.extend(evs);
        });
        sim.run_for(SimDuration::from_secs(1));
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(node_b
            .host
            .speaker
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .is_some());
        assert!(node_b
            .events
            .iter()
            .any(|e| matches!(e, HostEvent::RouteLearned(_, _))));
    }

    #[test]
    fn interposed_session_surfaces_updates_instead_of_feeding_speaker() {
        let (mut sim, a, b) = setup(true);
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim
            .node::<SpeakerNode>(b)
            .unwrap()
            .host
            .speaker
            .is_established(PeerId(0)));
        sim.with_node_ctx::<SpeakerNode, _>(a, |node, ctx| {
            let out = node.host.speaker.originate(
                prefix("184.164.224.0/24"),
                PathAttributes::originated("10.0.0.1".parse().unwrap()),
            );
            node.host.apply(ctx, out);
        });
        sim.run_for(SimDuration::from_secs(1));
        // b's speaker did NOT import the route...
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(node_b
            .host
            .speaker
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .is_none());
        // ...but the embedder saw the update.
        let update = node_b
            .events
            .iter()
            .find_map(|e| match e {
                HostEvent::InterposedUpdate(_, u) if !u.is_end_of_rib() => Some(u.clone()),
                _ => None,
            })
            .expect("interposed update surfaced");
        // Re-inject it (enforcement approved) and confirm import.
        sim.with_node_ctx::<SpeakerNode, _>(b, |node, ctx| {
            node.host.deliver(ctx, PeerId(0), update);
        });
        sim.run_for(SimDuration::from_secs(1));
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(node_b
            .host
            .speaker
            .loc_rib()
            .best(&prefix("184.164.224.0/24"))
            .is_some());
    }

    #[test]
    fn hold_timer_recovers_session_after_silence() {
        let (mut sim, a, _b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        // Keepalives keep the session alive well past the hold time.
        sim.run_for(SimDuration::from_secs(300));
        let node_a = sim.node::<SpeakerNode>(a).unwrap();
        assert!(node_a.host.speaker.is_established(PeerId(0)));
        assert!(!node_a
            .events
            .iter()
            .any(|e| matches!(e, HostEvent::SessionDown(_, _))));
    }

    #[test]
    fn remove_session_sends_fin_and_peer_recovers_to_idle() {
        let (mut sim, a, b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        sim.with_node_ctx::<SpeakerNode, _>(a, |node, ctx| {
            let evs = node.host.remove_session(ctx, PeerId(0));
            node.events.extend(evs);
        });
        sim.run_for(SimDuration::from_secs(1));
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(!node_b.host.speaker.is_established(PeerId(0)));
        assert!(node_b
            .events
            .iter()
            .any(|e| matches!(e, HostEvent::SessionDown(_, _))));
    }

    #[test]
    fn sequence_gap_resets_and_session_recovers() {
        let (mut sim, a, b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        assert!(sim
            .node::<SpeakerNode>(b)
            .unwrap()
            .host
            .speaker
            .is_established(PeerId(0)));
        // Forge a DATA frame from a with a future sequence number, as if
        // the frames in between were lost on the wire.
        let mut payload = vec![OP_DATA];
        payload.extend_from_slice(&99u32.to_be_bytes());
        payload.extend_from_slice(&[0u8; 19]);
        sim.with_node_ctx::<SpeakerNode, _>(b, |node, ctx| {
            let frame = EtherFrame::new(
                MacAddr::from_id(2),
                MacAddr::from_id(1),
                ETHERTYPE_BGP,
                payload.into(),
            );
            let evs = node.host.on_frame(ctx, PortId(0), &frame).unwrap();
            node.events.extend(evs);
        });
        let node_b = sim.node::<SpeakerNode>(b).unwrap();
        assert!(!node_b.host.speaker.is_established(PeerId(0)));
        assert!(node_b
            .events
            .iter()
            .any(|e| matches!(e, HostEvent::SessionDown(_, _))));
        // The gap acted like a connection reset: the peer saw the FIN and
        // both sides re-establish through the FSM's retry path.
        sim.run_for(SimDuration::from_secs(120));
        assert!(sim
            .node::<SpeakerNode>(a)
            .unwrap()
            .host
            .speaker
            .is_established(PeerId(0)));
        assert!(sim
            .node::<SpeakerNode>(b)
            .unwrap()
            .host
            .speaker
            .is_established(PeerId(0)));
    }

    #[test]
    fn timer_token_roundtrip() {
        let token = encode_token(PeerId(0xabcd), TimerKind::Hold, 7);
        assert!(BgpHost::owns_timer(token));
        assert_eq!(((token >> 39) & 0xff_ffff) as u32, 0xabcd);
        assert_eq!(((token >> 37) & 0x3) as u8, 1);
        assert_eq!(token & GEN_MASK, 7);
        assert!(!BgpHost::owns_timer(42));
    }

    #[test]
    fn timer_generations_distinct_beyond_u16() {
        // Regression: hold timers are re-armed per received message and a
        // full-table feed re-arms them >65 536 times while stale arms are
        // still queued. Generations one u16-wrap apart must NOT collide.
        let a = encode_token(PeerId(3), TimerKind::Hold, 5);
        let b = encode_token(PeerId(3), TimerKind::Hold, 5 + (1 << 16));
        assert_ne!(a, b);
        // Still distinct a few billion arms later.
        let c = encode_token(PeerId(3), TimerKind::Hold, 5 + (1 << 32));
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn session_survives_u16_generation_wrap_of_hold_timer() {
        // Regression for a live-session kill at full-DFZ scale: 65 536
        // hold re-arms in one burst leave 65 536 stale 90 s timers
        // queued; with a 16-bit generation the current counter wraps to
        // meet one of them, the stale expiry is taken as genuine, and an
        // actively-trafficked session dies. Drive exactly that shape:
        // one burst of arms, then normal keepalive traffic across the
        // 90 s mark where the stale burst fires.
        let (mut sim, a, _b) = setup(false);
        sim.run_for(SimDuration::from_secs(2));
        sim.with_node_ctx::<SpeakerNode, _>(a, |node, ctx| {
            let mut out = SpeakerOutput::default();
            for _ in 0..(1 << 16) {
                out.events
                    .push(SpeakerEvent::ArmTimer(PeerId(0), TimerKind::Hold, 90));
            }
            let evs = node.host.apply(ctx, out);
            node.events.extend(evs);
        });
        // Cross t+90 s, when the burst's stale timers all fire. Keepalives
        // continue to re-arm legitimately throughout.
        sim.run_for(SimDuration::from_secs(120));
        let node_a = sim.node::<SpeakerNode>(a).unwrap();
        assert!(
            node_a.host.speaker.is_established(PeerId(0)),
            "stale hold timer from a wrapped generation killed a live session"
        );
        assert!(!node_a
            .events
            .iter()
            .any(|e| matches!(e, HostEvent::SessionDown(_, _))));
    }
}
