//! Identifiers shared across the vBGP stack.

use std::fmt;

/// A BGP neighbor of a vBGP router (a transit, bilateral peer, route server
/// or another PoP's neighbor reached over the backbone).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NeighborId(pub u32);

/// An approved experiment on the platform.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ExperimentId(pub u32);

/// A PEERING point of presence.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PopId(pub u32);

impl fmt::Display for NeighborId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "nbr{}", self.0)
    }
}

impl fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "exp{}", self.0)
    }
}

impl fmt::Display for PopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pop{}", self.0)
    }
}
