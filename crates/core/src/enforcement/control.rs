//! Control-plane enforcement (paper §3.3 "Control plane enforcement" and
//! §4.7 "Policing rate" / "Policing content" / "Capability framework").
//!
//! The engine receives every route announced by an experiment, evaluates it
//! against the experiment's allocations and capabilities plus the
//! platform-wide rate limits, and passes only compliant routes onward. It
//! keeps persistent state (the update-rate ledger) and can be shared across
//! PoPs to enforce AS-wide policies (§3.3's "state can be synchronized
//! among vBGP instances"). When overloaded it fails closed, blocking all
//! experimental announcements rather than risking the Internet (§4.7).

use std::collections::HashMap;
use std::sync::Arc;

use peering_bgp::attrs::PathAttributes;
use peering_bgp::message::UpdateMsg;
use peering_bgp::types::{Asn, Prefix};
use peering_netsim::SimTime;
use std::sync::Mutex;

use crate::capability::{CapabilityKind, CapabilitySet};
use crate::communities::ControlCommunities;
use crate::ids::{ExperimentId, PopId};

/// PEERING's published update-rate limit: 144 updates/day per prefix and
/// PoP pair — one every 10 minutes on average (§4.7).
pub const UPDATES_PER_DAY_LIMIT: u32 = 144;

const SECS_PER_DAY: u64 = 86_400;

/// Why an announcement (or part of one) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rejection {
    /// The engine is overloaded / unconfigured for this experiment:
    /// fail closed.
    FailClosed,
    /// Prefix is not part of the experiment's allocation (hijack
    /// prevention).
    NotAllocated,
    /// The route does not originate from one of the experiment's ASNs.
    BadOriginAsn,
    /// Empty AS path (cannot attribute the announcement).
    EmptyAsPath,
    /// Foreign ASNs in the path without the poisoning capability, or more
    /// than the granted limit.
    PoisoningNotAllowed,
    /// Providing transit (re-announcing learned routes) without the
    /// capability.
    TransitNotAllowed,
    /// Non-control communities attached without (or beyond) the communities
    /// capability.
    CommunitiesNotAllowed,
    /// Unknown/optional-transitive attributes without the capability.
    TransitiveAttrsNotAllowed,
    /// 6to4 space without the 6to4 capability.
    SixToFourNotAllowed,
    /// Per-(prefix, PoP) update budget exhausted.
    RateLimited,
}

impl Rejection {
    /// Stable kebab-case reason code (journal events, metric labels).
    pub fn code(self) -> &'static str {
        match self {
            Rejection::FailClosed => "fail-closed",
            Rejection::NotAllocated => "not-allocated",
            Rejection::BadOriginAsn => "bad-origin-asn",
            Rejection::EmptyAsPath => "empty-as-path",
            Rejection::PoisoningNotAllowed => "poisoning-not-allowed",
            Rejection::TransitNotAllowed => "transit-not-allowed",
            Rejection::CommunitiesNotAllowed => "communities-not-allowed",
            Rejection::TransitiveAttrsNotAllowed => "transitive-attrs-not-allowed",
            Rejection::SixToFourNotAllowed => "6to4-not-allowed",
            Rejection::RateLimited => "rate-limited",
        }
    }
}

/// What the platform knows about one approved experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentPolicy {
    /// Prefixes allocated to the experiment (announcements must fall within
    /// one of them).
    pub allocations: Vec<Prefix>,
    /// ASNs the experiment is authorized to originate from.
    pub asns: Vec<Asn>,
    /// Granted capabilities.
    pub caps: CapabilitySet,
}

/// The shared, platform-wide update-rate ledger. One per platform, shared
/// by every PoP's enforcer (AS-wide policy).
#[derive(Debug, Default)]
pub struct RateLedger {
    counts: HashMap<(ExperimentId, Prefix, PopId, u64), u32>,
}

impl RateLedger {
    /// Record one update; returns `false` if the daily budget is exceeded.
    fn charge(&mut self, exp: ExperimentId, prefix: Prefix, pop: PopId, now: SimTime) -> bool {
        let day = now.as_secs() / SECS_PER_DAY;
        let count = self.counts.entry((exp, prefix, pop, day)).or_insert(0);
        if *count >= UPDATES_PER_DAY_LIMIT {
            return false;
        }
        *count += 1;
        true
    }

    /// Drop buckets older than the current day (housekeeping).
    pub fn prune(&mut self, now: SimTime) {
        let day = now.as_secs() / SECS_PER_DAY;
        self.counts.retain(|(_, _, _, d), _| *d >= day);
    }

    /// Updates consumed today for a (prefix, PoP) pair.
    pub fn used_today(&self, exp: ExperimentId, prefix: Prefix, pop: PopId, now: SimTime) -> u32 {
        let day = now.as_secs() / SECS_PER_DAY;
        self.counts
            .get(&(exp, prefix, pop, day))
            .copied()
            .unwrap_or(0)
    }
}

/// Counters for the enforcement pipeline.
#[derive(Debug, Clone, Default)]
pub struct ControlStats {
    /// NLRI entries evaluated (announcements + withdrawals).
    pub evaluated: u64,
    /// Entries accepted.
    pub accepted: u64,
    /// Rejection counts by reason.
    pub rejected: HashMap<Rejection, u64>,
}

/// The control-plane enforcement engine for one PoP.
pub struct ControlEnforcer {
    pop: PopId,
    control: ControlCommunities,
    experiments: HashMap<ExperimentId, ExperimentPolicy>,
    ledger: Arc<Mutex<RateLedger>>,
    /// When set, every announcement is rejected (overload → fail closed).
    pub fail_closed: bool,
    /// Pipeline counters.
    pub stats: ControlStats,
}

/// 6to4 space: 2002::/16.
fn is_6to4(prefix: &Prefix) -> bool {
    match prefix {
        Prefix::V6 { addr, .. } => addr.octets()[0] == 0x20 && addr.octets()[1] == 0x02,
        Prefix::V4 { .. } => false,
    }
}

impl ControlEnforcer {
    /// Build an enforcer for a PoP, sharing the platform-wide rate ledger.
    pub fn new(pop: PopId, control: ControlCommunities, ledger: Arc<Mutex<RateLedger>>) -> Self {
        ControlEnforcer {
            pop,
            control,
            experiments: HashMap::new(),
            ledger,
            fail_closed: false,
            stats: ControlStats::default(),
        }
    }

    /// Convenience: an enforcer with its own private ledger (single-PoP
    /// deployments and tests).
    pub fn standalone(pop: PopId, control: ControlCommunities) -> Self {
        Self::new(pop, control, Arc::new(Mutex::new(RateLedger::default())))
    }

    /// Register (or update) an experiment's policy.
    pub fn set_experiment(&mut self, exp: ExperimentId, policy: ExperimentPolicy) {
        self.experiments.insert(exp, policy);
    }

    /// Remove an experiment (end of its allocation).
    pub fn remove_experiment(&mut self, exp: ExperimentId) {
        self.experiments.remove(&exp);
    }

    /// Whether an experiment has a registered policy.
    pub fn has_experiment(&self, exp: ExperimentId) -> bool {
        self.experiments.contains_key(&exp)
    }

    /// Access the shared ledger (for inspection / pruning).
    pub fn ledger(&self) -> Arc<Mutex<RateLedger>> {
        Arc::clone(&self.ledger)
    }

    fn reject(&mut self, reason: Rejection) {
        *self.stats.rejected.entry(reason).or_insert(0) += 1;
    }

    fn check_prefix_ownership(policy: &ExperimentPolicy, prefix: &Prefix) -> Result<(), Rejection> {
        if policy.allocations.iter().any(|a| a.contains(prefix)) {
            return Ok(());
        }
        if is_6to4(prefix) {
            if policy.caps.allows(CapabilityKind::Announce6to4) {
                return Ok(());
            }
            return Err(Rejection::SixToFourNotAllowed);
        }
        Err(Rejection::NotAllocated)
    }

    fn check_attrs(
        &self,
        policy: &ExperimentPolicy,
        attrs: &PathAttributes,
    ) -> Result<(), Rejection> {
        // Origin attribution.
        let Some(origin) = attrs.as_path.origin_as() else {
            return Err(Rejection::EmptyAsPath);
        };
        let origin_owned = policy.asns.contains(&origin);
        let transit = policy.caps.allows(CapabilityKind::ProvideTransit);
        if !origin_owned && !transit {
            return Err(Rejection::BadOriginAsn);
        }
        // Foreign ASNs in the path = poisoning (unless providing transit).
        if !transit {
            let mut foreign: Vec<Asn> = attrs
                .as_path
                .asns()
                .into_iter()
                .filter(|a| !policy.asns.contains(a))
                .collect();
            foreign.sort_unstable_by_key(|a| a.0);
            foreign.dedup();
            if !foreign.is_empty() {
                let limit = if policy.caps.allows(CapabilityKind::AsPathPoisoning) {
                    policy.caps.limit(CapabilityKind::AsPathPoisoning) as usize
                } else {
                    0
                };
                if foreign.len() > limit {
                    return Err(Rejection::PoisoningNotAllowed);
                }
            }
        }
        // Communities: control communities are the steering interface and
        // always allowed; everything else needs the capability.
        let non_control = attrs
            .communities
            .iter()
            .filter(|c| !self.control.is_control(**c))
            .count()
            + attrs.large_communities.len();
        if non_control > 0 {
            let limit = if policy.caps.allows(CapabilityKind::AttachCommunities) {
                policy.caps.limit(CapabilityKind::AttachCommunities) as usize
            } else {
                0
            };
            if non_control > limit {
                return Err(Rejection::CommunitiesNotAllowed);
            }
        }
        // Unknown / optional transitive attributes.
        if !attrs.unknown.is_empty() && !policy.caps.allows(CapabilityKind::TransitiveAttributes) {
            return Err(Rejection::TransitiveAttrsNotAllowed);
        }
        Ok(())
    }

    /// Evaluate one UPDATE from an experiment. Returns the compliant subset
    /// (possibly empty) and the per-prefix rejections.
    pub fn check_update(
        &mut self,
        exp: ExperimentId,
        update: &UpdateMsg,
        now: SimTime,
    ) -> (UpdateMsg, Vec<(Prefix, Rejection)>) {
        let mut rejections = Vec::new();
        let mut out = UpdateMsg {
            withdrawn: Vec::new(),
            attrs: update.attrs.clone(),
            announce: Vec::new(),
        };

        let policy = match self.experiments.get(&exp) {
            Some(p) if !self.fail_closed => p.clone(),
            _ => {
                // Unknown experiment or overloaded engine: fail closed.
                for (p, _) in update.announce.iter().chain(update.withdrawn.iter()) {
                    self.stats.evaluated += 1;
                    self.reject(Rejection::FailClosed);
                    rejections.push((*p, Rejection::FailClosed));
                }
                out.attrs = None;
                return (out, rejections);
            }
        };

        for entry in &update.withdrawn {
            self.stats.evaluated += 1;
            let (prefix, _) = entry;
            if let Err(r) = Self::check_prefix_ownership(&policy, prefix) {
                self.reject(r);
                rejections.push((*prefix, r));
                continue;
            }
            if !self
                .ledger
                .lock()
                .unwrap()
                .charge(exp, *prefix, self.pop, now)
            {
                self.reject(Rejection::RateLimited);
                rejections.push((*prefix, Rejection::RateLimited));
                continue;
            }
            self.stats.accepted += 1;
            out.withdrawn.push(*entry);
        }

        if let Some(attrs) = &update.attrs {
            let attr_check = self.check_attrs(&policy, attrs);
            for entry in &update.announce {
                self.stats.evaluated += 1;
                let (prefix, _) = entry;
                if let Err(r) = attr_check {
                    self.reject(r);
                    rejections.push((*prefix, r));
                    continue;
                }
                if let Err(r) = Self::check_prefix_ownership(&policy, prefix) {
                    self.reject(r);
                    rejections.push((*prefix, r));
                    continue;
                }
                if !self
                    .ledger
                    .lock()
                    .unwrap()
                    .charge(exp, *prefix, self.pop, now)
                {
                    self.reject(Rejection::RateLimited);
                    rejections.push((*prefix, Rejection::RateLimited));
                    continue;
                }
                self.stats.accepted += 1;
                out.announce.push(*entry);
            }
        }
        if out.announce.is_empty() {
            out.attrs = None;
        }
        (out, rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::attrs::{AsPath, UnknownAttr};
    use peering_bgp::types::{prefix, Community};

    use crate::capability::Grant;

    const EXP: ExperimentId = ExperimentId(1);

    fn enforcer() -> ControlEnforcer {
        let mut e = ControlEnforcer::standalone(PopId(0), ControlCommunities::new(47065));
        e.set_experiment(
            EXP,
            ExperimentPolicy {
                allocations: vec![prefix("184.164.224.0/23"), prefix("2804:269c::/32")],
                asns: vec![Asn(61574)],
                caps: CapabilitySet::basic(),
            },
        );
        e
    }

    fn announce(p: &str, asns: &[u32]) -> UpdateMsg {
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>()),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..Default::default()
        };
        UpdateMsg::announce(vec![(prefix(p), None)], attrs)
    }

    fn check(e: &mut ControlEnforcer, u: &UpdateMsg) -> (UpdateMsg, Vec<(Prefix, Rejection)>) {
        e.check_update(EXP, u, SimTime::ZERO)
    }

    #[test]
    fn allocated_prefix_accepted() {
        let mut e = enforcer();
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        assert_eq!(e.stats.accepted, 1);
    }

    #[test]
    fn hijack_rejected() {
        let mut e = enforcer();
        let (out, rej) = check(&mut e, &announce("8.8.8.0/24", &[61574]));
        assert!(out.announce.is_empty());
        assert!(out.attrs.is_none());
        assert_eq!(rej, vec![(prefix("8.8.8.0/24"), Rejection::NotAllocated)]);
    }

    #[test]
    fn wrong_origin_asn_rejected() {
        let mut e = enforcer();
        let (_, rej) = check(&mut e, &announce("184.164.224.0/24", &[666]));
        // AS666 is both the origin and a foreign ASN; origin check fires.
        assert_eq!(rej[0].1, Rejection::BadOriginAsn);
    }

    #[test]
    fn empty_as_path_rejected() {
        let mut e = enforcer();
        let u = UpdateMsg::announce(
            vec![(prefix("184.164.224.0/24"), None)],
            PathAttributes::originated("10.0.0.1".parse().unwrap()),
        );
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::EmptyAsPath);
    }

    #[test]
    fn poisoning_requires_capability() {
        let mut e = enforcer();
        // Path 61574 3356 61574: poisons AS3356.
        let (_, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574, 3356, 61574]));
        assert_eq!(rej[0].1, Rejection::PoisoningNotAllowed);

        // Grant poisoning of up to 2 ASes.
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::limited(CapabilityKind::AsPathPoisoning, 2));
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574, 3356, 61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        // Three distinct poisoned ASes exceeds the limit of 2.
        let (_, rej) = check(
            &mut e,
            &announce("184.164.224.0/24", &[61574, 1, 2, 3, 61574]),
        );
        assert_eq!(rej[0].1, Rejection::PoisoningNotAllowed);
    }

    #[test]
    fn transit_capability_allows_foreign_paths() {
        let mut e = enforcer();
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::ProvideTransit));
        // Re-announcing a route learned from AS174 (origin not owned).
        let (out, rej) = check(&mut e, &announce("184.164.225.0/24", &[61574, 174]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn communities_require_capability_but_control_ones_are_free() {
        let mut e = enforcer();
        let cc = ControlCommunities::new(47065);
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.attrs
            .as_mut()
            .unwrap()
            .add_community(cc.announce_to(crate::ids::NeighborId(3)));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty(), "control communities always allowed");
        assert_eq!(out.announce.len(), 1);

        u.attrs
            .as_mut()
            .unwrap()
            .add_community(Community::new(3356, 70)); // action community at a transit
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::CommunitiesNotAllowed);

        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::limited(CapabilityKind::AttachCommunities, 4));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn transitive_attrs_require_capability() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.attrs.as_mut().unwrap().unknown.push(UnknownAttr {
            flags: 0xC0,
            type_code: 99,
            value: vec![1, 2],
        });
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::TransitiveAttrsNotAllowed);
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::TransitiveAttributes));
        let (_, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
    }

    #[test]
    fn six_to_four_requires_capability() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.announce = vec![(prefix("2002:b8a4::/32"), None)];
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::SixToFourNotAllowed);
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::Announce6to4));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn allocated_v6_accepted() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.announce = vec![(prefix("2804:269c:fe00::/40"), None)];
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn rate_limit_144_per_day_per_prefix_pop() {
        let mut e = enforcer();
        let u = announce("184.164.224.0/24", &[61574]);
        for i in 0..UPDATES_PER_DAY_LIMIT {
            let (out, rej) = e.check_update(EXP, &u, SimTime::from_nanos(i as u64));
            assert!(rej.is_empty(), "update {i} unexpectedly rejected");
            assert_eq!(out.announce.len(), 1);
        }
        let (_, rej) = e.check_update(EXP, &u, SimTime::ZERO);
        assert_eq!(rej[0].1, Rejection::RateLimited);
        // A different prefix still has budget.
        let (out, rej) = check(&mut e, &announce("184.164.225.0/24", &[61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        // The next simulated day resets the budget.
        let tomorrow = SimTime::from_nanos(86_401 * 1_000_000_000);
        let (out, rej) = e.check_update(EXP, &u, tomorrow);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn withdrawals_are_charged_and_checked() {
        let mut e = enforcer();
        let w = UpdateMsg::withdraw(vec![(prefix("184.164.224.0/24"), None)]);
        let (out, rej) = check(&mut e, &w);
        assert!(rej.is_empty());
        assert_eq!(out.withdrawn.len(), 1);
        // Withdrawing someone else's prefix is filtered.
        let w = UpdateMsg::withdraw(vec![(prefix("8.8.8.0/24"), None)]);
        let (out, rej) = check(&mut e, &w);
        assert!(out.withdrawn.is_empty());
        assert_eq!(rej[0].1, Rejection::NotAllocated);
    }

    #[test]
    fn shared_ledger_enforces_as_wide_budget() {
        // Two PoPs share the ledger: each has its own 144/day budget per
        // prefix (the pair key includes the PoP).
        let ledger = Arc::new(Mutex::new(RateLedger::default()));
        let cc = ControlCommunities::new(47065);
        let mut e0 = ControlEnforcer::new(PopId(0), cc, Arc::clone(&ledger));
        let mut e1 = ControlEnforcer::new(PopId(1), cc, Arc::clone(&ledger));
        let policy = ExperimentPolicy {
            allocations: vec![prefix("184.164.224.0/23")],
            asns: vec![Asn(61574)],
            caps: CapabilitySet::basic(),
        };
        e0.set_experiment(EXP, policy.clone());
        e1.set_experiment(EXP, policy);
        let u = announce("184.164.224.0/24", &[61574]);
        for _ in 0..UPDATES_PER_DAY_LIMIT {
            let (_, rej) = e0.check_update(EXP, &u, SimTime::ZERO);
            assert!(rej.is_empty());
        }
        let (_, rej) = e0.check_update(EXP, &u, SimTime::ZERO);
        assert_eq!(rej[0].1, Rejection::RateLimited);
        // PoP 1 has an independent per-PoP budget but shares the ledger
        // storage (and both are visible platform-wide).
        let (_, rej) = e1.check_update(EXP, &u, SimTime::ZERO);
        assert!(rej.is_empty());
        assert_eq!(
            ledger.lock().unwrap().used_today(
                EXP,
                prefix("184.164.224.0/24"),
                PopId(1),
                SimTime::ZERO
            ),
            1
        );
    }

    #[test]
    fn fail_closed_blocks_everything() {
        let mut e = enforcer();
        e.fail_closed = true;
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574]));
        assert!(out.announce.is_empty());
        assert_eq!(rej[0].1, Rejection::FailClosed);
    }

    #[test]
    fn unknown_experiment_fails_closed() {
        let mut e = enforcer();
        let u = announce("184.164.224.0/24", &[61574]);
        let (out, rej) = e.check_update(ExperimentId(99), &u, SimTime::ZERO);
        assert!(out.announce.is_empty());
        assert_eq!(rej[0].1, Rejection::FailClosed);
    }

    #[test]
    fn ledger_prune_drops_old_days() {
        let mut ledger = RateLedger::default();
        ledger.charge(EXP, prefix("184.164.224.0/24"), PopId(0), SimTime::ZERO);
        let tomorrow = SimTime::from_nanos(90_000 * 1_000_000_000);
        ledger.charge(EXP, prefix("184.164.224.0/24"), PopId(0), tomorrow);
        assert_eq!(ledger.counts.len(), 2);
        ledger.prune(tomorrow);
        assert_eq!(ledger.counts.len(), 1);
    }
}
