//! Control-plane enforcement (paper §3.3 "Control plane enforcement" and
//! §4.7 "Policing rate" / "Policing content" / "Capability framework").
//!
//! The engine receives every route announced by an experiment, evaluates it
//! against the experiment's allocations and capabilities plus the
//! platform-wide rate limits, and passes only compliant routes onward. It
//! keeps persistent state (the update-rate ledger) and can be shared across
//! PoPs to enforce AS-wide policies (§3.3's "state can be synchronized
//! among vBGP instances"). When overloaded it fails closed, blocking all
//! experimental announcements rather than risking the Internet (§4.7).

use std::collections::HashMap;
use std::sync::Arc;

use peering_bgp::attrs::PathAttributes;
use peering_bgp::message::UpdateMsg;
use peering_bgp::types::{Asn, Prefix};
use peering_netsim::SimTime;
use peering_obs::{EventKind, Obs};
use std::sync::Mutex;

use crate::capability::{CapabilityKind, CapabilitySet};
use crate::communities::ControlCommunities;
use crate::ids::{ExperimentId, PopId};

/// PEERING's published update-rate limit: 144 updates/day per prefix and
/// PoP pair — one every 10 minutes on average (§4.7).
pub const UPDATES_PER_DAY_LIMIT: u32 = 144;

const SECS_PER_DAY: u64 = 86_400;

/// Length of one data-plane flood-budget window. Long relative to the
/// 60 s gossip period on purpose: a concentration attack spread across
/// PoPs only becomes visible when several gossip rounds land inside one
/// window, so the window must span many rounds.
pub const FLOOD_WINDOW_SECS: u64 = 600;

/// Why an announcement (or part of one) was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rejection {
    /// The engine is overloaded / unconfigured for this experiment:
    /// fail closed.
    FailClosed,
    /// Prefix is not part of the experiment's allocation (hijack
    /// prevention).
    NotAllocated,
    /// The route does not originate from one of the experiment's ASNs.
    BadOriginAsn,
    /// Empty AS path (cannot attribute the announcement).
    EmptyAsPath,
    /// Foreign ASNs in the path without the poisoning capability, or more
    /// than the granted limit.
    PoisoningNotAllowed,
    /// Providing transit (re-announcing learned routes) without the
    /// capability.
    TransitNotAllowed,
    /// Non-control communities attached without (or beyond) the communities
    /// capability.
    CommunitiesNotAllowed,
    /// Unknown/optional-transitive attributes without the capability.
    TransitiveAttrsNotAllowed,
    /// 6to4 space without the 6to4 capability.
    SixToFourNotAllowed,
    /// Per-(prefix, PoP) update budget exhausted.
    RateLimited,
}

impl Rejection {
    /// Stable kebab-case reason code (journal events, metric labels).
    pub fn code(self) -> &'static str {
        match self {
            Rejection::FailClosed => "fail-closed",
            Rejection::NotAllocated => "not-allocated",
            Rejection::BadOriginAsn => "bad-origin-asn",
            Rejection::EmptyAsPath => "empty-as-path",
            Rejection::PoisoningNotAllowed => "poisoning-not-allowed",
            Rejection::TransitNotAllowed => "transit-not-allowed",
            Rejection::CommunitiesNotAllowed => "communities-not-allowed",
            Rejection::TransitiveAttrsNotAllowed => "transitive-attrs-not-allowed",
            Rejection::SixToFourNotAllowed => "6to4-not-allowed",
            Rejection::RateLimited => "rate-limited",
        }
    }
}

/// What the platform knows about one approved experiment.
#[derive(Debug, Clone, Default)]
pub struct ExperimentPolicy {
    /// Prefixes allocated to the experiment (announcements must fall within
    /// one of them).
    pub allocations: Vec<Prefix>,
    /// ASNs the experiment is authorized to originate from.
    pub asns: Vec<Asn>,
    /// Granted capabilities.
    pub caps: CapabilitySet,
}

/// Per-PoP update tally for one (experiment, prefix, day) bucket.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopCount {
    /// Updates charged through this ledger instance for the PoP.
    pub local: u32,
    /// Highest count learned for the PoP via backbone gossip. Gossip only
    /// carries a PoP's own local tally, so `remote` for PoP *p* is a
    /// monotone lower bound of *p*'s ledger's `local` — never an
    /// overestimate (the oracle checks exactly this).
    pub remote: u32,
}

impl PopCount {
    /// Best known count for the PoP: what this ledger charged itself or
    /// the highest figure gossip delivered, whichever is larger.
    pub fn best(self) -> u32 {
        self.local.max(self.remote)
    }
}

/// The update-rate ledger: per-(experiment, prefix, day) tallies broken
/// out by PoP.
///
/// Deployment modes, both exercised in tests:
///
/// * **Shared** — one `Arc<Mutex<RateLedger>>` handed to several
///   enforcers (the pre-distributed design, still what
///   [`ControlEnforcer::standalone`] builds). Every charge lands in
///   `local` under the charging PoP's key and AS-wide sums are exact.
/// * **Distributed** — one ledger per PoP; each PoP charges only its own
///   `local` tally and learns the other PoPs' tallies asynchronously via
///   backbone gossip frames (merged by [`RateLedger::observe_remote`],
///   a max-merge, so replayed or reordered frames are harmless). The
///   AS-wide sum is then eventually consistent: during a backbone
///   partition each side may overshoot the AS-wide budget by what the
///   unseen side spends (worst case `(pops - 1) × limit` for a full-day
///   partition), and reconverges to the true sum after heal within one
///   gossip period.
///
/// The per-PoP 144/day limit needs no synchronization in either mode and
/// is always exact.
#[derive(Debug, Default)]
pub struct RateLedger {
    days: HashMap<(ExperimentId, Prefix, u64), HashMap<PopId, PopCount>>,
    /// Data-plane flood tallies: packets per (experiment, source bucket,
    /// flood window), broken out by PoP exactly like `days`. The same
    /// `{local, remote}` max-merge CRDT applies, so the AS-wide flood
    /// budget inherits the update ledger's partition/overshoot story.
    floods: HashMap<(ExperimentId, Prefix, u64), HashMap<PopId, PopCount>>,
    /// Optional AS-wide (summed over PoPs) daily update budget per
    /// (experiment, prefix).
    as_wide_limit: Option<u32>,
}

impl RateLedger {
    /// The day bucket `now` falls in.
    pub fn day_index(now: SimTime) -> u64 {
        now.as_secs() / SECS_PER_DAY
    }

    /// Record one update; returns `false` if the per-PoP daily budget (or
    /// the AS-wide budget, when configured) is exhausted.
    fn charge(&mut self, exp: ExperimentId, prefix: Prefix, pop: PopId, now: SimTime) -> bool {
        let day = Self::day_index(now);
        let pops = self.days.entry((exp, prefix, day)).or_default();
        let mine = pops.get(&pop).copied().unwrap_or_default();
        if mine.best() >= UPDATES_PER_DAY_LIMIT {
            return false;
        }
        if let Some(limit) = self.as_wide_limit {
            let wide: u32 = pops.values().map(|c| c.best()).sum();
            if wide >= limit {
                return false;
            }
        }
        pops.entry(pop).or_default().local += 1;
        true
    }

    /// Configure (or clear) the AS-wide daily update budget.
    pub fn set_as_wide_limit(&mut self, limit: Option<u32>) {
        self.as_wide_limit = limit;
    }

    /// The configured AS-wide daily update budget, if any.
    pub fn as_wide_limit(&self) -> Option<u32> {
        self.as_wide_limit
    }

    /// The flood window `now` falls in (see [`FLOOD_WINDOW_SECS`]).
    pub fn flood_window(now: SimTime) -> u64 {
        now.as_secs() / FLOOD_WINDOW_SECS
    }

    /// Charge one delivered packet against a flood bucket (experiment ×
    /// aggregated source prefix × current window). Returns `false` when
    /// the budget is gone: either this PoP alone exceeded
    /// `per_pop_limit`, or — with `as_wide_limit` set — the best-known
    /// platform-wide total (local spend plus gossiped remote tallies)
    /// reached the AS-wide cap. Limits live in the experiment's data
    /// policy, not the ledger, so different experiments can share one
    /// ledger with different budgets.
    pub fn charge_flood(
        &mut self,
        exp: ExperimentId,
        bucket: Prefix,
        pop: PopId,
        now: SimTime,
        per_pop_limit: u32,
        as_wide_limit: Option<u32>,
    ) -> bool {
        let window = Self::flood_window(now);
        let pops = self.floods.entry((exp, bucket, window)).or_default();
        let mine = pops.get(&pop).copied().unwrap_or_default();
        if mine.best() >= per_pop_limit {
            return false;
        }
        if let Some(limit) = as_wide_limit {
            let wide: u32 = pops.values().map(|c| c.best()).sum();
            if wide >= limit {
                return false;
            }
        }
        pops.entry(pop).or_default().local += 1;
        true
    }

    /// Best-known packets charged against a flood bucket at one PoP in
    /// the current window.
    pub fn flood_used(&self, exp: ExperimentId, bucket: Prefix, pop: PopId, now: SimTime) -> u32 {
        let window = Self::flood_window(now);
        self.floods
            .get(&(exp, bucket, window))
            .and_then(|pops| pops.get(&pop))
            .map(|c| c.best())
            .unwrap_or(0)
    }

    /// Best-known platform-wide packets charged against a flood bucket in
    /// the current window.
    pub fn flood_wide(&self, exp: ExperimentId, bucket: Prefix, now: SimTime) -> u32 {
        let window = Self::flood_window(now);
        self.floods
            .get(&(exp, bucket, window))
            .map(|pops| pops.values().map(|c| c.best()).sum())
            .unwrap_or(0)
    }

    /// This PoP's own current-window flood tallies, for gossip — same
    /// sorted-for-byte-determinism contract as
    /// [`RateLedger::gossip_entries`].
    pub fn flood_gossip_entries(
        &self,
        pop: PopId,
        now: SimTime,
    ) -> Vec<(ExperimentId, Prefix, u32)> {
        let window = Self::flood_window(now);
        let mut out: Vec<(ExperimentId, Prefix, u32)> = self
            .floods
            .iter()
            .filter(|((_, _, w), _)| *w == window)
            .filter_map(|((exp, bucket, _), pops)| {
                let local = pops.get(&pop)?.local;
                (local > 0).then_some((*exp, *bucket, local))
            })
            .collect();
        out.sort_unstable_by_key(|(exp, bucket, _)| (*exp, *bucket));
        out
    }

    /// Merge a flood gossip section from `origin`: max-merge into the
    /// origin PoP's `remote` tallies, exactly like
    /// [`RateLedger::observe_remote`].
    pub fn observe_remote_flood(
        &mut self,
        origin: PopId,
        window: u64,
        entries: &[(ExperimentId, Prefix, u32)],
    ) {
        for (exp, bucket, count) in entries {
            let c = self
                .floods
                .entry((*exp, *bucket, window))
                .or_default()
                .entry(origin)
                .or_default();
            c.remote = c.remote.max(*count);
        }
    }

    /// Drop update buckets older than the current day and flood buckets
    /// older than the current window (housekeeping). Returns how many
    /// buckets were removed in total.
    pub fn prune(&mut self, now: SimTime) -> usize {
        let day = Self::day_index(now);
        let window = Self::flood_window(now);
        let before = self.days.len() + self.floods.len();
        self.days.retain(|(_, _, d), _| *d >= day);
        self.floods.retain(|(_, _, w), _| *w >= window);
        before - self.days.len() - self.floods.len()
    }

    /// Retained buckets (update days + flood windows) — bounded by
    /// [`RateLedger::prune`] in a long run.
    pub fn len(&self) -> usize {
        self.days.len() + self.floods.len()
    }

    /// Whether the ledger holds no buckets at all.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty() && self.floods.is_empty()
    }

    /// Best-known updates consumed today for a (prefix, PoP) pair.
    pub fn used_today(&self, exp: ExperimentId, prefix: Prefix, pop: PopId, now: SimTime) -> u32 {
        let day = Self::day_index(now);
        self.days
            .get(&(exp, prefix, day))
            .and_then(|pops| pops.get(&pop))
            .map(|c| c.best())
            .unwrap_or(0)
    }

    /// Best-known AS-wide (summed over PoPs) updates consumed today for a
    /// prefix.
    pub fn wide_today(&self, exp: ExperimentId, prefix: Prefix, now: SimTime) -> u32 {
        let day = Self::day_index(now);
        self.days
            .get(&(exp, prefix, day))
            .map(|pops| pops.values().map(|c| c.best()).sum())
            .unwrap_or(0)
    }

    /// This PoP's own current-day tallies, for gossiping to backbone
    /// peers. Sorted by (experiment, prefix) so the encoded frame payload
    /// is byte-identical regardless of map iteration order — a
    /// requirement for sharded-run determinism.
    pub fn gossip_entries(&self, pop: PopId, now: SimTime) -> Vec<(ExperimentId, Prefix, u32)> {
        let day = Self::day_index(now);
        let mut out: Vec<(ExperimentId, Prefix, u32)> = self
            .days
            .iter()
            .filter(|((_, _, d), _)| *d == day)
            .filter_map(|((exp, prefix, _), pops)| {
                let local = pops.get(&pop)?.local;
                (local > 0).then_some((*exp, *prefix, local))
            })
            .collect();
        out.sort_unstable_by_key(|(exp, prefix, _)| (*exp, *prefix));
        out
    }

    /// Merge a gossip frame from `origin`: max-merge each entry into the
    /// origin PoP's `remote` tally. Idempotent and order-independent, so
    /// duplicated or reordered frames cannot inflate counts.
    pub fn observe_remote(
        &mut self,
        origin: PopId,
        day: u64,
        entries: &[(ExperimentId, Prefix, u32)],
    ) {
        for (exp, prefix, count) in entries {
            let c = self
                .days
                .entry((*exp, *prefix, day))
                .or_default()
                .entry(origin)
                .or_default();
            c.remote = c.remote.max(*count);
        }
    }

    /// Current-window flood view for invariant checks: every (experiment,
    /// bucket, PoP) tally, sorted. Same gossip-soundness contract as the
    /// update entries: a `remote` tally is a monotone lower bound of the
    /// origin PoP's `local`.
    pub fn flood_entries_now(&self, now: SimTime) -> Vec<(ExperimentId, Prefix, PopId, PopCount)> {
        let window = Self::flood_window(now);
        let mut out: Vec<(ExperimentId, Prefix, PopId, PopCount)> = self
            .floods
            .iter()
            .filter(|((_, _, w), _)| *w == window)
            .flat_map(|((exp, bucket, _), pops)| {
                pops.iter().map(|(pop, c)| (*exp, *bucket, *pop, *c))
            })
            .collect();
        out.sort_unstable_by_key(|(exp, bucket, pop, _)| (*exp, *bucket, *pop));
        out
    }

    /// Current-day view for invariant checks: every (experiment, prefix,
    /// PoP) tally, sorted.
    pub fn entries_today(&self, now: SimTime) -> Vec<(ExperimentId, Prefix, PopId, PopCount)> {
        let day = Self::day_index(now);
        let mut out: Vec<(ExperimentId, Prefix, PopId, PopCount)> = self
            .days
            .iter()
            .filter(|((_, _, d), _)| *d == day)
            .flat_map(|((exp, prefix, _), pops)| {
                pops.iter().map(|(pop, c)| (*exp, *prefix, *pop, *c))
            })
            .collect();
        out.sort_unstable_by_key(|(exp, prefix, pop, _)| (*exp, *prefix, *pop));
        out
    }
}

/// Counters for the enforcement pipeline.
#[derive(Debug, Clone, Default)]
pub struct ControlStats {
    /// NLRI entries evaluated (announcements + withdrawals).
    pub evaluated: u64,
    /// Entries accepted.
    pub accepted: u64,
    /// Rejection counts by reason.
    pub rejected: HashMap<Rejection, u64>,
}

/// The control-plane enforcement engine for one PoP.
pub struct ControlEnforcer {
    pop: PopId,
    control: ControlCommunities,
    experiments: HashMap<ExperimentId, ExperimentPolicy>,
    ledger: Arc<Mutex<RateLedger>>,
    /// When set, every announcement is rejected (overload → fail closed).
    /// Private so transitions always go through
    /// [`ControlEnforcer::set_fail_closed`] and are journaled — the paper's
    /// overload semantics (§4.7) are an observable platform state, not a
    /// silent flag.
    fail_closed: bool,
    /// Journal handle (fail-closed transitions) + gauge.
    obs: Obs,
    /// Pipeline counters.
    pub stats: ControlStats,
}

/// 6to4 space: 2002::/16.
fn is_6to4(prefix: &Prefix) -> bool {
    match prefix {
        Prefix::V6 { addr, .. } => addr.octets()[0] == 0x20 && addr.octets()[1] == 0x02,
        Prefix::V4 { .. } => false,
    }
}

impl ControlEnforcer {
    /// Build an enforcer for a PoP, sharing the platform-wide rate ledger.
    pub fn new(pop: PopId, control: ControlCommunities, ledger: Arc<Mutex<RateLedger>>) -> Self {
        ControlEnforcer {
            pop,
            control,
            experiments: HashMap::new(),
            ledger,
            fail_closed: false,
            obs: Obs::new(),
            stats: ControlStats::default(),
        }
    }

    /// Attach a shared observability handle and publish the current
    /// fail-closed state as a gauge.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
        self.obs
            .gauge("control.fail_closed")
            .set(self.fail_closed as i64);
    }

    /// Whether the engine is currently failing closed.
    pub fn fail_closed(&self) -> bool {
        self.fail_closed
    }

    /// The PoP this enforcer belongs to.
    pub fn pop_id(&self) -> PopId {
        self.pop
    }

    /// Enter or leave fail-closed mode. Transitions are journaled and
    /// mirrored into the `control.fail_closed` gauge so the oracle and
    /// tests can see overload come and go (§4.7); a no-op set is silent.
    pub fn set_fail_closed(&mut self, on: bool) {
        if self.fail_closed == on {
            return;
        }
        self.fail_closed = on;
        self.obs.gauge("control.fail_closed").set(on as i64);
        self.obs.record(EventKind::FailClosed {
            pop: self.pop.0,
            entered: on,
        });
    }

    /// Convenience: an enforcer with its own private ledger (single-PoP
    /// deployments and tests).
    pub fn standalone(pop: PopId, control: ControlCommunities) -> Self {
        Self::new(pop, control, Arc::new(Mutex::new(RateLedger::default())))
    }

    /// Register (or update) an experiment's policy.
    pub fn set_experiment(&mut self, exp: ExperimentId, policy: ExperimentPolicy) {
        self.experiments.insert(exp, policy);
    }

    /// Remove an experiment (end of its allocation).
    pub fn remove_experiment(&mut self, exp: ExperimentId) {
        self.experiments.remove(&exp);
    }

    /// Whether an experiment has a registered policy.
    pub fn has_experiment(&self, exp: ExperimentId) -> bool {
        self.experiments.contains_key(&exp)
    }

    /// Access the shared ledger (for inspection / pruning).
    pub fn ledger(&self) -> Arc<Mutex<RateLedger>> {
        Arc::clone(&self.ledger)
    }

    fn reject(&mut self, reason: Rejection) {
        *self.stats.rejected.entry(reason).or_insert(0) += 1;
    }

    fn check_prefix_ownership(policy: &ExperimentPolicy, prefix: &Prefix) -> Result<(), Rejection> {
        if policy.allocations.iter().any(|a| a.contains(prefix)) {
            return Ok(());
        }
        if is_6to4(prefix) {
            if policy.caps.allows(CapabilityKind::Announce6to4) {
                return Ok(());
            }
            return Err(Rejection::SixToFourNotAllowed);
        }
        Err(Rejection::NotAllocated)
    }

    fn check_attrs(
        &self,
        policy: &ExperimentPolicy,
        attrs: &PathAttributes,
    ) -> Result<(), Rejection> {
        // Origin attribution.
        let Some(origin) = attrs.as_path.origin_as() else {
            return Err(Rejection::EmptyAsPath);
        };
        let origin_owned = policy.asns.contains(&origin);
        let transit = policy.caps.allows(CapabilityKind::ProvideTransit);
        if !origin_owned && !transit {
            return Err(Rejection::BadOriginAsn);
        }
        // Foreign ASNs in the path = poisoning (unless providing transit).
        if !transit {
            let mut foreign: Vec<Asn> = attrs
                .as_path
                .asns()
                .into_iter()
                .filter(|a| !policy.asns.contains(a))
                .collect();
            foreign.sort_unstable_by_key(|a| a.0);
            foreign.dedup();
            if !foreign.is_empty() {
                let limit = if policy.caps.allows(CapabilityKind::AsPathPoisoning) {
                    policy.caps.limit(CapabilityKind::AsPathPoisoning) as usize
                } else {
                    0
                };
                if foreign.len() > limit {
                    return Err(Rejection::PoisoningNotAllowed);
                }
            }
        }
        // Communities: control communities are the steering interface and
        // always allowed; everything else needs the capability.
        let non_control = attrs
            .communities
            .iter()
            .filter(|c| !self.control.is_control(**c))
            .count()
            + attrs.large_communities.len();
        if non_control > 0 {
            let limit = if policy.caps.allows(CapabilityKind::AttachCommunities) {
                policy.caps.limit(CapabilityKind::AttachCommunities) as usize
            } else {
                0
            };
            if non_control > limit {
                return Err(Rejection::CommunitiesNotAllowed);
            }
        }
        // Unknown / optional transitive attributes.
        if !attrs.unknown.is_empty() && !policy.caps.allows(CapabilityKind::TransitiveAttributes) {
            return Err(Rejection::TransitiveAttrsNotAllowed);
        }
        Ok(())
    }

    /// Evaluate one UPDATE from an experiment. Returns the compliant subset
    /// (possibly empty) and the per-prefix rejections.
    pub fn check_update(
        &mut self,
        exp: ExperimentId,
        update: &UpdateMsg,
        now: SimTime,
    ) -> (UpdateMsg, Vec<(Prefix, Rejection)>) {
        let mut rejections = Vec::new();
        let mut out = UpdateMsg {
            withdrawn: Vec::new(),
            attrs: update.attrs.clone(),
            announce: Vec::new(),
        };

        let policy = match self.experiments.get(&exp) {
            Some(p) if !self.fail_closed => p.clone(),
            _ => {
                // Unknown experiment or overloaded engine: fail closed.
                for (p, _) in update.announce.iter().chain(update.withdrawn.iter()) {
                    self.stats.evaluated += 1;
                    self.reject(Rejection::FailClosed);
                    rejections.push((*p, Rejection::FailClosed));
                }
                out.attrs = None;
                return (out, rejections);
            }
        };

        for entry in &update.withdrawn {
            self.stats.evaluated += 1;
            let (prefix, _) = entry;
            if let Err(r) = Self::check_prefix_ownership(&policy, prefix) {
                self.reject(r);
                rejections.push((*prefix, r));
                continue;
            }
            if !self
                .ledger
                .lock()
                .unwrap()
                .charge(exp, *prefix, self.pop, now)
            {
                self.reject(Rejection::RateLimited);
                rejections.push((*prefix, Rejection::RateLimited));
                continue;
            }
            self.stats.accepted += 1;
            out.withdrawn.push(*entry);
        }

        if let Some(attrs) = &update.attrs {
            let attr_check = self.check_attrs(&policy, attrs);
            for entry in &update.announce {
                self.stats.evaluated += 1;
                let (prefix, _) = entry;
                if let Err(r) = attr_check {
                    self.reject(r);
                    rejections.push((*prefix, r));
                    continue;
                }
                if let Err(r) = Self::check_prefix_ownership(&policy, prefix) {
                    self.reject(r);
                    rejections.push((*prefix, r));
                    continue;
                }
                if !self
                    .ledger
                    .lock()
                    .unwrap()
                    .charge(exp, *prefix, self.pop, now)
                {
                    self.reject(Rejection::RateLimited);
                    rejections.push((*prefix, Rejection::RateLimited));
                    continue;
                }
                self.stats.accepted += 1;
                out.announce.push(*entry);
            }
        }
        if out.announce.is_empty() {
            out.attrs = None;
        }
        (out, rejections)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::attrs::{AsPath, UnknownAttr};
    use peering_bgp::types::{prefix, Community};

    use crate::capability::Grant;

    const EXP: ExperimentId = ExperimentId(1);

    fn enforcer() -> ControlEnforcer {
        let mut e = ControlEnforcer::standalone(PopId(0), ControlCommunities::new(47065));
        e.set_experiment(
            EXP,
            ExperimentPolicy {
                allocations: vec![prefix("184.164.224.0/23"), prefix("2804:269c::/32")],
                asns: vec![Asn(61574)],
                caps: CapabilitySet::basic(),
            },
        );
        e
    }

    fn announce(p: &str, asns: &[u32]) -> UpdateMsg {
        let attrs = PathAttributes {
            as_path: AsPath::from_asns(&asns.iter().map(|&a| Asn(a)).collect::<Vec<_>>()),
            next_hop: Some("10.0.0.1".parse().unwrap()),
            ..Default::default()
        };
        UpdateMsg::announce(vec![(prefix(p), None)], attrs)
    }

    fn check(e: &mut ControlEnforcer, u: &UpdateMsg) -> (UpdateMsg, Vec<(Prefix, Rejection)>) {
        e.check_update(EXP, u, SimTime::ZERO)
    }

    #[test]
    fn allocated_prefix_accepted() {
        let mut e = enforcer();
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        assert_eq!(e.stats.accepted, 1);
    }

    #[test]
    fn hijack_rejected() {
        let mut e = enforcer();
        let (out, rej) = check(&mut e, &announce("8.8.8.0/24", &[61574]));
        assert!(out.announce.is_empty());
        assert!(out.attrs.is_none());
        assert_eq!(rej, vec![(prefix("8.8.8.0/24"), Rejection::NotAllocated)]);
    }

    #[test]
    fn wrong_origin_asn_rejected() {
        let mut e = enforcer();
        let (_, rej) = check(&mut e, &announce("184.164.224.0/24", &[666]));
        // AS666 is both the origin and a foreign ASN; origin check fires.
        assert_eq!(rej[0].1, Rejection::BadOriginAsn);
    }

    #[test]
    fn empty_as_path_rejected() {
        let mut e = enforcer();
        let u = UpdateMsg::announce(
            vec![(prefix("184.164.224.0/24"), None)],
            PathAttributes::originated("10.0.0.1".parse().unwrap()),
        );
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::EmptyAsPath);
    }

    #[test]
    fn poisoning_requires_capability() {
        let mut e = enforcer();
        // Path 61574 3356 61574: poisons AS3356.
        let (_, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574, 3356, 61574]));
        assert_eq!(rej[0].1, Rejection::PoisoningNotAllowed);

        // Grant poisoning of up to 2 ASes.
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::limited(CapabilityKind::AsPathPoisoning, 2));
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574, 3356, 61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        // Three distinct poisoned ASes exceeds the limit of 2.
        let (_, rej) = check(
            &mut e,
            &announce("184.164.224.0/24", &[61574, 1, 2, 3, 61574]),
        );
        assert_eq!(rej[0].1, Rejection::PoisoningNotAllowed);
    }

    #[test]
    fn transit_capability_allows_foreign_paths() {
        let mut e = enforcer();
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::ProvideTransit));
        // Re-announcing a route learned from AS174 (origin not owned).
        let (out, rej) = check(&mut e, &announce("184.164.225.0/24", &[61574, 174]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn communities_require_capability_but_control_ones_are_free() {
        let mut e = enforcer();
        let cc = ControlCommunities::new(47065);
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.attrs
            .as_mut()
            .unwrap()
            .add_community(cc.announce_to(crate::ids::NeighborId(3)));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty(), "control communities always allowed");
        assert_eq!(out.announce.len(), 1);

        u.attrs
            .as_mut()
            .unwrap()
            .add_community(Community::new(3356, 70)); // action community at a transit
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::CommunitiesNotAllowed);

        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::limited(CapabilityKind::AttachCommunities, 4));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn transitive_attrs_require_capability() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.attrs.as_mut().unwrap().unknown.push(UnknownAttr {
            flags: 0xC0,
            type_code: 99,
            value: vec![1, 2],
        });
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::TransitiveAttrsNotAllowed);
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::TransitiveAttributes));
        let (_, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
    }

    #[test]
    fn six_to_four_requires_capability() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.announce = vec![(prefix("2002:b8a4::/32"), None)];
        let (_, rej) = check(&mut e, &u);
        assert_eq!(rej[0].1, Rejection::SixToFourNotAllowed);
        e.experiments
            .get_mut(&EXP)
            .unwrap()
            .caps
            .grant(Grant::unlimited(CapabilityKind::Announce6to4));
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn allocated_v6_accepted() {
        let mut e = enforcer();
        let mut u = announce("184.164.224.0/24", &[61574]);
        u.announce = vec![(prefix("2804:269c:fe00::/40"), None)];
        let (out, rej) = check(&mut e, &u);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn rate_limit_144_per_day_per_prefix_pop() {
        let mut e = enforcer();
        let u = announce("184.164.224.0/24", &[61574]);
        for i in 0..UPDATES_PER_DAY_LIMIT {
            let (out, rej) = e.check_update(EXP, &u, SimTime::from_nanos(i as u64));
            assert!(rej.is_empty(), "update {i} unexpectedly rejected");
            assert_eq!(out.announce.len(), 1);
        }
        let (_, rej) = e.check_update(EXP, &u, SimTime::ZERO);
        assert_eq!(rej[0].1, Rejection::RateLimited);
        // A different prefix still has budget.
        let (out, rej) = check(&mut e, &announce("184.164.225.0/24", &[61574]));
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
        // The next simulated day resets the budget.
        let tomorrow = SimTime::from_nanos(86_401 * 1_000_000_000);
        let (out, rej) = e.check_update(EXP, &u, tomorrow);
        assert!(rej.is_empty());
        assert_eq!(out.announce.len(), 1);
    }

    #[test]
    fn withdrawals_are_charged_and_checked() {
        let mut e = enforcer();
        let w = UpdateMsg::withdraw(vec![(prefix("184.164.224.0/24"), None)]);
        let (out, rej) = check(&mut e, &w);
        assert!(rej.is_empty());
        assert_eq!(out.withdrawn.len(), 1);
        // Withdrawing someone else's prefix is filtered.
        let w = UpdateMsg::withdraw(vec![(prefix("8.8.8.0/24"), None)]);
        let (out, rej) = check(&mut e, &w);
        assert!(out.withdrawn.is_empty());
        assert_eq!(rej[0].1, Rejection::NotAllocated);
    }

    #[test]
    fn shared_ledger_enforces_as_wide_budget() {
        // Two PoPs share the ledger: each has its own 144/day budget per
        // prefix (the pair key includes the PoP).
        let ledger = Arc::new(Mutex::new(RateLedger::default()));
        let cc = ControlCommunities::new(47065);
        let mut e0 = ControlEnforcer::new(PopId(0), cc, Arc::clone(&ledger));
        let mut e1 = ControlEnforcer::new(PopId(1), cc, Arc::clone(&ledger));
        let policy = ExperimentPolicy {
            allocations: vec![prefix("184.164.224.0/23")],
            asns: vec![Asn(61574)],
            caps: CapabilitySet::basic(),
        };
        e0.set_experiment(EXP, policy.clone());
        e1.set_experiment(EXP, policy);
        let u = announce("184.164.224.0/24", &[61574]);
        for _ in 0..UPDATES_PER_DAY_LIMIT {
            let (_, rej) = e0.check_update(EXP, &u, SimTime::ZERO);
            assert!(rej.is_empty());
        }
        let (_, rej) = e0.check_update(EXP, &u, SimTime::ZERO);
        assert_eq!(rej[0].1, Rejection::RateLimited);
        // PoP 1 has an independent per-PoP budget but shares the ledger
        // storage (and both are visible platform-wide).
        let (_, rej) = e1.check_update(EXP, &u, SimTime::ZERO);
        assert!(rej.is_empty());
        assert_eq!(
            ledger.lock().unwrap().used_today(
                EXP,
                prefix("184.164.224.0/24"),
                PopId(1),
                SimTime::ZERO
            ),
            1
        );
    }

    #[test]
    fn fail_closed_blocks_everything_and_is_journaled() {
        let mut e = enforcer();
        let obs = Obs::new();
        e.set_obs(obs.clone());
        e.set_fail_closed(true);
        assert!(e.fail_closed());
        let (out, rej) = check(&mut e, &announce("184.164.224.0/24", &[61574]));
        assert!(out.announce.is_empty());
        assert_eq!(rej[0].1, Rejection::FailClosed);
        // Redundant sets are silent; real transitions are journaled both
        // ways and mirrored into the gauge.
        e.set_fail_closed(true);
        e.set_fail_closed(false);
        let events: Vec<EventKind> = obs.events().iter().map(|ev| ev.kind).collect();
        assert_eq!(
            events,
            vec![
                EventKind::FailClosed {
                    pop: 0,
                    entered: true
                },
                EventKind::FailClosed {
                    pop: 0,
                    entered: false
                },
            ]
        );
        e.set_obs(obs.clone());
        assert_eq!(obs.snapshot().gauge("control.fail_closed"), Some(0));
    }

    #[test]
    fn unknown_experiment_fails_closed() {
        let mut e = enforcer();
        let u = announce("184.164.224.0/24", &[61574]);
        let (out, rej) = e.check_update(ExperimentId(99), &u, SimTime::ZERO);
        assert!(out.announce.is_empty());
        assert_eq!(rej[0].1, Rejection::FailClosed);
    }

    #[test]
    fn ledger_prune_drops_old_days() {
        let mut ledger = RateLedger::default();
        ledger.charge(EXP, prefix("184.164.224.0/24"), PopId(0), SimTime::ZERO);
        let tomorrow = SimTime::from_nanos(90_000 * 1_000_000_000);
        ledger.charge(EXP, prefix("184.164.224.0/24"), PopId(0), tomorrow);
        assert_eq!(ledger.len(), 2);
        assert_eq!(ledger.prune(tomorrow), 1);
        assert_eq!(ledger.len(), 1);
        // Pruning again is a no-op.
        assert_eq!(ledger.prune(tomorrow), 0);
    }

    #[test]
    fn as_wide_limit_spans_pops() {
        // Shared-ledger mode: the AS-wide budget sums exactly across PoPs.
        let mut ledger = RateLedger::default();
        ledger.set_as_wide_limit(Some(5));
        assert_eq!(ledger.as_wide_limit(), Some(5));
        let p = prefix("184.164.224.0/24");
        for i in 0..3 {
            assert!(ledger.charge(EXP, p, PopId(0), SimTime::from_nanos(i)));
        }
        assert!(ledger.charge(EXP, p, PopId(1), SimTime::ZERO));
        assert!(ledger.charge(EXP, p, PopId(2), SimTime::ZERO));
        // 3 + 1 + 1 = 5: the budget is gone at every PoP.
        for pop in 0..3 {
            assert!(!ledger.charge(EXP, p, PopId(pop), SimTime::ZERO));
        }
        assert_eq!(ledger.wide_today(EXP, p, SimTime::ZERO), 5);
        // Other prefixes are unaffected.
        assert!(ledger.charge(EXP, prefix("184.164.225.0/24"), PopId(0), SimTime::ZERO));
        // A new day resets the AS-wide budget too.
        let tomorrow = SimTime::from_nanos(90_000 * 1_000_000_000);
        assert!(ledger.charge(EXP, p, PopId(0), tomorrow));
    }

    #[test]
    fn gossip_merge_is_idempotent_and_bounded_by_origin_truth() {
        // Distributed mode: two per-PoP ledgers, reconciled by gossip.
        let p = prefix("184.164.224.0/24");
        let mut at0 = RateLedger::default();
        let mut at1 = RateLedger::default();
        at0.set_as_wide_limit(Some(10));
        at1.set_as_wide_limit(Some(10));
        for i in 0..7 {
            assert!(at0.charge(EXP, p, PopId(0), SimTime::from_nanos(i)));
        }
        for i in 0..4 {
            assert!(at1.charge(EXP, p, PopId(1), SimTime::from_nanos(i)));
        }
        // Before gossip each side only sees its own spend.
        assert_eq!(at1.wide_today(EXP, p, SimTime::ZERO), 4);
        let frame = at0.gossip_entries(PopId(0), SimTime::ZERO);
        assert_eq!(frame, vec![(EXP, p, 7)]);
        at1.observe_remote(PopId(0), 0, &frame);
        assert_eq!(at1.wide_today(EXP, p, SimTime::ZERO), 11);
        assert_eq!(at1.used_today(EXP, p, PopId(0), SimTime::ZERO), 7);
        // Replayed and stale frames cannot inflate the tally (max-merge).
        at1.observe_remote(PopId(0), 0, &frame);
        at1.observe_remote(PopId(0), 0, &[(EXP, p, 3)]);
        assert_eq!(at1.wide_today(EXP, p, SimTime::ZERO), 11);
        // PoP 1 now refuses further charges: over the AS-wide budget.
        assert!(!at1.charge(EXP, p, PopId(1), SimTime::ZERO));
        // Remote tallies never exceed the origin's own local count.
        for (_, _, pop, c) in at1.entries_today(SimTime::ZERO) {
            if pop == PopId(0) {
                assert!(c.remote <= at0.used_today(EXP, p, PopId(0), SimTime::ZERO));
            }
        }
        // Gossip entries only carry the *local* tally — what PoP 1 heard
        // about PoP 0 is not re-gossiped as PoP 1's own spend.
        assert_eq!(
            at1.gossip_entries(PopId(1), SimTime::ZERO),
            vec![(EXP, p, 4)]
        );
        assert!(at1.gossip_entries(PopId(0), SimTime::ZERO).is_empty());
    }

    #[test]
    fn gossip_entries_are_sorted_deterministically() {
        let mut ledger = RateLedger::default();
        // Insert in scrambled order; HashMap iteration order must not leak.
        for s in ["184.164.227.0/24", "184.164.224.0/24", "184.164.226.0/24"] {
            ledger.charge(ExperimentId(2), prefix(s), PopId(0), SimTime::ZERO);
            ledger.charge(ExperimentId(1), prefix(s), PopId(0), SimTime::ZERO);
        }
        let entries = ledger.gossip_entries(PopId(0), SimTime::ZERO);
        let mut sorted = entries.clone();
        sorted.sort_unstable_by_key(|(exp, prefix, _)| (*exp, *prefix));
        assert_eq!(entries, sorted);
        assert_eq!(entries.len(), 6);
        assert!(entries[0].0 < entries[5].0);
    }

    #[test]
    fn per_pop_limit_still_applies_with_remote_knowledge() {
        // A PoP that learns (via gossip) it already spent its per-PoP
        // budget elsewhere must refuse local charges, even with no local
        // spend — `best()` feeds the per-PoP check.
        let p = prefix("184.164.224.0/24");
        let mut ledger = RateLedger::default();
        ledger.observe_remote(PopId(0), 0, &[(EXP, p, UPDATES_PER_DAY_LIMIT)]);
        assert!(!ledger.charge(EXP, p, PopId(0), SimTime::ZERO));
    }
}
