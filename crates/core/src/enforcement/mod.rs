//! The enforcement engines (paper §3.3, §4.7).
//!
//! vBGP separates policy enforcement from the routing engine: the control
//! plane engine interposes on every route an experiment announces (the
//! paper implements this with ExaBGP running Python in the BGP pipeline),
//! and the data plane engine interposes on every packet (eBPF in the
//! paper). Decoupling is what makes the policies unit-testable and lets
//! them be stateful — both engines here keep persistent state (rate
//! ledgers, token buckets) and fail closed.

pub mod control;
pub mod data;
pub mod pprog;

pub use control::{ControlEnforcer, ExperimentPolicy, PopCount, RateLedger, Rejection};
pub use data::{DataEnforcer, DataVerdict, TokenBucket};
pub use pprog::{Field, Insn, PacketProgram, PacketView, ProgError, ProgOutcome, Rewrite};
