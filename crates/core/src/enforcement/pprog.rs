//! Sandboxed packet programs (paper §3.3 "Data plane enforcement", §4.7).
//!
//! The paper attaches eBPF programs to the data path so each experiment can
//! express its own packet policy — allow, transform, or block — without the
//! platform trusting the program. This module is that sandbox in miniature:
//! a fixed-width register machine over decoded packet header fields, with
//! every run bounded by a *fuel* budget so a hostile or buggy program can
//! burn a constant number of instructions and nothing else. There is no
//! memory, no calls, no access to anything but the packet view — the whole
//! attack surface is the instruction set below.
//!
//! Fail-closed rules (§4.7): a program that is malformed at install time, or
//! that exhausts its fuel, or that runs off the end of its instruction list,
//! yields `Block`. An experiment's program can misdirect or drop *its own*
//! traffic, never smuggle a packet past enforcement.

use std::net::{IpAddr, Ipv4Addr};

/// Number of general-purpose registers (`r0`..`r7`).
pub const NUM_REGS: usize = 8;

/// Upper bound on instructions per program (install-time check).
pub const MAX_PROGRAM_LEN: usize = 256;

/// Hard ceiling on any program's fuel budget. Bounded loops are allowed —
/// backward jumps are legal — but no program can execute more than this
/// many instructions per packet.
pub const MAX_FUEL: u32 = 4096;

/// Default fuel budget for [`PacketProgram::new`].
pub const DEFAULT_FUEL: u32 = 256;

/// A packet header field the VM can read. Addresses are folded to 64 bits
/// (IPv4 zero-extended; IPv6 XOR-folded) — the VM compares addresses only
/// through this folding, which is also what makes per-flow verdict caching
/// sound: two packets the fold cannot distinguish are indistinguishable to
/// every program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Field {
    /// Source address (folded to `u64`).
    SrcAddr,
    /// Destination address (folded to `u64`).
    DstAddr,
    /// IP protocol number.
    Proto,
    /// Transport source port (0 when not TCP/UDP or truncated).
    SrcPort,
    /// Transport destination port (0 when not TCP/UDP or truncated).
    DstPort,
    /// Wire length in bytes.
    Len,
    /// TTL as received (before the router decrements it).
    Ttl,
}

/// One instruction. `u8` operands are register indexes, `u16` operands are
/// absolute jump targets, `u64` operands are immediates. All arithmetic is
/// wrapping; shift amounts are masked to 63.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insn {
    /// `r[d] = field`.
    Ld(u8, Field),
    /// `r[d] = imm`.
    LdImm(u8, u64),
    /// `r[d] = r[s]`.
    Mov(u8, u8),
    /// `r[d] = r[d].wrapping_add(r[s])`.
    Add(u8, u8),
    /// `r[d] = r[d].wrapping_sub(r[s])`.
    Sub(u8, u8),
    /// `r[d] &= r[s]`.
    And(u8, u8),
    /// `r[d] |= r[s]`.
    Or(u8, u8),
    /// `r[d] ^= r[s]`.
    Xor(u8, u8),
    /// `r[d] <<= amount & 63`.
    ShlImm(u8, u8),
    /// `r[d] >>= amount & 63`.
    ShrImm(u8, u8),
    /// Unconditional jump to an absolute instruction index.
    Jmp(u16),
    /// Jump if `r[a] == imm`.
    JeqImm(u8, u64, u16),
    /// Jump if `r[a] != imm`.
    JneImm(u8, u64, u16),
    /// Jump if `r[a] < imm`.
    JltImm(u8, u64, u16),
    /// Jump if `r[a] > imm`.
    JgtImm(u8, u64, u16),
    /// Jump if `r[a] == r[b]`.
    Jeq(u8, u8, u16),
    /// Jump if `r[a] < r[b]`.
    Jlt(u8, u8, u16),
    /// Record a TTL rewrite from `r[s]` (low 8 bits) and continue.
    SetTtl(u8),
    /// Record a source-address rewrite from `r[s]` (low 32 bits, IPv4) and
    /// continue.
    SetSrc(u8),
    /// Record a destination-address rewrite from `r[s]` (low 32 bits,
    /// IPv4) and continue. The router re-routes on the rewritten
    /// destination.
    SetDst(u8),
    /// Terminate: pass the packet (as `Transform` if any rewrite was
    /// recorded, plain `Allow` otherwise).
    Allow,
    /// Terminate: drop the packet.
    Block,
}

/// Why a program failed install-time validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgError {
    /// No instructions.
    Empty,
    /// More than [`MAX_PROGRAM_LEN`] instructions.
    TooLong,
    /// A register operand is out of range; the payload is the offending
    /// instruction index.
    BadRegister(usize),
    /// A jump target is past the end; the payload is the offending
    /// instruction index.
    BadTarget(usize),
    /// Fuel budget is zero or above [`MAX_FUEL`].
    BadFuel,
}

impl std::fmt::Display for ProgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProgError::Empty => write!(f, "program is empty"),
            ProgError::TooLong => write!(f, "program exceeds {MAX_PROGRAM_LEN} instructions"),
            ProgError::BadRegister(pc) => write!(f, "bad register operand at instruction {pc}"),
            ProgError::BadTarget(pc) => write!(f, "jump target out of range at instruction {pc}"),
            ProgError::BadFuel => write!(f, "fuel budget must be in 1..={MAX_FUEL}"),
        }
    }
}

/// Header rewrite accumulated by `Set*` instructions (the paper's
/// "transform" verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Rewrite {
    /// Replace the TTL.
    pub ttl: Option<u8>,
    /// Replace the IPv4 source address.
    pub src: Option<Ipv4Addr>,
    /// Replace the IPv4 destination address (re-routed by the caller).
    pub dst: Option<Ipv4Addr>,
}

impl Rewrite {
    /// No rewrites recorded.
    pub fn is_empty(&self) -> bool {
        self.ttl.is_none() && self.src.is_none() && self.dst.is_none()
    }
}

/// How one execution ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgOutcome {
    /// Pass the packet unchanged.
    Allow,
    /// Pass the packet with the header rewrite applied.
    Transform(Rewrite),
    /// Drop the packet (explicit `Block`, or the program ran off the end —
    /// fail closed).
    Block,
    /// The fuel budget ran out mid-execution (fail closed: the caller must
    /// block).
    FuelExhausted,
}

/// The decoded header fields one packet exposes to programs (and to the
/// enforcement pipeline — this is also `check_egress`'s input).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketView {
    /// Source address.
    pub src: IpAddr,
    /// Destination address.
    pub dst: IpAddr,
    /// IP protocol number.
    pub proto: u8,
    /// Transport source port (0 when not parsed).
    pub src_port: u16,
    /// Transport destination port (0 when not parsed).
    pub dst_port: u16,
    /// Wire length in bytes (what shapers charge).
    pub len: u32,
    /// TTL as received.
    pub ttl: u8,
}

/// Fold an address to the 64 bits programs (and the verdict cache) see.
fn fold_addr(addr: IpAddr) -> u64 {
    match addr {
        IpAddr::V4(v4) => u32::from(v4) as u64,
        IpAddr::V6(v6) => {
            let b = u128::from_be_bytes(v6.octets());
            (b >> 64) as u64 ^ b as u64
        }
    }
}

impl PacketView {
    /// A view with only the fields the pre-VM pipeline used (source and
    /// length); destination/ports zero, TTL 64. Tests and benches that
    /// only exercise anti-spoofing and shaping use this.
    pub fn basic(src: IpAddr, len: usize) -> Self {
        PacketView {
            src,
            dst: IpAddr::V4(Ipv4Addr::UNSPECIFIED),
            proto: 0,
            src_port: 0,
            dst_port: 0,
            len: len as u32,
            ttl: 64,
        }
    }

    /// The value a program reads for `field`.
    pub fn field(&self, field: Field) -> u64 {
        match field {
            Field::SrcAddr => fold_addr(self.src),
            Field::DstAddr => fold_addr(self.dst),
            Field::Proto => self.proto as u64,
            Field::SrcPort => self.src_port as u64,
            Field::DstPort => self.dst_port as u64,
            Field::Len => self.len as u64,
            Field::Ttl => self.ttl as u64,
        }
    }

    /// The flow key the verdict cache hashes: everything a flow-invariant
    /// program can observe. Packets of one flow differ only in `len`/`ttl`.
    pub fn flow_key(&self) -> (u64, u64, u64) {
        (
            fold_addr(self.src),
            fold_addr(self.dst),
            ((self.proto as u64) << 32) | ((self.src_port as u64) << 16) | self.dst_port as u64,
        )
    }
}

/// A validated-or-not packet program: instructions plus a fuel budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketProgram {
    insns: Vec<Insn>,
    fuel: u32,
}

impl PacketProgram {
    /// A program with the default fuel budget.
    pub fn new(insns: Vec<Insn>) -> Self {
        PacketProgram {
            insns,
            fuel: DEFAULT_FUEL,
        }
    }

    /// Override the fuel budget (still capped by validation at
    /// [`MAX_FUEL`]).
    pub fn with_fuel(mut self, fuel: u32) -> Self {
        self.fuel = fuel;
        self
    }

    /// The fuel budget.
    pub fn fuel(&self) -> u32 {
        self.fuel
    }

    /// The instruction list.
    pub fn insns(&self) -> &[Insn] {
        &self.insns
    }

    /// The trivial pass-everything program.
    pub fn allow_all() -> Self {
        PacketProgram::new(vec![Insn::Allow])
    }

    /// The trivial drop-everything program.
    pub fn block_all() -> Self {
        PacketProgram::new(vec![Insn::Block])
    }

    /// Install-time validation: operand ranges, jump targets, program and
    /// fuel bounds. A program that fails this must be treated as
    /// fail-closed by the caller (every packet blocked), never skipped.
    pub fn validate(&self) -> Result<(), ProgError> {
        if self.insns.is_empty() {
            return Err(ProgError::Empty);
        }
        if self.insns.len() > MAX_PROGRAM_LEN {
            return Err(ProgError::TooLong);
        }
        if self.fuel == 0 || self.fuel > MAX_FUEL {
            return Err(ProgError::BadFuel);
        }
        let len = self.insns.len() as u16;
        let reg = |r: u8, pc: usize| -> Result<(), ProgError> {
            if (r as usize) < NUM_REGS {
                Ok(())
            } else {
                Err(ProgError::BadRegister(pc))
            }
        };
        let tgt = |t: u16, pc: usize| -> Result<(), ProgError> {
            if t < len {
                Ok(())
            } else {
                Err(ProgError::BadTarget(pc))
            }
        };
        for (pc, insn) in self.insns.iter().enumerate() {
            match *insn {
                Insn::Ld(d, _) | Insn::LdImm(d, _) => reg(d, pc)?,
                Insn::Mov(d, s)
                | Insn::Add(d, s)
                | Insn::Sub(d, s)
                | Insn::And(d, s)
                | Insn::Or(d, s)
                | Insn::Xor(d, s) => {
                    reg(d, pc)?;
                    reg(s, pc)?;
                }
                Insn::ShlImm(d, _) | Insn::ShrImm(d, _) => reg(d, pc)?,
                Insn::Jmp(t) => tgt(t, pc)?,
                Insn::JeqImm(a, _, t)
                | Insn::JneImm(a, _, t)
                | Insn::JltImm(a, _, t)
                | Insn::JgtImm(a, _, t) => {
                    reg(a, pc)?;
                    tgt(t, pc)?;
                }
                Insn::Jeq(a, b, t) | Insn::Jlt(a, b, t) => {
                    reg(a, pc)?;
                    reg(b, pc)?;
                    tgt(t, pc)?;
                }
                Insn::SetTtl(s) | Insn::SetSrc(s) | Insn::SetDst(s) => reg(s, pc)?,
                Insn::Allow | Insn::Block => {}
            }
        }
        Ok(())
    }

    /// Whether every packet of one flow gets the same verdict: true iff the
    /// program never reads `Len` or `Ttl`, the only fields that vary within
    /// a flow. Only flow-invariant programs may have their verdicts cached
    /// per flow.
    pub fn flow_invariant(&self) -> bool {
        !self
            .insns
            .iter()
            .any(|i| matches!(i, Insn::Ld(_, Field::Len | Field::Ttl)))
    }

    /// Execute against one packet. Returns the outcome and the fuel
    /// consumed (`<= self.fuel`, always — the property tests pin this).
    /// Never panics on a validated program; on an unvalidated one the worst
    /// case is a `Block` via the fail-closed paths below.
    pub fn run(&self, pkt: &PacketView) -> (ProgOutcome, u32) {
        let mut regs = [0u64; NUM_REGS];
        let mut rewrite = Rewrite::default();
        let mut pc: usize = 0;
        let mut used: u32 = 0;
        while used < self.fuel {
            let Some(insn) = self.insns.get(pc) else {
                // Ran off the end: fail closed.
                return (ProgOutcome::Block, used);
            };
            used += 1;
            pc += 1;
            match *insn {
                Insn::Ld(d, f) => regs[d as usize & (NUM_REGS - 1)] = pkt.field(f),
                Insn::LdImm(d, imm) => regs[d as usize & (NUM_REGS - 1)] = imm,
                Insn::Mov(d, s) => {
                    regs[d as usize & (NUM_REGS - 1)] = regs[s as usize & (NUM_REGS - 1)]
                }
                Insn::Add(d, s) => {
                    let v = regs[s as usize & (NUM_REGS - 1)];
                    let d = &mut regs[d as usize & (NUM_REGS - 1)];
                    *d = d.wrapping_add(v);
                }
                Insn::Sub(d, s) => {
                    let v = regs[s as usize & (NUM_REGS - 1)];
                    let d = &mut regs[d as usize & (NUM_REGS - 1)];
                    *d = d.wrapping_sub(v);
                }
                Insn::And(d, s) => {
                    let v = regs[s as usize & (NUM_REGS - 1)];
                    regs[d as usize & (NUM_REGS - 1)] &= v;
                }
                Insn::Or(d, s) => {
                    let v = regs[s as usize & (NUM_REGS - 1)];
                    regs[d as usize & (NUM_REGS - 1)] |= v;
                }
                Insn::Xor(d, s) => {
                    let v = regs[s as usize & (NUM_REGS - 1)];
                    regs[d as usize & (NUM_REGS - 1)] ^= v;
                }
                Insn::ShlImm(d, amt) => regs[d as usize & (NUM_REGS - 1)] <<= (amt & 63) as u32,
                Insn::ShrImm(d, amt) => regs[d as usize & (NUM_REGS - 1)] >>= (amt & 63) as u32,
                Insn::Jmp(t) => pc = t as usize,
                Insn::JeqImm(a, imm, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] == imm {
                        pc = t as usize;
                    }
                }
                Insn::JneImm(a, imm, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] != imm {
                        pc = t as usize;
                    }
                }
                Insn::JltImm(a, imm, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] < imm {
                        pc = t as usize;
                    }
                }
                Insn::JgtImm(a, imm, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] > imm {
                        pc = t as usize;
                    }
                }
                Insn::Jeq(a, b, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] == regs[b as usize & (NUM_REGS - 1)] {
                        pc = t as usize;
                    }
                }
                Insn::Jlt(a, b, t) => {
                    if regs[a as usize & (NUM_REGS - 1)] < regs[b as usize & (NUM_REGS - 1)] {
                        pc = t as usize;
                    }
                }
                Insn::SetTtl(s) => {
                    rewrite.ttl = Some(regs[s as usize & (NUM_REGS - 1)] as u8);
                }
                Insn::SetSrc(s) => {
                    rewrite.src = Some(Ipv4Addr::from(regs[s as usize & (NUM_REGS - 1)] as u32));
                }
                Insn::SetDst(s) => {
                    rewrite.dst = Some(Ipv4Addr::from(regs[s as usize & (NUM_REGS - 1)] as u32));
                }
                Insn::Allow => {
                    let outcome = if rewrite.is_empty() {
                        ProgOutcome::Allow
                    } else {
                        ProgOutcome::Transform(rewrite)
                    };
                    return (outcome, used);
                }
                Insn::Block => return (ProgOutcome::Block, used),
            }
        }
        (ProgOutcome::FuelExhausted, used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt() -> PacketView {
        PacketView {
            src: "184.164.224.9".parse().unwrap(),
            dst: "8.8.8.8".parse().unwrap(),
            proto: 17,
            src_port: 5353,
            dst_port: 53,
            len: 120,
            ttl: 64,
        }
    }

    #[test]
    fn trivial_programs() {
        assert_eq!(PacketProgram::allow_all().run(&pkt()).0, ProgOutcome::Allow);
        assert_eq!(PacketProgram::block_all().run(&pkt()).0, ProgOutcome::Block);
        assert!(PacketProgram::allow_all().validate().is_ok());
    }

    #[test]
    fn branch_on_field() {
        // Block UDP to port 53, allow everything else.
        let p = PacketProgram::new(vec![
            Insn::Ld(0, Field::Proto),
            Insn::JneImm(0, 17, 5),
            Insn::Ld(1, Field::DstPort),
            Insn::JneImm(1, 53, 5),
            Insn::Block,
            Insn::Allow,
        ]);
        assert!(p.validate().is_ok());
        assert_eq!(p.run(&pkt()).0, ProgOutcome::Block);
        let mut tcp = pkt();
        tcp.proto = 6;
        assert_eq!(p.run(&tcp).0, ProgOutcome::Allow);
        let mut other_port = pkt();
        other_port.dst_port = 443;
        assert_eq!(p.run(&other_port).0, ProgOutcome::Allow);
    }

    #[test]
    fn transform_records_rewrite() {
        let p = PacketProgram::new(vec![
            Insn::LdImm(0, 9),
            Insn::SetTtl(0),
            Insn::LdImm(1, u32::from(Ipv4Addr::new(10, 0, 0, 1)) as u64),
            Insn::SetDst(1),
            Insn::Allow,
        ]);
        let (out, _) = p.run(&pkt());
        let ProgOutcome::Transform(rw) = out else {
            panic!("expected transform, got {out:?}");
        };
        assert_eq!(rw.ttl, Some(9));
        assert_eq!(rw.dst, Some(Ipv4Addr::new(10, 0, 0, 1)));
        assert_eq!(rw.src, None);
    }

    #[test]
    fn bounded_loop_terminates_within_fuel() {
        // r0 counts down from 10; the loop body is 2 instructions.
        let p = PacketProgram::new(vec![
            Insn::LdImm(0, 10),
            Insn::LdImm(1, 1),
            Insn::Sub(0, 1),
            Insn::JneImm(0, 0, 2),
            Insn::Allow,
        ]);
        let (out, used) = p.run(&pkt());
        assert_eq!(out, ProgOutcome::Allow);
        assert!(used <= p.fuel());
        assert_eq!(used, 2 + 2 * 10 + 1);
    }

    #[test]
    fn infinite_loop_exhausts_fuel() {
        let p = PacketProgram::new(vec![Insn::Jmp(0)]).with_fuel(64);
        let (out, used) = p.run(&pkt());
        assert_eq!(out, ProgOutcome::FuelExhausted);
        assert_eq!(used, 64);
    }

    #[test]
    fn running_off_the_end_blocks() {
        let p = PacketProgram::new(vec![Insn::LdImm(0, 1)]);
        assert_eq!(p.run(&pkt()).0, ProgOutcome::Block);
    }

    #[test]
    fn validation_rejects_malformed() {
        assert_eq!(PacketProgram::new(vec![]).validate(), Err(ProgError::Empty));
        assert_eq!(
            PacketProgram::new(vec![Insn::LdImm(8, 0), Insn::Allow]).validate(),
            Err(ProgError::BadRegister(0))
        );
        assert_eq!(
            PacketProgram::new(vec![Insn::Jmp(7)]).validate(),
            Err(ProgError::BadTarget(0))
        );
        assert_eq!(
            PacketProgram::allow_all().with_fuel(0).validate(),
            Err(ProgError::BadFuel)
        );
        assert_eq!(
            PacketProgram::allow_all()
                .with_fuel(MAX_FUEL + 1)
                .validate(),
            Err(ProgError::BadFuel)
        );
        let long = PacketProgram::new(vec![Insn::Allow; MAX_PROGRAM_LEN + 1]);
        assert_eq!(long.validate(), Err(ProgError::TooLong));
    }

    #[test]
    fn flow_invariance_detection() {
        assert!(PacketProgram::allow_all().flow_invariant());
        let reads_len = PacketProgram::new(vec![Insn::Ld(0, Field::Len), Insn::Allow]);
        assert!(!reads_len.flow_invariant());
        let reads_ttl = PacketProgram::new(vec![Insn::Ld(0, Field::Ttl), Insn::Allow]);
        assert!(!reads_ttl.flow_invariant());
        let reads_ports = PacketProgram::new(vec![Insn::Ld(0, Field::DstPort), Insn::Allow]);
        assert!(reads_ports.flow_invariant());
    }

    #[test]
    fn v6_addresses_fold() {
        let mut v6 = pkt();
        v6.src = "2804:269c::1".parse().unwrap();
        let p = PacketProgram::new(vec![Insn::Ld(0, Field::SrcAddr), Insn::Allow]);
        // Just exercises the fold path; the fold is deterministic.
        assert_eq!(p.run(&v6).0, ProgOutcome::Allow);
        assert_eq!(
            PacketView::basic(v6.src, 10).field(Field::SrcAddr),
            v6.field(Field::SrcAddr)
        );
    }
}
