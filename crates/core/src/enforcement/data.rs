//! Data-plane enforcement (paper §3.3 "Data plane enforcement", §4.7).
//!
//! The paper loads eBPF programs that inspect each packet between the
//! experiments and the Internet and render stateless or stateful verdicts:
//! allow, transform, or block. This module reproduces that interposition
//! point: per-experiment source validation (anti-spoofing — "an experiment
//! cannot source traffic using address space that is not part of the
//! experiment's allocation"), per-experiment and per-PoP token-bucket rate
//! limiting ("Peering shapes traffic at (two) sites with bandwidth
//! constraints"), and per-neighbor limits.

use std::collections::HashMap;
use std::net::IpAddr;

use peering_bgp::types::Prefix;
use peering_netsim::{SimDuration, SimTime};

use crate::ids::{ExperimentId, NeighborId};

/// Verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataVerdict {
    /// Forward the packet.
    Allow,
    /// Drop it; the label names the policy that fired (for attribution
    /// logs, §3.3).
    Block(&'static str),
}

impl DataVerdict {
    /// Whether the packet passes.
    pub fn is_allow(self) -> bool {
        matches!(self, DataVerdict::Allow)
    }
}

/// A token bucket (the classic shaper the paper's eBPF programs implement).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained rate in bytes per second.
    pub rate_bytes_per_sec: u64,
    /// Bucket depth in bytes.
    pub burst_bytes: u64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    /// Try to consume `len` bytes at time `now`.
    pub fn admit(&mut self, len: usize, now: SimTime) -> bool {
        let elapsed = now.saturating_since(self.last);
        self.last = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.rate_bytes_per_sec as f64)
            .min(self.burst_bytes as f64);
        if self.tokens >= len as f64 {
            self.tokens -= len as f64;
            true
        } else {
            false
        }
    }

    /// Time until `len` bytes would be admitted (for diagnostics).
    pub fn time_until(&self, len: usize) -> SimDuration {
        if self.tokens >= len as f64 || self.rate_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let deficit = len as f64 - self.tokens;
        SimDuration::from_secs_f64(deficit / self.rate_bytes_per_sec as f64)
    }
}

/// Per-experiment data-plane policy.
#[derive(Debug, Clone, Default)]
pub struct ExperimentDataPolicy {
    /// Source prefixes the experiment may emit from (its allocation).
    pub allowed_sources: Vec<Prefix>,
    /// Optional per-experiment egress shaper (bytes/s, burst).
    pub rate: Option<(u64, u64)>,
}

/// Counters for the data-plane pipeline.
#[derive(Debug, Clone, Default)]
pub struct DataStats {
    /// Packets evaluated.
    pub evaluated: u64,
    /// Packets allowed.
    pub allowed: u64,
    /// Drops by policy label.
    pub blocked: HashMap<&'static str, u64>,
}

/// The data-plane enforcement engine for one PoP.
#[derive(Debug, Default)]
pub struct DataEnforcer {
    policies: HashMap<ExperimentId, ExperimentDataPolicy>,
    buckets: HashMap<ExperimentId, TokenBucket>,
    /// Optional whole-PoP shaper (the two bandwidth-constrained sites).
    pop_shaper: Option<TokenBucket>,
    /// Optional per-neighbor shapers.
    neighbor_shapers: HashMap<NeighborId, TokenBucket>,
    /// Counters.
    pub stats: DataStats,
}

impl DataEnforcer {
    /// An enforcer with no site-wide constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Configure a whole-PoP egress shaper.
    pub fn set_pop_shaper(&mut self, rate_bytes_per_sec: u64, burst_bytes: u64) {
        self.pop_shaper = Some(TokenBucket::new(rate_bytes_per_sec, burst_bytes));
    }

    /// Configure a per-neighbor shaper.
    pub fn set_neighbor_shaper(
        &mut self,
        nbr: NeighborId,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) {
        self.neighbor_shapers
            .insert(nbr, TokenBucket::new(rate_bytes_per_sec, burst_bytes));
    }

    /// Register (or update) an experiment's data-plane policy.
    pub fn set_experiment(&mut self, exp: ExperimentId, policy: ExperimentDataPolicy) {
        if let Some((rate, burst)) = policy.rate {
            self.buckets.insert(exp, TokenBucket::new(rate, burst));
        } else {
            self.buckets.remove(&exp);
        }
        self.policies.insert(exp, policy);
    }

    /// Remove an experiment.
    pub fn remove_experiment(&mut self, exp: ExperimentId) {
        self.policies.remove(&exp);
        self.buckets.remove(&exp);
    }

    /// Whether an experiment has a registered policy.
    pub fn has_experiment(&self, exp: ExperimentId) -> bool {
        self.policies.contains_key(&exp)
    }

    fn block(&mut self, label: &'static str) -> DataVerdict {
        *self.stats.blocked.entry(label).or_insert(0) += 1;
        DataVerdict::Block(label)
    }

    /// Evaluate one egress packet (experiment → Internet): source
    /// validation, then per-experiment, per-neighbor and per-PoP shaping.
    pub fn check_egress(
        &mut self,
        exp: ExperimentId,
        src: IpAddr,
        len: usize,
        nbr: Option<NeighborId>,
        now: SimTime,
    ) -> DataVerdict {
        self.stats.evaluated += 1;
        let Some(policy) = self.policies.get(&exp) else {
            // Unknown experiment: fail closed.
            return self.block("unknown-experiment");
        };
        // Anti-spoofing: the source must fall in the allocation.
        if !policy.allowed_sources.iter().any(|p| p.contains_addr(src)) {
            return self.block("spoofed-source");
        }
        if let Some(bucket) = self.buckets.get_mut(&exp) {
            if !bucket.admit(len, now) {
                return self.block("experiment-rate-limit");
            }
        }
        if let Some(nbr) = nbr {
            if let Some(bucket) = self.neighbor_shapers.get_mut(&nbr) {
                if !bucket.admit(len, now) {
                    return self.block("neighbor-rate-limit");
                }
            }
        }
        if let Some(bucket) = self.pop_shaper.as_mut() {
            if !bucket.admit(len, now) {
                return self.block("pop-rate-limit");
            }
        }
        self.stats.allowed += 1;
        DataVerdict::Allow
    }

    /// Batched [`Self::check_egress`] for a run of packets from one
    /// experiment toward one neighbor: the policy and shaper lookups are
    /// hoisted out of the per-packet loop. Verdicts are identical to
    /// calling `check_egress` once per packet in order (token buckets are
    /// stateful, so packets are still admitted sequentially). `out[i]`
    /// corresponds to `pkts[i]` (`(source, wire length)`); `out` is cleared
    /// first (caller-owned scratch).
    pub fn check_egress_batch(
        &mut self,
        exp: ExperimentId,
        pkts: &[(IpAddr, usize)],
        nbr: Option<NeighborId>,
        now: SimTime,
        out: &mut Vec<DataVerdict>,
    ) {
        out.clear();
        self.stats.evaluated += pkts.len() as u64;
        let Some(policy) = self.policies.get(&exp) else {
            *self.stats.blocked.entry("unknown-experiment").or_insert(0) += pkts.len() as u64;
            out.resize(pkts.len(), DataVerdict::Block("unknown-experiment"));
            return;
        };
        // Pass 1: anti-spoofing, against the one policy borrow.
        for &(src, _) in pkts {
            if policy.allowed_sources.iter().any(|p| p.contains_addr(src)) {
                out.push(DataVerdict::Allow);
            } else {
                *self.stats.blocked.entry("spoofed-source").or_insert(0) += 1;
                out.push(DataVerdict::Block("spoofed-source"));
            }
        }
        // Pass 2: shaping. The three bucket references are disjoint fields,
        // so they can be hoisted together; admission stays in packet order.
        let mut exp_bucket = self.buckets.get_mut(&exp);
        let mut nbr_bucket = nbr.and_then(|n| self.neighbor_shapers.get_mut(&n));
        let mut pop_bucket = self.pop_shaper.as_mut();
        let mut allowed = 0u64;
        for (i, &(_, len)) in pkts.iter().enumerate() {
            if !out[i].is_allow() {
                continue;
            }
            let mut label: Option<&'static str> = None;
            if let Some(b) = exp_bucket.as_deref_mut() {
                if !b.admit(len, now) {
                    label = Some("experiment-rate-limit");
                }
            }
            if label.is_none() {
                if let Some(b) = nbr_bucket.as_deref_mut() {
                    if !b.admit(len, now) {
                        label = Some("neighbor-rate-limit");
                    }
                }
            }
            if label.is_none() {
                if let Some(b) = pop_bucket.as_deref_mut() {
                    if !b.admit(len, now) {
                        label = Some("pop-rate-limit");
                    }
                }
            }
            match label {
                Some(l) => {
                    *self.stats.blocked.entry(l).or_insert(0) += 1;
                    out[i] = DataVerdict::Block(l);
                }
                None => allowed += 1,
            }
        }
        self.stats.allowed += allowed;
    }

    /// Evaluate one ingress packet (Internet → experiment). The platform
    /// does not police ingress content beyond delivering only traffic for
    /// the experiment's prefixes (§4.7: "We do not currently police
    /// dataplane content beyond verifying the source IP address"), so this
    /// only verifies the destination belongs to the experiment.
    pub fn check_ingress(&mut self, exp: ExperimentId, dst: IpAddr) -> DataVerdict {
        self.stats.evaluated += 1;
        let Some(policy) = self.policies.get(&exp) else {
            return self.block("unknown-experiment");
        };
        if !policy.allowed_sources.iter().any(|p| p.contains_addr(dst)) {
            return self.block("not-experiment-destination");
        }
        self.stats.allowed += 1;
        DataVerdict::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::types::prefix;

    const EXP: ExperimentId = ExperimentId(1);

    fn enforcer() -> DataEnforcer {
        let mut e = DataEnforcer::new();
        e.set_experiment(
            EXP,
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.224.0/23")],
                rate: None,
            },
        );
        e
    }

    fn src(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    #[test]
    fn valid_source_allowed() {
        let mut e = enforcer();
        let v = e.check_egress(EXP, src("184.164.224.9"), 100, None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Allow);
        assert_eq!(e.stats.allowed, 1);
    }

    #[test]
    fn spoofed_source_blocked() {
        let mut e = enforcer();
        let v = e.check_egress(EXP, src("8.8.8.8"), 100, None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("spoofed-source"));
        assert!(!v.is_allow());
        assert_eq!(e.stats.blocked["spoofed-source"], 1);
    }

    #[test]
    fn unknown_experiment_fails_closed() {
        let mut e = enforcer();
        let v = e.check_egress(
            ExperimentId(9),
            src("184.164.224.9"),
            100,
            None,
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("unknown-experiment"));
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut b = TokenBucket::new(1000, 1000); // 1 kB/s, 1 kB burst
        assert!(b.admit(1000, SimTime::ZERO));
        assert!(!b.admit(1, SimTime::ZERO));
        assert!(b.time_until(500) > SimDuration::ZERO);
        // After 500 ms, 500 bytes refilled.
        let t = SimTime::ZERO + SimDuration::from_millis(500);
        assert!(b.admit(400, t));
        assert!(!b.admit(200, t));
        // Never exceeds burst depth.
        let much_later = SimTime::ZERO + SimDuration::from_secs(100);
        assert!(b.admit(1000, much_later));
        assert!(!b.admit(1, much_later));
    }

    #[test]
    fn experiment_rate_limit_applies() {
        let mut e = enforcer();
        e.set_experiment(
            EXP,
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.224.0/23")],
                rate: Some((1000, 1500)),
            },
        );
        assert!(e
            .check_egress(EXP, src("184.164.224.1"), 1500, None, SimTime::ZERO)
            .is_allow());
        let v = e.check_egress(EXP, src("184.164.224.1"), 100, None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("experiment-rate-limit"));
    }

    #[test]
    fn pop_shaper_caps_all_experiments() {
        let mut e = enforcer();
        e.set_experiment(
            ExperimentId(2),
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.226.0/24")],
                rate: None,
            },
        );
        e.set_pop_shaper(1000, 1000);
        assert!(e
            .check_egress(EXP, src("184.164.224.1"), 800, None, SimTime::ZERO)
            .is_allow());
        // A different experiment shares the site budget.
        let v = e.check_egress(
            ExperimentId(2),
            src("184.164.226.1"),
            800,
            None,
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("pop-rate-limit"));
    }

    #[test]
    fn neighbor_shaper_is_per_neighbor() {
        let mut e = enforcer();
        e.set_neighbor_shaper(NeighborId(1), 1000, 1000);
        assert!(e
            .check_egress(
                EXP,
                src("184.164.224.1"),
                900,
                Some(NeighborId(1)),
                SimTime::ZERO
            )
            .is_allow());
        let v = e.check_egress(
            EXP,
            src("184.164.224.1"),
            900,
            Some(NeighborId(1)),
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("neighbor-rate-limit"));
        // Another neighbor is unconstrained.
        assert!(e
            .check_egress(
                EXP,
                src("184.164.224.1"),
                900,
                Some(NeighborId(2)),
                SimTime::ZERO
            )
            .is_allow());
    }

    #[test]
    fn batch_matches_sequential_singles() {
        // Two enforcers with identical config; one sees the packets as a
        // batch, the other one at a time. Verdicts and stats must agree,
        // including short-circuit bucket charging.
        let make = || {
            let mut e = enforcer();
            e.set_experiment(
                EXP,
                ExperimentDataPolicy {
                    allowed_sources: vec![prefix("184.164.224.0/23")],
                    rate: Some((1000, 2000)),
                },
            );
            e.set_neighbor_shaper(NeighborId(1), 1000, 1500);
            e.set_pop_shaper(1000, 1200);
            e
        };
        let pkts: Vec<(IpAddr, usize)> = vec![
            (src("184.164.224.1"), 1000),
            (src("8.8.8.8"), 100), // spoofed: must not charge any bucket
            (src("184.164.224.2"), 600),
            (src("184.164.224.3"), 600), // pop bucket exhausted here
            (src("184.164.225.4"), 100),
        ];
        let mut sequential = make();
        let singles: Vec<DataVerdict> = pkts
            .iter()
            .map(|&(s, l)| sequential.check_egress(EXP, s, l, Some(NeighborId(1)), SimTime::ZERO))
            .collect();
        let mut batched = make();
        let mut verdicts = Vec::new();
        batched.check_egress_batch(
            EXP,
            &pkts,
            Some(NeighborId(1)),
            SimTime::ZERO,
            &mut verdicts,
        );
        assert_eq!(verdicts, singles);
        assert_eq!(batched.stats.evaluated, sequential.stats.evaluated);
        assert_eq!(batched.stats.allowed, sequential.stats.allowed);
        assert_eq!(batched.stats.blocked, sequential.stats.blocked);
        // Unknown experiment fails the whole batch closed.
        batched.check_egress_batch(ExperimentId(9), &pkts, None, SimTime::ZERO, &mut verdicts);
        assert!(verdicts
            .iter()
            .all(|v| *v == DataVerdict::Block("unknown-experiment")));
    }

    #[test]
    fn ingress_checks_destination_ownership() {
        let mut e = enforcer();
        assert!(e.check_ingress(EXP, src("184.164.225.7")).is_allow());
        assert_eq!(
            e.check_ingress(EXP, src("9.9.9.9")),
            DataVerdict::Block("not-experiment-destination")
        );
    }

    #[test]
    fn removed_experiment_fails_closed() {
        let mut e = enforcer();
        e.remove_experiment(EXP);
        let v = e.check_egress(EXP, src("184.164.224.1"), 10, None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("unknown-experiment"));
    }
}
