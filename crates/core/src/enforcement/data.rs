//! Data-plane enforcement (paper §3.3 "Data plane enforcement", §4.7).
//!
//! The paper loads eBPF programs that inspect each packet between the
//! experiments and the Internet and render stateless or stateful verdicts:
//! allow, transform, or block. This module reproduces that interposition
//! point: per-experiment source validation (anti-spoofing — "an experiment
//! cannot source traffic using address space that is not part of the
//! experiment's allocation"), per-experiment sandboxed packet programs
//! (see [`crate::enforcement::pprog`]), per-experiment and per-PoP
//! token-bucket rate limiting ("Peering shapes traffic at (two) sites with
//! bandwidth constraints"), and per-neighbor limits.
//!
//! Packet programs run after the source-prefix check and before shaping.
//! Their verdicts are cached in a direct-mapped flow cache (same shape as
//! the mux's) keyed off a policy generation, so a flow-invariant program
//! executes once per flow, not once per packet; any policy change bumps the
//! generation and wholesale-invalidates the cache. A malformed program or a
//! fuel-exhausted run fails closed: verdict `Block`, counted in
//! [`DataStats::blocked`], journaled via `peering-obs`.

use std::collections::HashMap;
use std::hash::Hasher;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::{Arc, Mutex};

use peering_bgp::types::Prefix;
use peering_netsim::{SimDuration, SimTime};
use peering_obs::{EventKind, Obs};

use crate::fasthash::FxHasher;
use crate::ids::{ExperimentId, NeighborId, PopId};

use super::control::RateLedger;
use super::pprog::{PacketProgram, PacketView, ProgError, ProgOutcome, Rewrite};

/// Verdict for one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataVerdict {
    /// Forward the packet.
    Allow,
    /// Forward the packet with the header rewrite applied (a packet
    /// program's transform verdict, §3.3).
    Transform(Rewrite),
    /// Drop it; the label names the policy that fired (for attribution
    /// logs, §3.3).
    Block(&'static str),
}

impl DataVerdict {
    /// Whether the packet passes (possibly rewritten).
    pub fn is_allow(self) -> bool {
        matches!(self, DataVerdict::Allow | DataVerdict::Transform(_))
    }
}

/// A token bucket (the classic shaper the paper's eBPF programs implement).
#[derive(Debug, Clone)]
pub struct TokenBucket {
    /// Sustained rate in bytes per second.
    pub rate_bytes_per_sec: u64,
    /// Bucket depth in bytes.
    pub burst_bytes: u64,
    tokens: f64,
    last: SimTime,
}

impl TokenBucket {
    /// A bucket starting full.
    pub fn new(rate_bytes_per_sec: u64, burst_bytes: u64) -> Self {
        TokenBucket {
            rate_bytes_per_sec,
            burst_bytes,
            tokens: burst_bytes as f64,
            last: SimTime::ZERO,
        }
    }

    /// Tokens available at `now`: the stored level plus refill accrued
    /// since the last charge, capped at the burst depth.
    fn tokens_at(&self, now: SimTime) -> f64 {
        let elapsed = now.saturating_since(self.last);
        (self.tokens + elapsed.as_secs_f64() * self.rate_bytes_per_sec as f64)
            .min(self.burst_bytes as f64)
    }

    /// Try to consume `len` bytes at time `now`.
    pub fn admit(&mut self, len: usize, now: SimTime) -> bool {
        self.tokens = self.tokens_at(now);
        self.last = now;
        if self.tokens >= len as f64 {
            self.tokens -= len as f64;
            true
        } else {
            false
        }
    }

    /// Time until `len` bytes would be admitted, measured from `now` (for
    /// diagnostics). Projects the refill accrued since the last charge
    /// forward before computing the deficit — without that, any idle
    /// period inflates the answer.
    pub fn time_until(&self, len: usize, now: SimTime) -> SimDuration {
        let tokens = self.tokens_at(now);
        if tokens >= len as f64 || self.rate_bytes_per_sec == 0 {
            return SimDuration::ZERO;
        }
        let deficit = len as f64 - tokens;
        SimDuration::from_secs_f64(deficit / self.rate_bytes_per_sec as f64)
    }
}

/// Ingress flood budget: packets per flood window
/// ([`super::control::FLOOD_WINDOW_SECS`]) charged against `(experiment,
/// aggregated source prefix)` buckets in the shared [`RateLedger`]. The
/// per-PoP limit is exact; the AS-wide limit is enforced on each PoP's
/// best knowledge, reconciled by backbone gossip — the same
/// eventual-consistency contract as the update-rate ledger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FloodPolicy {
    /// Source aggregation: sources are bucketed by their first
    /// `bucket_len` bits (16 groups a /16's worth of spoof-rotating
    /// sources into one budget).
    pub bucket_len: u8,
    /// Packets one PoP admits per bucket per window.
    pub per_pop_limit: u32,
    /// Optional platform-wide packets per bucket per window.
    pub as_wide_limit: Option<u32>,
}

/// Per-experiment data-plane policy.
#[derive(Debug, Clone, Default)]
pub struct ExperimentDataPolicy {
    /// Source prefixes the experiment may emit from (its allocation).
    pub allowed_sources: Vec<Prefix>,
    /// Optional per-experiment egress shaper (bytes/s, burst).
    pub rate: Option<(u64, u64)>,
    /// Optional sandboxed packet program (§3.3). A program that fails
    /// validation is still installed and blocks every packet (fail
    /// closed).
    pub program: Option<PacketProgram>,
    /// Strict reverse-path validation on ingress: traffic arriving from a
    /// neighbor is dropped unless that neighbor's own table covers the
    /// claimed source. Off by default (the paper's platform does not
    /// police ingress content, §4.7) — serving experiments opt in.
    pub ingress_urpf: bool,
    /// Optional sandboxed packet program run on *ingress* (traffic toward
    /// the experiment), with the same fail-closed semantics as `program`.
    pub ingress_program: Option<PacketProgram>,
    /// Optional ingress flood budget (see [`FloodPolicy`]).
    pub flood: Option<FloodPolicy>,
}

/// Counters for the data-plane pipeline.
#[derive(Debug, Clone, Default)]
pub struct DataStats {
    /// Egress packets evaluated.
    pub evaluated: u64,
    /// Egress packets allowed.
    pub allowed: u64,
    /// Packet-program executions (cache misses), egress + ingress.
    pub prog_runs: u64,
    /// Packet-program verdicts served from the flow cache, egress +
    /// ingress.
    pub prog_cache_hits: u64,
    /// Egress drops by policy label.
    pub blocked: HashMap<&'static str, u64>,
    /// Ingress packets evaluated by the full pipeline
    /// ([`DataEnforcer::check_ingress_batch`]).
    pub ingress_evaluated: u64,
    /// Ingress packets allowed through to delivery.
    pub ingress_allowed: u64,
    /// Ingress drops by policy label (`urpf`, `flood-budget`, the
    /// program labels, …).
    pub ingress_blocked: HashMap<&'static str, u64>,
}

/// What a packet program decided for a flow — the unit the verdict cache
/// stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgDecision {
    Pass,
    Rewrite(Rewrite),
    Block(&'static str),
}

/// Install-time digest of an experiment's program.
#[derive(Debug, Clone)]
struct ProgEntry {
    program: PacketProgram,
    /// Validation result at install time; an invalid entry blocks every
    /// packet (fail closed), it is never skipped.
    valid: bool,
    /// Whether per-flow verdict caching is sound for this program.
    flow_invariant: bool,
}

/// One verdict-cache slot: `(experiment, flow key, generation, decision)`;
/// generation 0 means the slot was never written.
type VerdictSlot = (u32, (u64, u64, u64), u64, ProgDecision);

/// Direct-mapped program-verdict cache, the same shape as the mux's flow
/// cache: no chaining, no eviction policy, a generation stamp instead of
/// invalidation walks. Slots whose generation is stale are simply misses,
/// so a policy change invalidates wholesale by bumping the generation.
struct VerdictCache {
    slots: Box<[VerdictSlot]>,
}

const VERDICT_CACHE_SLOTS: usize = 4096;

impl VerdictCache {
    fn new() -> Self {
        VerdictCache {
            slots: vec![(0, (0, 0, 0), 0, ProgDecision::Pass); VERDICT_CACHE_SLOTS]
                .into_boxed_slice(),
        }
    }

    fn index(exp: u32, key: (u64, u64, u64)) -> usize {
        let mut h = FxHasher::default();
        h.write_u32(exp);
        h.write_u64(key.0);
        h.write_u64(key.1);
        h.write_u64(key.2);
        h.finish() as usize & (VERDICT_CACHE_SLOTS - 1)
    }

    fn get(&self, exp: u32, key: (u64, u64, u64), generation: u64) -> Option<ProgDecision> {
        let s = &self.slots[Self::index(exp, key)];
        if s.0 == exp && s.1 == key && s.2 == generation {
            Some(s.3)
        } else {
            None
        }
    }

    fn put(&mut self, exp: u32, key: (u64, u64, u64), generation: u64, decision: ProgDecision) {
        self.slots[Self::index(exp, key)] = (exp, key, generation, decision);
    }
}

/// The data-plane enforcement engine for one PoP.
pub struct DataEnforcer {
    policies: HashMap<ExperimentId, ExperimentDataPolicy>,
    buckets: HashMap<ExperimentId, TokenBucket>,
    /// Optional whole-PoP shaper (the two bandwidth-constrained sites).
    pop_shaper: Option<TokenBucket>,
    /// Optional per-neighbor shapers.
    neighbor_shapers: HashMap<NeighborId, TokenBucket>,
    /// Per-experiment packet programs (digested at install time).
    programs: HashMap<ExperimentId, ProgEntry>,
    /// Per-experiment *ingress* packet programs. Separate map so the two
    /// directions version and fail independently; verdicts share the one
    /// cache with the experiment key's top bit set (see
    /// [`INGRESS_CACHE_BIT`]).
    ingress_programs: HashMap<ExperimentId, ProgEntry>,
    /// Program-verdict flow cache; entries are valid only for the current
    /// generation.
    verdict_cache: VerdictCache,
    /// Bumped on every policy install/remove: wholesale cache
    /// invalidation. Starts at 1 so generation 0 marks empty slots.
    prog_generation: u64,
    /// The shared rate ledger flood budgets are charged against, plus the
    /// PoP identity the charges are filed under. `None` until the
    /// platform wires it (standalone enforcers skip flood budgeting).
    flood_ledger: Option<(PopId, Arc<Mutex<RateLedger>>)>,
    /// Journal handle (fail-closed events).
    obs: Obs,
    /// Counters.
    pub stats: DataStats,
}

/// Top bit of the verdict-cache experiment key, set for ingress-program
/// verdicts so the two directions of one experiment never alias a slot.
/// Experiment ids are small integers handed out by the platform, far
/// below this bit.
const INGRESS_CACHE_BIT: u32 = 0x8000_0000;

impl Default for DataEnforcer {
    fn default() -> Self {
        DataEnforcer {
            policies: HashMap::new(),
            buckets: HashMap::new(),
            pop_shaper: None,
            neighbor_shapers: HashMap::new(),
            programs: HashMap::new(),
            ingress_programs: HashMap::new(),
            verdict_cache: VerdictCache::new(),
            prog_generation: 1,
            flood_ledger: None,
            obs: Obs::new(),
            stats: DataStats::default(),
        }
    }
}

impl DataEnforcer {
    /// An enforcer with no site-wide constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attach a shared observability handle (fail-closed journal events).
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Configure a whole-PoP egress shaper.
    pub fn set_pop_shaper(&mut self, rate_bytes_per_sec: u64, burst_bytes: u64) {
        self.pop_shaper = Some(TokenBucket::new(rate_bytes_per_sec, burst_bytes));
    }

    /// Configure a per-neighbor shaper.
    pub fn set_neighbor_shaper(
        &mut self,
        nbr: NeighborId,
        rate_bytes_per_sec: u64,
        burst_bytes: u64,
    ) {
        self.neighbor_shapers
            .insert(nbr, TokenBucket::new(rate_bytes_per_sec, burst_bytes));
    }

    /// Wire the shared rate ledger flood budgets are charged against (and
    /// the PoP identity to file charges under). Without this, flood
    /// policies are inert.
    pub fn set_flood_ledger(&mut self, pop: PopId, ledger: Arc<Mutex<RateLedger>>) {
        self.flood_ledger = Some((pop, ledger));
    }

    /// Register (or update) an experiment's data-plane policy. Any change
    /// bumps the program generation, invalidating cached verdicts.
    pub fn set_experiment(&mut self, exp: ExperimentId, policy: ExperimentDataPolicy) {
        if let Some((rate, burst)) = policy.rate {
            self.buckets.insert(exp, TokenBucket::new(rate, burst));
        } else {
            self.buckets.remove(&exp);
        }
        // Validation failure is not an error here: the invalid program is
        // installed fail-closed and the install event journals it.
        let _ = self.install_program_entry(exp, policy.program.clone(), false);
        let _ = self.install_program_entry(exp, policy.ingress_program.clone(), true);
        self.policies.insert(exp, policy);
    }

    /// Install (or clear, with `None`) an experiment's packet program
    /// without touching the rest of its policy. Returns the validation
    /// result; an invalid program is still installed and blocks every
    /// packet (fail closed) — the error tells the experimenter why.
    pub fn install_packet_program(
        &mut self,
        exp: ExperimentId,
        program: Option<PacketProgram>,
    ) -> Result<(), ProgError> {
        let result = self.install_program_entry(exp, program.clone(), false);
        if let Some(policy) = self.policies.get_mut(&exp) {
            policy.program = program;
        }
        result
    }

    /// Install (or clear) an experiment's *ingress* packet program, with
    /// the same fail-closed contract as
    /// [`DataEnforcer::install_packet_program`].
    pub fn install_ingress_program(
        &mut self,
        exp: ExperimentId,
        program: Option<PacketProgram>,
    ) -> Result<(), ProgError> {
        let result = self.install_program_entry(exp, program.clone(), true);
        if let Some(policy) = self.policies.get_mut(&exp) {
            policy.ingress_program = program;
        }
        result
    }

    /// Update an experiment's ingress knobs (uRPF, flood budget) without
    /// touching its program or egress policy.
    pub fn set_ingress_guards(
        &mut self,
        exp: ExperimentId,
        urpf: bool,
        flood: Option<FloodPolicy>,
    ) {
        if let Some(policy) = self.policies.get_mut(&exp) {
            policy.ingress_urpf = urpf;
            policy.flood = flood;
        }
    }

    /// Digest a program at install time and bump the cache generation.
    fn install_program_entry(
        &mut self,
        exp: ExperimentId,
        program: Option<PacketProgram>,
        ingress: bool,
    ) -> Result<(), ProgError> {
        self.prog_generation += 1;
        let map = if ingress {
            &mut self.ingress_programs
        } else {
            &mut self.programs
        };
        let Some(program) = program else {
            map.remove(&exp);
            return Ok(());
        };
        let validation = program.validate();
        let valid = validation.is_ok();
        let flow_invariant = valid && program.flow_invariant();
        self.obs.record(EventKind::ProgramInstall {
            experiment: exp.0,
            valid,
        });
        map.insert(
            exp,
            ProgEntry {
                program,
                valid,
                flow_invariant,
            },
        );
        validation
    }

    /// Remove an experiment.
    pub fn remove_experiment(&mut self, exp: ExperimentId) {
        self.policies.remove(&exp);
        self.buckets.remove(&exp);
        if self.programs.remove(&exp).is_some() {
            self.prog_generation += 1;
        }
        if self.ingress_programs.remove(&exp).is_some() {
            self.prog_generation += 1;
        }
    }

    /// Whether an experiment has a registered policy.
    pub fn has_experiment(&self, exp: ExperimentId) -> bool {
        self.policies.contains_key(&exp)
    }

    /// The current program-policy generation (cached verdicts from older
    /// generations are dead).
    pub fn prog_generation(&self) -> u64 {
        self.prog_generation
    }

    /// Whether `exp` opted into ingress reverse-path validation.
    pub fn ingress_urpf(&self, exp: ExperimentId) -> bool {
        self.policies.get(&exp).is_some_and(|p| p.ingress_urpf)
    }

    /// Whether `exp` has a flood budget AND the ledger is wired (both are
    /// required for flood charging to do anything).
    pub fn flood_active(&self, exp: ExperimentId) -> bool {
        self.flood_ledger.is_some() && self.policies.get(&exp).is_some_and(|p| p.flood.is_some())
    }

    /// Whether any ingress policing (uRPF, ingress program, flood budget)
    /// is configured for `exp`. The router uses this to skip the ingress
    /// pipeline entirely on the common path — experiments that never opted
    /// in pay nothing.
    pub fn ingress_active(&self, exp: ExperimentId) -> bool {
        self.policies
            .get(&exp)
            .is_some_and(|p| p.ingress_urpf || p.ingress_program.is_some() || p.flood.is_some())
    }

    fn block(&mut self, label: &'static str) -> DataVerdict {
        *self.stats.blocked.entry(label).or_insert(0) += 1;
        DataVerdict::Block(label)
    }

    /// Run the experiment's packet program (or serve its cached verdict).
    /// Invariant: only flow-invariant programs are cached, so the cached
    /// decision equals what a fresh run on this packet would produce.
    fn prog_decision(&mut self, exp: ExperimentId, pkt: &PacketView) -> ProgDecision {
        let Some(entry) = self.programs.get(&exp) else {
            return ProgDecision::Pass;
        };
        run_program_entry(
            entry,
            exp.0,
            pkt,
            self.prog_generation,
            &mut self.verdict_cache,
            &mut self.stats,
            &self.obs,
            exp.0,
        )
    }

    /// Evaluate one egress packet (experiment → Internet): source
    /// validation, then the experiment's packet program, then
    /// per-experiment, per-neighbor and per-PoP shaping.
    pub fn check_egress(
        &mut self,
        exp: ExperimentId,
        pkt: &PacketView,
        nbr: Option<NeighborId>,
        now: SimTime,
    ) -> DataVerdict {
        self.stats.evaluated += 1;
        let Some(policy) = self.policies.get(&exp) else {
            // Unknown experiment: fail closed.
            return self.block("unknown-experiment");
        };
        // Anti-spoofing: the source must fall in the allocation.
        if !policy
            .allowed_sources
            .iter()
            .any(|p| p.contains_addr(pkt.src))
        {
            return self.block("spoofed-source");
        }
        // Packet program (after the source check, §3.3).
        let rewrite = match self.prog_decision(exp, pkt) {
            ProgDecision::Pass => None,
            ProgDecision::Rewrite(rw) => Some(rw),
            ProgDecision::Block(label) => return self.block(label),
        };
        let len = pkt.len as usize;
        if let Some(bucket) = self.buckets.get_mut(&exp) {
            if !bucket.admit(len, now) {
                return self.block("experiment-rate-limit");
            }
        }
        if let Some(nbr) = nbr {
            if let Some(bucket) = self.neighbor_shapers.get_mut(&nbr) {
                if !bucket.admit(len, now) {
                    return self.block("neighbor-rate-limit");
                }
            }
        }
        if let Some(bucket) = self.pop_shaper.as_mut() {
            if !bucket.admit(len, now) {
                return self.block("pop-rate-limit");
            }
        }
        self.stats.allowed += 1;
        match rewrite {
            Some(rw) => DataVerdict::Transform(rw),
            None => DataVerdict::Allow,
        }
    }

    /// Batched [`Self::check_egress`] for a run of packets from one
    /// experiment toward one neighbor: the policy and shaper lookups are
    /// hoisted out of the per-packet loop. Verdicts, stats and cache
    /// effects are identical to calling `check_egress` once per packet in
    /// order (token buckets and the verdict cache are stateful, so packets
    /// are still admitted sequentially). `out[i]` corresponds to
    /// `pkts[i]`; `out` is cleared first (caller-owned scratch).
    pub fn check_egress_batch(
        &mut self,
        exp: ExperimentId,
        pkts: &[PacketView],
        nbr: Option<NeighborId>,
        now: SimTime,
        out: &mut Vec<DataVerdict>,
    ) {
        out.clear();
        self.stats.evaluated += pkts.len() as u64;
        let Some(policy) = self.policies.get(&exp) else {
            *self.stats.blocked.entry("unknown-experiment").or_insert(0) += pkts.len() as u64;
            out.resize(pkts.len(), DataVerdict::Block("unknown-experiment"));
            return;
        };
        // Pass 1: anti-spoofing, against the one policy borrow.
        for pkt in pkts {
            if policy
                .allowed_sources
                .iter()
                .any(|p| p.contains_addr(pkt.src))
            {
                out.push(DataVerdict::Allow);
            } else {
                *self.stats.blocked.entry("spoofed-source").or_insert(0) += 1;
                out.push(DataVerdict::Block("spoofed-source"));
            }
        }
        // Pass 2: packet program, in packet order (cache fills mid-batch
        // exactly as in the single path).
        for (i, pkt) in pkts.iter().enumerate() {
            if !out[i].is_allow() {
                continue;
            }
            match self.prog_decision(exp, pkt) {
                ProgDecision::Pass => {}
                ProgDecision::Rewrite(rw) => out[i] = DataVerdict::Transform(rw),
                ProgDecision::Block(label) => {
                    *self.stats.blocked.entry(label).or_insert(0) += 1;
                    out[i] = DataVerdict::Block(label);
                }
            }
        }
        // Pass 3: shaping. The three bucket references are disjoint fields,
        // so they can be hoisted together; admission stays in packet order.
        let mut exp_bucket = self.buckets.get_mut(&exp);
        let mut nbr_bucket = nbr.and_then(|n| self.neighbor_shapers.get_mut(&n));
        let mut pop_bucket = self.pop_shaper.as_mut();
        let mut allowed = 0u64;
        for (i, pkt) in pkts.iter().enumerate() {
            if !out[i].is_allow() {
                continue;
            }
            let len = pkt.len as usize;
            let mut label: Option<&'static str> = None;
            if let Some(b) = exp_bucket.as_deref_mut() {
                if !b.admit(len, now) {
                    label = Some("experiment-rate-limit");
                }
            }
            if label.is_none() {
                if let Some(b) = nbr_bucket.as_deref_mut() {
                    if !b.admit(len, now) {
                        label = Some("neighbor-rate-limit");
                    }
                }
            }
            if label.is_none() {
                if let Some(b) = pop_bucket.as_deref_mut() {
                    if !b.admit(len, now) {
                        label = Some("pop-rate-limit");
                    }
                }
            }
            match label {
                Some(l) => {
                    *self.stats.blocked.entry(l).or_insert(0) += 1;
                    out[i] = DataVerdict::Block(l);
                }
                None => allowed += 1,
            }
        }
        self.stats.allowed += allowed;
    }

    /// Evaluate one ingress packet (Internet → experiment). The platform
    /// does not police ingress content beyond delivering only traffic for
    /// the experiment's prefixes (§4.7: "We do not currently police
    /// dataplane content beyond verifying the source IP address"), so this
    /// only verifies the destination belongs to the experiment.
    pub fn check_ingress(&mut self, exp: ExperimentId, dst: IpAddr) -> DataVerdict {
        self.stats.evaluated += 1;
        let Some(policy) = self.policies.get(&exp) else {
            return self.block("unknown-experiment");
        };
        if !policy.allowed_sources.iter().any(|p| p.contains_addr(dst)) {
            return self.block("not-experiment-destination");
        }
        self.stats.allowed += 1;
        DataVerdict::Allow
    }

    /// Evaluate a run of ingress packets (Internet → one experiment)
    /// through the full serving pipeline: destination ownership, optional
    /// reverse-path validation, the experiment's ingress packet program,
    /// then the flood budget. `urpf_ok[i]` says whether the ingress
    /// neighbor's own table covers `pkts[i]`'s claimed source (computed by
    /// the router, which owns the tables); `None` means the traffic did
    /// not arrive from a policed neighbor (backbone transit), so uRPF is
    /// skipped. `out[i]` corresponds to `pkts[i]`; `out` is cleared first.
    ///
    /// Ordering matters for attribution: a spoofed-source packet is
    /// counted under `urpf`, not against the flood budget — the budget
    /// only charges packets that passed every cheaper check, so
    /// legitimate-looking floods are what exhaust it.
    pub fn check_ingress_batch(
        &mut self,
        exp: ExperimentId,
        pkts: &[PacketView],
        urpf_ok: Option<&[bool]>,
        now: SimTime,
        out: &mut Vec<DataVerdict>,
    ) {
        out.clear();
        self.stats.ingress_evaluated += pkts.len() as u64;
        let Some(policy) = self.policies.get(&exp) else {
            // Unknown experiment: fail closed (mirrors egress).
            *self
                .stats
                .ingress_blocked
                .entry("unknown-experiment")
                .or_insert(0) += pkts.len() as u64;
            out.resize(pkts.len(), DataVerdict::Block("unknown-experiment"));
            return;
        };
        let flood = policy.flood;
        // Pass 1: destination ownership + uRPF, against the one policy
        // borrow.
        for (i, pkt) in pkts.iter().enumerate() {
            if !policy
                .allowed_sources
                .iter()
                .any(|p| p.contains_addr(pkt.dst))
            {
                *self
                    .stats
                    .ingress_blocked
                    .entry("not-experiment-destination")
                    .or_insert(0) += 1;
                out.push(DataVerdict::Block("not-experiment-destination"));
                continue;
            }
            if policy.ingress_urpf {
                if let Some(ok) = urpf_ok {
                    if !ok[i] {
                        *self.stats.ingress_blocked.entry("urpf").or_insert(0) += 1;
                        out.push(DataVerdict::Block("urpf"));
                        continue;
                    }
                }
            }
            out.push(DataVerdict::Allow);
        }
        // Pass 2: ingress program, in packet order. Verdicts share the
        // egress flow cache under a salted experiment key so the two
        // directions never alias.
        if let Some(entry) = self.ingress_programs.get(&exp) {
            let generation = self.prog_generation;
            for (i, pkt) in pkts.iter().enumerate() {
                if !out[i].is_allow() {
                    continue;
                }
                let decision = run_program_entry(
                    entry,
                    exp.0 | INGRESS_CACHE_BIT,
                    pkt,
                    generation,
                    &mut self.verdict_cache,
                    &mut self.stats,
                    &self.obs,
                    exp.0,
                );
                match decision {
                    ProgDecision::Pass => {}
                    ProgDecision::Rewrite(rw) => out[i] = DataVerdict::Transform(rw),
                    ProgDecision::Block(label) => {
                        *self.stats.ingress_blocked.entry(label).or_insert(0) += 1;
                        out[i] = DataVerdict::Block(label);
                    }
                }
            }
        }
        // Pass 3: flood budget — one ledger lock per batch, charges in
        // packet order. IPv6 sources are exempt (the synthetic attack
        // space is v4; a v6 budget would need its own bucketing).
        if let (Some(fp), Some((pop, ledger))) = (flood, self.flood_ledger.as_ref()) {
            let pop = *pop;
            let mut guard = ledger.lock().expect("flood ledger poisoned");
            for (i, pkt) in pkts.iter().enumerate() {
                if !out[i].is_allow() {
                    continue;
                }
                let IpAddr::V4(v4) = pkt.src else { continue };
                let mask = if fp.bucket_len == 0 {
                    0
                } else {
                    u32::MAX << (32 - u32::from(fp.bucket_len).min(32))
                };
                let bucket = Prefix::V4 {
                    addr: Ipv4Addr::from(u32::from(v4) & mask),
                    len: fp.bucket_len,
                };
                if !guard.charge_flood(exp, bucket, pop, now, fp.per_pop_limit, fp.as_wide_limit) {
                    *self
                        .stats
                        .ingress_blocked
                        .entry("flood-budget")
                        .or_insert(0) += 1;
                    out[i] = DataVerdict::Block("flood-budget");
                }
            }
        }
        self.stats.ingress_allowed += out.iter().filter(|v| v.is_allow()).count() as u64;
    }
}

/// Execute one program entry against one packet (or serve its cached
/// verdict). Standalone so callers can hold a `&ProgEntry` borrowed from
/// either program map while mutating the disjoint cache and stats fields.
/// `cache_key` is the verdict-cache experiment key (ingress callers salt
/// it with [`INGRESS_CACHE_BIT`]); `exp_for_event` is the unsalted id for
/// journal events.
#[allow(clippy::too_many_arguments)]
fn run_program_entry(
    entry: &ProgEntry,
    cache_key: u32,
    pkt: &PacketView,
    generation: u64,
    cache: &mut VerdictCache,
    stats: &mut DataStats,
    obs: &Obs,
    exp_for_event: u32,
) -> ProgDecision {
    if !entry.valid {
        // Malformed program: fail closed, no execution.
        return ProgDecision::Block("program-invalid");
    }
    let key = pkt.flow_key();
    if entry.flow_invariant {
        if let Some(cached) = cache.get(cache_key, key, generation) {
            stats.prog_cache_hits += 1;
            return cached;
        }
    }
    stats.prog_runs += 1;
    let (outcome, _fuel) = entry.program.run(pkt);
    let decision = match outcome {
        ProgOutcome::Allow => ProgDecision::Pass,
        ProgOutcome::Transform(rw) => ProgDecision::Rewrite(rw),
        ProgOutcome::Block => ProgDecision::Block("program-block"),
        ProgOutcome::FuelExhausted => {
            obs.record(EventKind::ProgramFailClosed {
                experiment: exp_for_event,
                reason: "program-fuel",
            });
            ProgDecision::Block("program-fuel")
        }
    };
    if entry.flow_invariant {
        cache.put(cache_key, key, generation, decision);
    }
    decision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforcement::pprog::{Field, Insn};
    use peering_bgp::types::prefix;

    const EXP: ExperimentId = ExperimentId(1);

    fn enforcer() -> DataEnforcer {
        let mut e = DataEnforcer::new();
        e.set_experiment(
            EXP,
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.224.0/23")],
                ..Default::default()
            },
        );
        e
    }

    fn src(s: &str) -> IpAddr {
        s.parse().unwrap()
    }

    fn view(s: &str, len: usize) -> PacketView {
        PacketView::basic(src(s), len)
    }

    #[test]
    fn valid_source_allowed() {
        let mut e = enforcer();
        let v = e.check_egress(EXP, &view("184.164.224.9", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Allow);
        assert_eq!(e.stats.allowed, 1);
    }

    #[test]
    fn spoofed_source_blocked() {
        let mut e = enforcer();
        let v = e.check_egress(EXP, &view("8.8.8.8", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("spoofed-source"));
        assert!(!v.is_allow());
        assert_eq!(e.stats.blocked["spoofed-source"], 1);
    }

    #[test]
    fn unknown_experiment_fails_closed() {
        let mut e = enforcer();
        let v = e.check_egress(
            ExperimentId(9),
            &view("184.164.224.9", 100),
            None,
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("unknown-experiment"));
    }

    #[test]
    fn token_bucket_refills_over_time() {
        let mut b = TokenBucket::new(1000, 1000); // 1 kB/s, 1 kB burst
        assert!(b.admit(1000, SimTime::ZERO));
        assert!(!b.admit(1, SimTime::ZERO));
        assert!(b.time_until(500, SimTime::ZERO) > SimDuration::ZERO);
        // After 500 ms, 500 bytes refilled.
        let t = SimTime::ZERO + SimDuration::from_millis(500);
        assert!(b.admit(400, t));
        assert!(!b.admit(200, t));
        // Never exceeds burst depth.
        let much_later = SimTime::ZERO + SimDuration::from_secs(100);
        assert!(b.admit(1000, much_later));
        assert!(!b.admit(1, much_later));
    }

    #[test]
    fn time_until_accounts_for_accrued_refill() {
        // Regression: `time_until` used to ignore refill accrued since the
        // last charge, so after any idle period it overestimated the wait.
        let mut b = TokenBucket::new(1000, 1000);
        assert!(b.admit(1000, SimTime::ZERO)); // drained at t=0
        let half = SimTime::ZERO + SimDuration::from_millis(500);
        // 500 tokens have refilled by t=500ms: 500 bytes are admissible now.
        assert_eq!(b.time_until(500, half), SimDuration::ZERO);
        // 800 bytes still need 300 more tokens = 300 ms, not 800 ms.
        let wait = b.time_until(800, half);
        assert!(wait > SimDuration::from_millis(299) && wait < SimDuration::from_millis(301));
        // Consistency: admitting after the projected wait succeeds.
        let t = SimTime::ZERO + SimDuration::from_millis(500) + wait;
        assert!(b.admit(800, t));
    }

    #[test]
    fn experiment_rate_limit_applies() {
        let mut e = enforcer();
        e.set_experiment(
            EXP,
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.224.0/23")],
                rate: Some((1000, 1500)),
                ..Default::default()
            },
        );
        assert!(e
            .check_egress(EXP, &view("184.164.224.1", 1500), None, SimTime::ZERO)
            .is_allow());
        let v = e.check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("experiment-rate-limit"));
    }

    #[test]
    fn pop_shaper_caps_all_experiments() {
        let mut e = enforcer();
        e.set_experiment(
            ExperimentId(2),
            ExperimentDataPolicy {
                allowed_sources: vec![prefix("184.164.226.0/24")],
                ..Default::default()
            },
        );
        e.set_pop_shaper(1000, 1000);
        assert!(e
            .check_egress(EXP, &view("184.164.224.1", 800), None, SimTime::ZERO)
            .is_allow());
        // A different experiment shares the site budget.
        let v = e.check_egress(
            ExperimentId(2),
            &view("184.164.226.1", 800),
            None,
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("pop-rate-limit"));
    }

    #[test]
    fn neighbor_shaper_is_per_neighbor() {
        let mut e = enforcer();
        e.set_neighbor_shaper(NeighborId(1), 1000, 1000);
        assert!(e
            .check_egress(
                EXP,
                &view("184.164.224.1", 900),
                Some(NeighborId(1)),
                SimTime::ZERO
            )
            .is_allow());
        let v = e.check_egress(
            EXP,
            &view("184.164.224.1", 900),
            Some(NeighborId(1)),
            SimTime::ZERO,
        );
        assert_eq!(v, DataVerdict::Block("neighbor-rate-limit"));
        // Another neighbor is unconstrained.
        assert!(e
            .check_egress(
                EXP,
                &view("184.164.224.1", 900),
                Some(NeighborId(2)),
                SimTime::ZERO
            )
            .is_allow());
    }

    #[test]
    fn batch_matches_sequential_singles() {
        // Two enforcers with identical config; one sees the packets as a
        // batch, the other one at a time. Verdicts and stats must agree,
        // including short-circuit bucket charging.
        let make = || {
            let mut e = enforcer();
            e.set_experiment(
                EXP,
                ExperimentDataPolicy {
                    allowed_sources: vec![prefix("184.164.224.0/23")],
                    rate: Some((1000, 2000)),
                    ..Default::default()
                },
            );
            e.set_neighbor_shaper(NeighborId(1), 1000, 1500);
            e.set_pop_shaper(1000, 1200);
            e
        };
        let pkts: Vec<PacketView> = vec![
            view("184.164.224.1", 1000),
            view("8.8.8.8", 100), // spoofed: must not charge any bucket
            view("184.164.224.2", 600),
            view("184.164.224.3", 600), // pop bucket exhausted here
            view("184.164.225.4", 100),
        ];
        let mut sequential = make();
        let singles: Vec<DataVerdict> = pkts
            .iter()
            .map(|p| sequential.check_egress(EXP, p, Some(NeighborId(1)), SimTime::ZERO))
            .collect();
        let mut batched = make();
        let mut verdicts = Vec::new();
        batched.check_egress_batch(
            EXP,
            &pkts,
            Some(NeighborId(1)),
            SimTime::ZERO,
            &mut verdicts,
        );
        assert_eq!(verdicts, singles);
        assert_eq!(batched.stats.evaluated, sequential.stats.evaluated);
        assert_eq!(batched.stats.allowed, sequential.stats.allowed);
        assert_eq!(batched.stats.blocked, sequential.stats.blocked);
        // Unknown experiment fails the whole batch closed.
        batched.check_egress_batch(ExperimentId(9), &pkts, None, SimTime::ZERO, &mut verdicts);
        assert!(verdicts
            .iter()
            .all(|v| *v == DataVerdict::Block("unknown-experiment")));
    }

    #[test]
    fn program_blocks_after_source_check() {
        let mut e = enforcer();
        e.install_packet_program(EXP, Some(PacketProgram::block_all()))
            .unwrap();
        // Spoofed source fires first (program runs after the source check).
        let v = e.check_egress(EXP, &view("9.9.9.9", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("spoofed-source"));
        let v = e.check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("program-block"));
        assert_eq!(e.stats.blocked["program-block"], 1);
    }

    #[test]
    fn malformed_program_fails_closed() {
        let mut e = enforcer();
        let bad = PacketProgram::new(vec![Insn::Jmp(99)]);
        assert!(e.install_packet_program(EXP, Some(bad)).is_err());
        let v = e.check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("program-invalid"));
        // Never Allow, and no execution happened.
        assert_eq!(e.stats.prog_runs, 0);
    }

    #[test]
    fn fuel_exhaustion_fails_closed() {
        let mut e = enforcer();
        let spin = PacketProgram::new(vec![Insn::Jmp(0)]).with_fuel(32);
        e.install_packet_program(EXP, Some(spin)).unwrap();
        let v = e.check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("program-fuel"));
    }

    #[test]
    fn transform_verdict_carries_rewrite() {
        let mut e = enforcer();
        let p = PacketProgram::new(vec![Insn::LdImm(0, 7), Insn::SetTtl(0), Insn::Allow]);
        e.install_packet_program(EXP, Some(p)).unwrap();
        let v = e.check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO);
        let DataVerdict::Transform(rw) = v else {
            panic!("expected transform, got {v:?}");
        };
        assert!(v.is_allow());
        assert_eq!(rw.ttl, Some(7));
    }

    #[test]
    fn verdict_cache_serves_flows_and_generation_invalidates() {
        let mut e = enforcer();
        // Flow-invariant program (reads ports, not len/ttl).
        let p = PacketProgram::new(vec![
            Insn::Ld(0, Field::DstPort),
            Insn::JeqImm(0, 53, 3),
            Insn::Allow,
            Insn::Block,
        ]);
        e.install_packet_program(EXP, Some(p)).unwrap();
        let pkt = view("184.164.224.1", 100);
        assert!(e.check_egress(EXP, &pkt, None, SimTime::ZERO).is_allow());
        assert_eq!((e.stats.prog_runs, e.stats.prog_cache_hits), (1, 0));
        // Same flow again: served from the cache.
        assert!(e.check_egress(EXP, &pkt, None, SimTime::ZERO).is_allow());
        assert_eq!((e.stats.prog_runs, e.stats.prog_cache_hits), (1, 1));
        // Policy change bumps the generation: the next packet re-runs.
        let gen_before = e.prog_generation();
        e.install_packet_program(EXP, Some(PacketProgram::block_all()))
            .unwrap();
        assert!(e.prog_generation() > gen_before);
        let v = e.check_egress(EXP, &pkt, None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("program-block"));
        assert_eq!(e.stats.prog_runs, 2);
    }

    #[test]
    fn len_reading_program_is_never_cached() {
        let mut e = enforcer();
        // Blocks packets longer than 500 bytes: per-packet, not per-flow.
        let p = PacketProgram::new(vec![
            Insn::Ld(0, Field::Len),
            Insn::JgtImm(0, 500, 3),
            Insn::Allow,
            Insn::Block,
        ]);
        e.install_packet_program(EXP, Some(p)).unwrap();
        assert!(e
            .check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO)
            .is_allow());
        let v = e.check_egress(EXP, &view("184.164.224.1", 900), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("program-block"));
        // Both packets executed the program — no unsound cache hit.
        assert_eq!((e.stats.prog_runs, e.stats.prog_cache_hits), (2, 0));
    }

    #[test]
    fn ingress_checks_destination_ownership() {
        let mut e = enforcer();
        assert!(e.check_ingress(EXP, src("184.164.225.7")).is_allow());
        assert_eq!(
            e.check_ingress(EXP, src("9.9.9.9")),
            DataVerdict::Block("not-experiment-destination")
        );
    }

    #[test]
    fn removed_experiment_fails_closed() {
        let mut e = enforcer();
        e.remove_experiment(EXP);
        let v = e.check_egress(EXP, &view("184.164.224.1", 10), None, SimTime::ZERO);
        assert_eq!(v, DataVerdict::Block("unknown-experiment"));
    }

    /// An inbound packet toward the experiment's allocation.
    fn inbound(src_s: &str, dst_s: &str) -> PacketView {
        PacketView {
            src: src(src_s),
            dst: src(dst_s),
            proto: 17,
            src_port: 4000,
            dst_port: 80,
            len: 100,
            ttl: 60,
        }
    }

    #[test]
    fn ingress_batch_checks_destination_and_urpf() {
        let mut e = enforcer();
        e.set_ingress_guards(EXP, true, None);
        assert!(e.ingress_urpf(EXP) && e.ingress_active(EXP));
        let pkts = vec![
            inbound("20.1.2.3", "184.164.224.9"), // fine
            inbound("20.1.2.3", "9.9.9.9"),       // not our prefix
            inbound("92.0.0.1", "184.164.224.9"), // spoofed (uRPF says no)
        ];
        let urpf_ok = vec![true, true, false];
        let mut out = Vec::new();
        e.check_ingress_batch(EXP, &pkts, Some(&urpf_ok), SimTime::ZERO, &mut out);
        assert_eq!(
            out,
            vec![
                DataVerdict::Allow,
                DataVerdict::Block("not-experiment-destination"),
                DataVerdict::Block("urpf"),
            ]
        );
        assert_eq!(e.stats.ingress_evaluated, 3);
        assert_eq!(e.stats.ingress_allowed, 1);
        assert_eq!(e.stats.ingress_blocked["urpf"], 1);
        // No neighbor context (backbone ingress): uRPF is skipped.
        e.check_ingress_batch(EXP, &pkts[2..], None, SimTime::ZERO, &mut out);
        assert_eq!(out, vec![DataVerdict::Allow]);
    }

    #[test]
    fn ingress_program_blocks_syn_port_and_caches() {
        let mut e = enforcer();
        // Block dst port 443, allow the rest — flow-invariant.
        let p = PacketProgram::new(vec![
            Insn::Ld(0, Field::DstPort),
            Insn::JeqImm(0, 443, 3),
            Insn::Allow,
            Insn::Block,
        ]);
        e.install_ingress_program(EXP, Some(p)).unwrap();
        assert!(e.ingress_active(EXP));
        let mut syn = inbound("20.1.2.3", "184.164.224.9");
        syn.dst_port = 443;
        let pkts = vec![
            inbound("20.1.2.3", "184.164.224.9"),
            syn,
            syn, // same flow again: cache hit
        ];
        let mut out = Vec::new();
        e.check_ingress_batch(EXP, &pkts, None, SimTime::ZERO, &mut out);
        assert_eq!(
            out,
            vec![
                DataVerdict::Allow,
                DataVerdict::Block("program-block"),
                DataVerdict::Block("program-block"),
            ]
        );
        assert_eq!((e.stats.prog_runs, e.stats.prog_cache_hits), (2, 1));
        assert_eq!(e.stats.ingress_blocked["program-block"], 2);
        // The egress direction is untouched by the ingress program.
        assert!(e
            .check_egress(EXP, &view("184.164.224.1", 100), None, SimTime::ZERO)
            .is_allow());
    }

    #[test]
    fn ingress_and_egress_programs_do_not_alias_cache() {
        let mut e = enforcer();
        // Egress: allow everything. Ingress: block everything. Same flow
        // key must get different (cached) verdicts per direction.
        e.install_packet_program(EXP, Some(PacketProgram::new(vec![Insn::Allow])))
            .unwrap();
        e.install_ingress_program(EXP, Some(PacketProgram::block_all()))
            .unwrap();
        let pkt = inbound("184.164.224.1", "184.164.224.2");
        let mut out = Vec::new();
        for _ in 0..2 {
            assert!(e.check_egress(EXP, &pkt, None, SimTime::ZERO).is_allow());
            e.check_ingress_batch(
                EXP,
                std::slice::from_ref(&pkt),
                None,
                SimTime::ZERO,
                &mut out,
            );
            assert_eq!(out, vec![DataVerdict::Block("program-block")]);
        }
        // One real run per direction; the second round was all cache hits.
        assert_eq!((e.stats.prog_runs, e.stats.prog_cache_hits), (2, 2));
    }

    #[test]
    fn invalid_ingress_program_fails_closed() {
        let mut e = enforcer();
        assert!(e
            .install_ingress_program(EXP, Some(PacketProgram::new(vec![Insn::Jmp(99)])))
            .is_err());
        let mut out = Vec::new();
        e.check_ingress_batch(
            EXP,
            &[inbound("20.1.2.3", "184.164.224.9")],
            None,
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(out, vec![DataVerdict::Block("program-invalid")]);
        assert_eq!(e.stats.prog_runs, 0);
    }

    #[test]
    fn flood_budget_charges_shared_ledger() {
        use super::super::control::FLOOD_WINDOW_SECS;
        let mut e = enforcer();
        let ledger = Arc::new(Mutex::new(RateLedger::default()));
        e.set_flood_ledger(PopId(1), Arc::clone(&ledger));
        e.set_ingress_guards(
            EXP,
            false,
            Some(FloodPolicy {
                bucket_len: 16,
                per_pop_limit: 3,
                as_wide_limit: Some(5),
            }),
        );
        assert!(e.flood_active(EXP) && e.ingress_active(EXP));
        // Five packets from one /16 (different hosts), one from another.
        let pkts: Vec<PacketView> = vec![
            inbound("20.1.0.1", "184.164.224.9"),
            inbound("20.1.0.2", "184.164.224.9"),
            inbound("20.1.9.9", "184.164.224.9"),
            inbound("20.1.3.4", "184.164.224.9"), // 4th in bucket: over per-PoP limit
            inbound("20.1.5.6", "184.164.224.9"),
            inbound("55.2.0.1", "184.164.224.9"), // different bucket: fine
        ];
        let mut out = Vec::new();
        e.check_ingress_batch(EXP, &pkts, None, SimTime::ZERO, &mut out);
        assert_eq!(
            out.iter().filter(|v| v.is_allow()).count(),
            4,
            "3 from the hot /16 + 1 from the cold one"
        );
        assert_eq!(e.stats.ingress_blocked["flood-budget"], 2);
        // Remote gossip can exhaust the AS-wide budget: another PoP
        // reports 5 admits for the cold bucket (local count is only 1, far
        // under the per-PoP limit), pushing the platform-wide total past
        // the AS-wide limit of 5 — the next packet is blocked here even
        // though this PoP barely saw the bucket.
        let window = SimTime::ZERO.as_secs() / FLOOD_WINDOW_SECS;
        let bucket = prefix("55.2.0.0/16");
        ledger
            .lock()
            .unwrap()
            .observe_remote_flood(PopId(2), window, &[(EXP, bucket, 5)]);
        e.check_ingress_batch(
            EXP,
            &[inbound("55.2.0.9", "184.164.224.9")],
            None,
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(
            out,
            vec![DataVerdict::Block("flood-budget")],
            "AS-wide limit (5) already consumed remotely"
        );
    }

    #[test]
    fn ingress_batch_unknown_experiment_fails_closed() {
        let mut e = enforcer();
        let mut out = Vec::new();
        e.check_ingress_batch(
            ExperimentId(9),
            &[inbound("20.1.2.3", "184.164.224.9")],
            None,
            SimTime::ZERO,
            &mut out,
        );
        assert_eq!(out, vec![DataVerdict::Block("unknown-experiment")]);
        assert_eq!(e.stats.ingress_blocked["unknown-experiment"], 1);
    }
}
