//! The vBGP data-plane mux (paper §3.2.2 and §4.4, Fig. 2b).
//!
//! Pure state machine — no simulator types beyond addresses — so every
//! behaviour is unit-testable, per the paper's argument for decoupling
//! (§3.3). The mux owns:
//!
//! * the virtual next-hop allocator and the **MAC → routing-table**
//!   classification that turns an experiment's frame into a per-neighbor
//!   forwarding decision (Fig. 2b steps 8–10);
//! * one routing table per neighbor (refcounted prefixes fed from the
//!   control plane);
//! * the ARP responder for virtual next-hop IPs (steps 6–7) and for
//!   global-pool addresses owned by this PoP (§4.4);
//! * the delivery table that maps experiment prefixes to tunnels (local)
//!   or across the backbone (remote), including the **source-MAC rewrite**
//!   that tells experiments which neighbor delivered a packet.
//!
//! # The fast path
//!
//! Per-neighbor tables and the delivery table are [`PrefixTrie`]s — the
//! mutable source of truth the control plane edits. Forwarding does not
//! walk them per packet: each table lazily compiles a
//! [`FlatFib`] (DIR-24-8 for IPv4, stride-8
//! for IPv6) and fronts it with a small direct-mapped flow cache keyed on
//! the destination address and the FIB's generation counter. Route
//! install/remove marks the FIB dirty; the next lookup re-syncs it, which
//! bumps the generation and thereby invalidates the flow cache without
//! touching it. [`VbgpMux::set_fast_path`] disables all of this (pure trie
//! walks) for differential testing and baseline benchmarks.
//!
//! Neighbor and experiment state lives in dense slot arrays indexed by
//! compact ids handed out at `add_*` time; the classifier decodes the
//! destination MAC's tag bits straight into those slots.

use std::net::Ipv4Addr;

use peering_bgp::flatfib::FlatFib;
use peering_bgp::trie::PrefixTrie;
use peering_bgp::types::Prefix;
use peering_netsim::{MacAddr, PortId};
use peering_obs::{EventKind as ObsEvent, Obs, DELIVERY_TABLE};

use crate::fasthash::{hash_u32, FastHashMap};
use crate::ids::{ExperimentId, NeighborId};
use crate::vnh::{self, Vnh, VnhAllocator};

/// MAC namespace tag for experiment-delivery MACs (answers to backbone ARP
/// for an experiment tunnel's global address).
const MAC_TAG_EXP: u32 = 0x4500_0000;

/// What a destination MAC classifies to (Fig. 2b step 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxTarget {
    /// Look the packet up in this neighbor's routing table.
    NeighborTable(NeighborId),
    /// Deliver down this experiment's tunnel.
    ExperimentDelivery(ExperimentId),
}

/// How to reach a neighbor on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NeighborFwd {
    /// Directly attached: out `port` with the neighbor router's MAC.
    Local { port: PortId, dst_mac: MacAddr },
    /// At another PoP: out the backbone `port` toward the neighbor's
    /// global-pool address (MAC resolved by backbone ARP, §4.4).
    Remote { port: PortId, global_ip: Ipv4Addr },
}

/// A concrete forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Egress {
    /// Transmit out `port` with the given destination MAC.
    Frame {
        /// Egress port.
        port: PortId,
        /// Destination MAC.
        dst_mac: MacAddr,
    },
    /// The neighbor is remote and its global address is not yet resolved;
    /// the caller should trigger an ARP for it and drop/queue the packet.
    Unresolved {
        /// Backbone port to resolve over.
        port: PortId,
        /// The global-pool address to ARP for.
        global_ip: Ipv4Addr,
    },
}

/// Where traffic for an experiment prefix should go.
///
/// The variant order is load-bearing: `Ord` ranks `Local` ahead of
/// `Remote`, and `DeliverySet::active` picks the minimum — a packet is
/// always handed down a local tunnel when one exists rather than relayed
/// across the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Delivery {
    /// Down a local tunnel.
    Local(ExperimentId),
    /// Across the backbone toward the owning PoP's global address.
    Remote {
        /// Backbone port to send out of.
        port: PortId,
        /// The global-pool address to ARP for.
        global_ip: Ipv4Addr,
    },
}

/// Refcounted delivery options for one prefix. Several control-plane
/// routes can make the same prefix deliverable at once — its own tunnel
/// plus copies re-advertised across the backbone — and the data plane must
/// keep serving the best remaining option as individual routes come and
/// go, not just the most recently installed one.
struct DeliverySet {
    entries: Vec<(Delivery, u32)>,
}

impl DeliverySet {
    fn active(&self) -> Delivery {
        self.entries
            .iter()
            .map(|(d, _)| *d)
            .min()
            .expect("delivery sets are removed when emptied")
    }
}

/// Mux counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MuxStats {
    /// Frames forwarded to a neighbor.
    pub to_neighbor: u64,
    /// Frames delivered to a local experiment.
    pub to_experiment: u64,
    /// Frames relayed across the backbone.
    pub to_backbone: u64,
    /// Drops: destination not in the selected neighbor table.
    pub no_route: u64,
    /// Drops: remote neighbor's MAC not yet resolved.
    pub unresolved: u64,
    /// ARP queries answered.
    pub arp_answered: u64,
    /// Forwarding lookups served by a flow cache without touching a FIB.
    pub flow_cache_hits: u64,
    /// Forwarding lookups that missed every flow cache and hit a FIB.
    pub flow_cache_misses: u64,
    /// Flow-cache invalidations (one per effective FIB sync — the
    /// generation bump invalidates the whole cache without touching it).
    pub flow_invalidations: u64,
    /// FIB syncs satisfied by a full recompile.
    pub fib_rebuilds: u64,
    /// FIB syncs satisfied by patching only the dirty prefixes.
    pub fib_patch_rounds: u64,
    /// Individual prefixes patched across all patch rounds.
    pub fib_prefixes_patched: u64,
}

impl MuxStats {
    /// Record an effective FIB sync: classify patch vs rebuild from the
    /// FIB's own report, count it, and journal the sync + the flow-cache
    /// invalidation it implies. `neighbor` is [`DELIVERY_TABLE`] for the
    /// experiment delivery table.
    fn note_fib_sync(&mut self, obs: &Obs, neighbor: u32, fib: &FlatFib) {
        let (rebuild, changed) = fib.last_sync().unwrap_or((true, 0));
        if rebuild {
            self.fib_rebuilds += 1;
        } else {
            self.fib_patch_rounds += 1;
            self.fib_prefixes_patched += changed;
        }
        self.flow_invalidations += 1;
        obs.record(ObsEvent::FibSync {
            neighbor,
            rebuild,
            changed,
        });
        obs.record(ObsEvent::FlowCacheInvalidation {
            neighbor,
            generation: fib.generation(),
        });
    }
}

/// Direct-mapped flow cache: dst address → last lookup outcome, valid only
/// while the backing FIB's generation is unchanged. Invalidated wholesale
/// by a generation bump (no per-entry work on route churn).
struct FlowCache<T> {
    /// `(dst ip, generation, value)`; generation 0 = empty (real
    /// generations start at 1).
    slots: Box<[(u32, u64, T)]>,
}

const FLOW_CACHE_SLOTS: usize = 8192;

impl<T: Copy + Default> FlowCache<T> {
    fn new() -> Self {
        FlowCache {
            slots: vec![(0, 0, T::default()); FLOW_CACHE_SLOTS].into_boxed_slice(),
        }
    }

    #[inline]
    fn get(&self, ip: u32, generation: u64) -> Option<T> {
        let s = &self.slots[hash_u32(ip) as usize & (FLOW_CACHE_SLOTS - 1)];
        if s.0 == ip && s.1 == generation {
            Some(s.2)
        } else {
            None
        }
    }

    #[inline]
    fn put(&mut self, ip: u32, generation: u64, value: T) {
        self.slots[hash_u32(ip) as usize & (FLOW_CACHE_SLOTS - 1)] = (ip, generation, value);
    }
}

/// Dense per-neighbor state, held in a slot array indexed by the compact
/// id handed out at `add_*_neighbor` time.
struct NeighborEntry {
    id: NeighborId,
    fwd: NeighborFwd,
    /// Source of truth, edited by the control plane (refcount per prefix).
    table: PrefixTrie<u32>,
    /// Compiled fast path; built lazily on first forwarded packet.
    fib: Option<FlatFib>,
    cache: Option<Box<FlowCache<bool>>>,
    /// The local-pool MAC index (for classifier cleanup on removal).
    vnh_idx: u32,
    /// Packets forwarded out via this neighbor's table.
    pkts_out: u64,
    /// Packets delivered to an experiment that ingressed via this neighbor.
    pkts_in: u64,
}

impl NeighborEntry {
    /// Whether `dst_ip` has a route, via the compiled FIB + flow cache.
    #[inline]
    fn fast_has_route(&mut self, dst_ip: Ipv4Addr, stats: &mut MuxStats, obs: &Obs) -> bool {
        let fib = self.fib.get_or_insert_with(FlatFib::new);
        if fib.sync(&self.table) {
            stats.note_fib_sync(obs, self.id.0, fib);
        }
        let generation = fib.generation();
        let key = u32::from(dst_ip);
        let cache = self.cache.get_or_insert_with(|| Box::new(FlowCache::new()));
        if let Some(hit) = cache.get(key, generation) {
            stats.flow_cache_hits += 1;
            return hit;
        }
        stats.flow_cache_misses += 1;
        let hit = fib.covers(dst_ip.into());
        cache.put(key, generation, hit);
        hit
    }
}

struct ExperimentEntry {
    id: ExperimentId,
    port: PortId,
    mac: MacAddr,
    delivery_mac: MacAddr,
}

/// The mux.
pub struct VbgpMux {
    alloc: VnhAllocator,
    /// Fast path on (compiled FIBs + flow caches) or off (pure trie walks,
    /// for baselines and differential tests).
    fast_path: bool,
    neighbors: Vec<Option<NeighborEntry>>,
    free_neighbor_slots: Vec<u32>,
    neighbor_slot: FastHashMap<NeighborId, u32>,
    /// Classifier: local-pool MAC index → neighbor slot + 1 (0 = none).
    vnh_mac_slots: Vec<u32>,
    experiments: Vec<Option<ExperimentEntry>>,
    free_experiment_slots: Vec<u32>,
    experiment_slot: FastHashMap<ExperimentId, u32>,
    /// Delivery source of truth: prefix → index into `delivery_sets`.
    delivery: PrefixTrie<u32>,
    delivery_sets: Vec<Option<DeliverySet>>,
    free_delivery_sets: Vec<u32>,
    delivery_fib: Option<FlatFib>,
    delivery_cache: Option<Box<FlowCache<Option<u32>>>>,
    /// ARP: global/virtual IPs this PoP answers for → answering MAC.
    owned_ips: FastHashMap<Ipv4Addr, MacAddr>,
    /// Backbone ARP cache: global IP → remote MAC.
    resolved: FastHashMap<Ipv4Addr, MacAddr>,
    /// Counters.
    pub stats: MuxStats,
    /// Observability handle (journal events live; counters mirrored by
    /// [`VbgpMux::publish_obs`]).
    obs: Obs,
}

impl Default for VbgpMux {
    fn default() -> Self {
        Self::new()
    }
}

impl VbgpMux {
    /// An empty mux (fast path enabled).
    pub fn new() -> Self {
        VbgpMux {
            alloc: VnhAllocator::new(),
            fast_path: true,
            neighbors: Vec::new(),
            free_neighbor_slots: Vec::new(),
            neighbor_slot: FastHashMap::default(),
            vnh_mac_slots: Vec::new(),
            experiments: Vec::new(),
            free_experiment_slots: Vec::new(),
            experiment_slot: FastHashMap::default(),
            delivery: PrefixTrie::new(),
            delivery_sets: Vec::new(),
            free_delivery_sets: Vec::new(),
            delivery_fib: None,
            delivery_cache: None,
            owned_ips: FastHashMap::default(),
            resolved: FastHashMap::default(),
            stats: MuxStats::default(),
            obs: Obs::new(),
        }
    }

    /// Attach a shared observability handle (typically already scoped to
    /// this PoP). Until called, events land in a private default store.
    pub fn set_obs(&mut self, obs: Obs) {
        self.obs = obs;
    }

    /// Mirror the mux's plain-integer counters into the metrics registry.
    /// Called at snapshot points (not per packet) so the forwarding hot
    /// path never touches the registry.
    pub fn publish_obs(&self) {
        let s = &self.stats;
        let o = &self.obs;
        o.counter("mux.to_neighbor").set(s.to_neighbor);
        o.counter("mux.to_experiment").set(s.to_experiment);
        o.counter("mux.to_backbone").set(s.to_backbone);
        o.counter("mux.no_route").set(s.no_route);
        o.counter("mux.unresolved").set(s.unresolved);
        o.counter("mux.arp_answered").set(s.arp_answered);
        o.counter("mux.flow_cache_hits").set(s.flow_cache_hits);
        o.counter("mux.flow_cache_misses").set(s.flow_cache_misses);
        o.counter("mux.flow_invalidations")
            .set(s.flow_invalidations);
        o.counter("mux.fib_rebuilds").set(s.fib_rebuilds);
        o.counter("mux.fib_patch_rounds").set(s.fib_patch_rounds);
        o.counter("mux.fib_prefixes_patched")
            .set(s.fib_prefixes_patched);
        for entry in self.neighbors.iter().flatten() {
            let nbr = entry.id.0;
            o.counter_dim("mux.egress_pkts", "nbr", nbr)
                .set(entry.pkts_out);
            o.counter_dim("mux.ingress_pkts", "nbr", nbr)
                .set(entry.pkts_in);
            o.gauge_dim("mux.table_routes", "nbr", nbr)
                .set(entry.table.len() as i64);
        }
        o.gauge("mux.delivery_routes")
            .set(self.delivery.len() as i64);
    }

    /// Toggle the compiled fast path. Off = every lookup walks the source
    /// tries directly; used for baseline benchmarks and to differentially
    /// test the compiled structures against the reference.
    pub fn set_fast_path(&mut self, on: bool) {
        self.fast_path = on;
    }

    /// Whether the compiled fast path is enabled.
    pub fn fast_path(&self) -> bool {
        self.fast_path
    }

    fn insert_neighbor_entry(&mut self, entry: NeighborEntry) -> u32 {
        let slot = match self.free_neighbor_slots.pop() {
            Some(s) => {
                self.neighbors[s as usize] = Some(entry);
                s
            }
            None => {
                self.neighbors.push(Some(entry));
                self.neighbors.len() as u32 - 1
            }
        };
        self.neighbor_slot.insert(
            self.neighbors[slot as usize].as_ref().expect("just set").id,
            slot,
        );
        slot
    }

    fn register_vnh_mac(&mut self, vnh: &Vnh, slot: u32) -> u32 {
        let idx = (vnh.mac.id().expect("vnh MACs are synthetic") & 0x00ff_ffff) as usize;
        if self.vnh_mac_slots.len() <= idx {
            self.vnh_mac_slots.resize(idx + 1, 0);
        }
        self.vnh_mac_slots[idx] = slot + 1;
        idx as u32
    }

    /// Register a directly-attached neighbor. `global_ip`, when set, makes
    /// this PoP answer backbone ARP for it so other PoPs can steer traffic
    /// out this neighbor (§4.4).
    pub fn add_local_neighbor(
        &mut self,
        id: NeighborId,
        port: PortId,
        neighbor_mac: MacAddr,
        global_ip: Option<Ipv4Addr>,
    ) -> Vnh {
        let vnh = self.alloc.allocate(id);
        let slot = self.insert_neighbor_entry(NeighborEntry {
            id,
            fwd: NeighborFwd::Local {
                port,
                dst_mac: neighbor_mac,
            },
            table: PrefixTrie::new(),
            fib: None,
            cache: None,
            vnh_idx: 0,
            pkts_out: 0,
            pkts_in: 0,
        });
        let idx = self.register_vnh_mac(&vnh, slot);
        self.neighbors[slot as usize]
            .as_mut()
            .expect("just set")
            .vnh_idx = idx;
        self.owned_ips.insert(vnh.ip, vnh.mac);
        if let Some(gip) = global_ip {
            self.owned_ips.insert(gip, vnh.mac);
        }
        vnh
    }

    /// Register a neighbor that lives at another PoP, reached over the
    /// backbone via its global-pool address. Experiments here still get a
    /// local virtual next hop for it (§4.4's local-pool rewrite).
    pub fn add_remote_neighbor(
        &mut self,
        id: NeighborId,
        backbone_port: PortId,
        global_ip: Ipv4Addr,
    ) -> Vnh {
        let vnh = self.alloc.allocate(id);
        let slot = self.insert_neighbor_entry(NeighborEntry {
            id,
            fwd: NeighborFwd::Remote {
                port: backbone_port,
                global_ip,
            },
            table: PrefixTrie::new(),
            fib: None,
            cache: None,
            vnh_idx: 0,
            pkts_out: 0,
            pkts_in: 0,
        });
        let idx = self.register_vnh_mac(&vnh, slot);
        self.neighbors[slot as usize]
            .as_mut()
            .expect("just set")
            .vnh_idx = idx;
        self.owned_ips.insert(vnh.ip, vnh.mac);
        vnh
    }

    /// Remove a neighbor entirely.
    pub fn remove_neighbor(&mut self, id: NeighborId) {
        if let Some(vnh) = self.alloc.release(id) {
            self.owned_ips.remove(&vnh.ip);
            self.owned_ips.retain(|_, m| *m != vnh.mac);
        }
        if let Some(slot) = self.neighbor_slot.remove(&id) {
            if let Some(entry) = self.neighbors[slot as usize].take() {
                self.vnh_mac_slots[entry.vnh_idx as usize] = 0;
            }
            self.free_neighbor_slots.push(slot);
        }
    }

    fn neighbor(&self, id: NeighborId) -> Option<&NeighborEntry> {
        let &slot = self.neighbor_slot.get(&id)?;
        self.neighbors[slot as usize].as_ref()
    }

    fn neighbor_mut(&mut self, id: NeighborId) -> Option<&mut NeighborEntry> {
        let &slot = self.neighbor_slot.get(&id)?;
        self.neighbors[slot as usize].as_mut()
    }

    /// The virtual next hop assigned to a neighbor.
    pub fn vnh(&self, id: NeighborId) -> Option<Vnh> {
        self.alloc.get(id)
    }

    /// The neighbor owning a virtual next-hop IP (classifying learned
    /// routes back to their tables).
    pub fn vnh_neighbor(&self, ip: Ipv4Addr) -> Option<NeighborId> {
        self.alloc.neighbor_of_ip(ip)
    }

    /// Register a local experiment tunnel. `global_ip`, when set, lets
    /// other PoPs deliver traffic for the experiment across the backbone.
    pub fn add_experiment(
        &mut self,
        id: ExperimentId,
        port: PortId,
        experiment_mac: MacAddr,
        global_ip: Option<Ipv4Addr>,
    ) -> MacAddr {
        let delivery_mac = MacAddr::from_id(MAC_TAG_EXP | id.0);
        if let Some(gip) = global_ip {
            self.owned_ips.insert(gip, delivery_mac);
        }
        let entry = ExperimentEntry {
            id,
            port,
            mac: experiment_mac,
            delivery_mac,
        };
        let slot = match self.free_experiment_slots.pop() {
            Some(s) => {
                self.experiments[s as usize] = Some(entry);
                s
            }
            None => {
                self.experiments.push(Some(entry));
                self.experiments.len() as u32 - 1
            }
        };
        self.experiment_slot.insert(id, slot);
        delivery_mac
    }

    /// Remove an experiment.
    pub fn remove_experiment(&mut self, id: ExperimentId) {
        if let Some(slot) = self.experiment_slot.remove(&id) {
            if let Some(entry) = self.experiments[slot as usize].take() {
                self.owned_ips.retain(|_, m| *m != entry.delivery_mac);
            }
            self.free_experiment_slots.push(slot);
        }
        // Delivery entries for its prefixes are withdrawn by the control
        // plane as the session drops.
    }

    fn experiment(&self, id: ExperimentId) -> Option<&ExperimentEntry> {
        let &slot = self.experiment_slot.get(&id)?;
        self.experiments[slot as usize].as_ref()
    }

    // ---- control-plane feed ----

    /// A route for `prefix` via `neighbor` was installed (refcounted: one
    /// per (path, session) the control plane holds).
    pub fn install_route(&mut self, neighbor: NeighborId, prefix: Prefix) {
        let Some(&slot) = self.neighbor_slot.get(&neighbor) else {
            return;
        };
        let Some(entry) = self.neighbors[slot as usize].as_mut() else {
            return;
        };
        match entry.table.get_mut(&prefix) {
            Some(count) => *count += 1, // presence unchanged: FIB stays clean
            None => {
                entry.table.insert(prefix, 1);
                if let Some(fib) = &mut entry.fib {
                    fib.mark_dirty(&prefix);
                }
            }
        }
    }

    /// A route for `prefix` via `neighbor` was removed.
    pub fn remove_route(&mut self, neighbor: NeighborId, prefix: Prefix) {
        let Some(&slot) = self.neighbor_slot.get(&neighbor) else {
            return;
        };
        let Some(entry) = self.neighbors[slot as usize].as_mut() else {
            return;
        };
        if let Some(count) = entry.table.get_mut(&prefix) {
            *count -= 1;
            if *count == 0 {
                entry.table.remove(&prefix);
                if let Some(fib) = &mut entry.fib {
                    fib.mark_dirty(&prefix);
                }
            }
        }
    }

    /// Number of FIB entries for a neighbor.
    pub fn table_len(&self, neighbor: NeighborId) -> usize {
        self.neighbor(neighbor).map(|e| e.table.len()).unwrap_or(0)
    }

    /// Total FIB entries across all per-neighbor tables (the
    /// "per-interconnection data plane" overhead of Fig. 6a).
    pub fn total_fib_entries(&self) -> usize {
        self.neighbors.iter().flatten().map(|e| e.table.len()).sum()
    }

    /// An experiment prefix became deliverable down a local tunnel.
    /// Returns the installed entry so the caller can remove exactly it
    /// when the backing route is withdrawn.
    pub fn install_delivery_local(&mut self, prefix: Prefix, exp: ExperimentId) -> Delivery {
        let delivery = Delivery::Local(exp);
        self.install_delivery(prefix, delivery);
        delivery
    }

    /// An experiment prefix became deliverable across the backbone.
    /// Returns the installed entry so the caller can remove exactly it
    /// when the backing route is withdrawn.
    pub fn install_delivery_remote(
        &mut self,
        prefix: Prefix,
        port: PortId,
        global_ip: Ipv4Addr,
    ) -> Delivery {
        let delivery = Delivery::Remote { port, global_ip };
        self.install_delivery(prefix, delivery);
        delivery
    }

    fn install_delivery(&mut self, prefix: Prefix, delivery: Delivery) {
        if let Some(&idx) = self.delivery.get(&prefix) {
            let set = self.delivery_sets[idx as usize]
                .as_mut()
                .expect("trie points at live set");
            if let Some(entry) = set.entries.iter_mut().find(|(d, _)| *d == delivery) {
                entry.1 += 1;
            } else {
                set.entries.push((delivery, 1));
            }
            // The set's membership changed but the prefix → set mapping did
            // not; flow caches store the set index, so nothing to invalidate.
            return;
        }
        let set = DeliverySet {
            entries: vec![(delivery, 1)],
        };
        let idx = match self.free_delivery_sets.pop() {
            Some(i) => {
                self.delivery_sets[i as usize] = Some(set);
                i
            }
            None => {
                self.delivery_sets.push(Some(set));
                self.delivery_sets.len() as u32 - 1
            }
        };
        self.delivery.insert(prefix, idx);
        if let Some(fib) = &mut self.delivery_fib {
            fib.mark_dirty(&prefix);
        }
    }

    /// One backing route for a delivery entry was withdrawn. The prefix
    /// stays deliverable as long as any other backing route remains.
    pub fn remove_delivery(&mut self, prefix: Prefix, delivery: &Delivery) {
        let Some(&idx) = self.delivery.get(&prefix) else {
            return;
        };
        let set = self.delivery_sets[idx as usize]
            .as_mut()
            .expect("trie points at live set");
        let Some(pos) = set.entries.iter().position(|(d, _)| d == delivery) else {
            return;
        };
        set.entries[pos].1 -= 1;
        if set.entries[pos].1 == 0 {
            set.entries.remove(pos);
        }
        if set.entries.is_empty() {
            self.delivery_sets[idx as usize] = None;
            self.free_delivery_sets.push(idx);
            self.delivery.remove(&prefix);
            if let Some(fib) = &mut self.delivery_fib {
                fib.mark_dirty(&prefix);
            }
        }
    }

    // ---- ARP ----

    /// Answer an ARP query: the MAC owning `ip` at this PoP, if any
    /// (virtual next hops and owned global addresses).
    pub fn arp_answer(&mut self, ip: Ipv4Addr) -> Option<MacAddr> {
        let mac = self.owned_ips.get(&ip).copied();
        if mac.is_some() {
            self.stats.arp_answered += 1;
        }
        mac
    }

    /// Record a backbone ARP resolution (global IP → remote PoP's MAC).
    pub fn note_resolution(&mut self, global_ip: Ipv4Addr, mac: MacAddr) {
        self.resolved.insert(global_ip, mac);
    }

    /// All remote global addresses that still need resolving (prefetched by
    /// the router at configuration time). Lazy — called from the router's
    /// tick loop, so it must not allocate.
    pub fn unresolved_globals(&self) -> impl Iterator<Item = (PortId, Ipv4Addr)> + '_ {
        self.neighbors.iter().flatten().filter_map(|e| match e.fwd {
            NeighborFwd::Remote { port, global_ip } if !self.resolved.contains_key(&global_ip) => {
                Some((port, global_ip))
            }
            _ => None,
        })
    }

    // ---- forwarding ----

    /// Classify a frame's destination MAC (Fig. 2b step 9): decode the
    /// synthetic MAC's tag bits straight into the dense slot arrays.
    pub fn classify(&self, dst_mac: MacAddr) -> Option<MuxTarget> {
        let id = dst_mac.id()?;
        let idx = (id & 0x00ff_ffff) as usize;
        match id & 0xff00_0000 {
            vnh::MAC_TAG_LOCAL => {
                let &slot = self.vnh_mac_slots.get(idx)?;
                if slot == 0 {
                    return None;
                }
                self.neighbors[(slot - 1) as usize]
                    .as_ref()
                    .map(|e| MuxTarget::NeighborTable(e.id))
            }
            MAC_TAG_EXP => {
                let eid = ExperimentId(idx as u32);
                self.experiment(eid)
                    .map(|_| MuxTarget::ExperimentDelivery(eid))
            }
            _ => None,
        }
    }

    /// Resolve a neighbor's wire egress (assumes a route exists).
    fn resolve_fwd(fwd: NeighborFwd, resolved: &FastHashMap<Ipv4Addr, MacAddr>) -> Egress {
        match fwd {
            NeighborFwd::Local { port, dst_mac } => Egress::Frame { port, dst_mac },
            NeighborFwd::Remote { port, global_ip } => match resolved.get(&global_ip) {
                Some(mac) => Egress::Frame {
                    port,
                    dst_mac: *mac,
                },
                None => Egress::Unresolved { port, global_ip },
            },
        }
    }

    fn count_egress(stats: &mut MuxStats, fwd: NeighborFwd, egress: Egress) {
        match egress {
            Egress::Frame { .. } => match fwd {
                NeighborFwd::Local { .. } => stats.to_neighbor += 1,
                NeighborFwd::Remote { .. } => stats.to_backbone += 1,
            },
            Egress::Unresolved { .. } => stats.unresolved += 1,
        }
    }

    /// Forward a packet that an experiment steered into `neighbor`'s table:
    /// longest-prefix-match in that table, then resolve the wire egress
    /// (Fig. 2b steps 10–11). Returns `None` if the table has no route.
    pub fn egress_via_neighbor(
        &mut self,
        neighbor: NeighborId,
        dst_ip: Ipv4Addr,
    ) -> Option<Egress> {
        let &slot = self.neighbor_slot.get(&neighbor)?;
        let entry = self.neighbors[slot as usize].as_mut()?;
        let has_route = if self.fast_path {
            entry.fast_has_route(dst_ip, &mut self.stats, &self.obs)
        } else {
            entry.table.lookup(dst_ip.into()).is_some()
        };
        if !has_route {
            self.stats.no_route += 1;
            return None;
        }
        let egress = Self::resolve_fwd(entry.fwd, &self.resolved);
        Self::count_egress(&mut self.stats, entry.fwd, egress);
        entry.pkts_out += 1;
        Some(egress)
    }

    /// Strict reverse-path check for ingress enforcement: whether
    /// `src_ip` is covered by a route in `neighbor`'s table — i.e. the
    /// neighbor that handed us this packet could itself route back to the
    /// claimed source. Uses the same compiled FIB + flow cache as the
    /// forward path (a uRPF miss and a no-route lookup are the same
    /// machine operation), so per-packet cost matches
    /// [`Self::egress_via_neighbor`]'s lookup.
    pub fn source_routable(&mut self, neighbor: NeighborId, src_ip: Ipv4Addr) -> bool {
        let Some(&slot) = self.neighbor_slot.get(&neighbor) else {
            return false;
        };
        let Some(entry) = self.neighbors[slot as usize].as_mut() else {
            return false;
        };
        if self.fast_path {
            entry.fast_has_route(src_ip, &mut self.stats, &self.obs)
        } else {
            entry.table.lookup(src_ip.into()).is_some()
        }
    }

    /// Batched [`Self::egress_via_neighbor`]: one table selection, one FIB
    /// sync and one wire-egress resolution for a whole run of frames that
    /// classified to the same neighbor. `out[i]` corresponds to
    /// `dst_ips[i]`; `out` is cleared first (caller-owned scratch).
    pub fn egress_via_neighbor_batch(
        &mut self,
        neighbor: NeighborId,
        dst_ips: &[Ipv4Addr],
        out: &mut Vec<Option<Egress>>,
    ) {
        out.clear();
        let Some(&slot) = self.neighbor_slot.get(&neighbor) else {
            out.resize(dst_ips.len(), None);
            return;
        };
        let Some(entry) = self.neighbors[slot as usize].as_mut() else {
            out.resize(dst_ips.len(), None);
            return;
        };
        // Resolution state cannot change mid-batch: compute the hit egress
        // once and reuse it for every frame with a route.
        let egress = Self::resolve_fwd(entry.fwd, &self.resolved);
        if self.fast_path {
            // One sync for the whole run, then prefetch every frame's
            // base-table slot before resolving any of them: the random
            // DRAM loads that dominate a cold lookup overlap instead of
            // serializing per packet.
            let fib = entry.fib.get_or_insert_with(FlatFib::new);
            if fib.sync(&entry.table) {
                self.stats.note_fib_sync(&self.obs, entry.id.0, fib);
            }
            let fib = entry.fib.as_ref().expect("just built");
            let generation = fib.generation();
            let cache = entry
                .cache
                .get_or_insert_with(|| Box::new(FlowCache::new()));
            for &ip in dst_ips {
                fib.prefetch_v4(ip);
            }
            for &ip in dst_ips {
                let key = u32::from(ip);
                let has_route = match cache.get(key, generation) {
                    Some(hit) => {
                        self.stats.flow_cache_hits += 1;
                        hit
                    }
                    None => {
                        self.stats.flow_cache_misses += 1;
                        let hit = fib.covers(ip.into());
                        cache.put(key, generation, hit);
                        hit
                    }
                };
                if has_route {
                    Self::count_egress(&mut self.stats, entry.fwd, egress);
                    entry.pkts_out += 1;
                    out.push(Some(egress));
                } else {
                    self.stats.no_route += 1;
                    out.push(None);
                }
            }
        } else {
            for &ip in dst_ips {
                if entry.table.lookup(ip.into()).is_some() {
                    Self::count_egress(&mut self.stats, entry.fwd, egress);
                    entry.pkts_out += 1;
                    out.push(Some(egress));
                } else {
                    self.stats.no_route += 1;
                    out.push(None);
                }
            }
        }
    }

    /// Look up the delivery set covering `dst_ip` (fast or slow path).
    #[inline]
    fn delivery_set_for(&mut self, dst_ip: Ipv4Addr) -> Option<u32> {
        if self.fast_path {
            let fib = self.delivery_fib.get_or_insert_with(FlatFib::new);
            if fib.sync(&self.delivery) {
                self.stats.note_fib_sync(&self.obs, DELIVERY_TABLE, fib);
            }
            let generation = fib.generation();
            let key = u32::from(dst_ip);
            let cache = self
                .delivery_cache
                .get_or_insert_with(|| Box::new(FlowCache::new()));
            if let Some(hit) = cache.get(key, generation) {
                self.stats.flow_cache_hits += 1;
                return hit;
            }
            self.stats.flow_cache_misses += 1;
            let hit = fib.lookup(dst_ip.into()).map(|(_, idx)| idx);
            cache.put(key, generation, hit);
            hit
        } else {
            self.delivery.lookup(dst_ip.into()).map(|(_, idx)| *idx)
        }
    }

    fn delivery_decision(
        &mut self,
        set_idx: u32,
        src_rewrite: Option<MacAddr>,
    ) -> Option<(Egress, Option<MacAddr>, ExperimentId)> {
        let set = self.delivery_sets[set_idx as usize].as_ref()?;
        match set.active() {
            Delivery::Local(exp) => {
                let entry = self.experiment(exp)?;
                let (port, mac) = (entry.port, entry.mac);
                self.stats.to_experiment += 1;
                Some((Egress::Frame { port, dst_mac: mac }, src_rewrite, exp))
            }
            Delivery::Remote { port, global_ip } => {
                let exp = ExperimentId(u32::MAX); // unknown at this PoP
                match self.resolved.get(&global_ip) {
                    Some(mac) => {
                        self.stats.to_backbone += 1;
                        Some((
                            Egress::Frame {
                                port,
                                dst_mac: *mac,
                            },
                            None,
                            exp,
                        ))
                    }
                    None => {
                        self.stats.unresolved += 1;
                        Some((Egress::Unresolved { port, global_ip }, None, exp))
                    }
                }
            }
        }
    }

    /// Deliver inbound traffic toward whatever experiment owns `dst_ip`.
    /// `from_neighbor` names the ingress neighbor when known; the returned
    /// source MAC is then that neighbor's virtual MAC so the experiment can
    /// see who delivered the packet (paper §3.2.2 "Routing traffic to
    /// experiments").
    pub fn deliver_to_experiment(
        &mut self,
        dst_ip: Ipv4Addr,
        from_neighbor: Option<NeighborId>,
    ) -> Option<(Egress, Option<MacAddr>, ExperimentId)> {
        let set_idx = self.delivery_set_for(dst_ip)?;
        let src_rewrite = from_neighbor.and_then(|n| self.alloc.get(n)).map(|v| v.mac);
        let decision = self.delivery_decision(set_idx, src_rewrite);
        if decision.is_some() {
            if let Some(entry) = from_neighbor.and_then(|n| self.neighbor_mut(n)) {
                entry.pkts_in += 1;
            }
        }
        decision
    }

    /// Batched [`Self::deliver_to_experiment`]: the ingress-neighbor MAC
    /// rewrite is resolved once for the whole run. `out[i]` corresponds to
    /// `dst_ips[i]`; `out` is cleared first (caller-owned scratch).
    #[allow(clippy::type_complexity)]
    pub fn deliver_to_experiment_batch(
        &mut self,
        dst_ips: &[Ipv4Addr],
        from_neighbor: Option<NeighborId>,
        out: &mut Vec<Option<(Egress, Option<MacAddr>, ExperimentId)>>,
    ) {
        out.clear();
        let src_rewrite = from_neighbor.and_then(|n| self.alloc.get(n)).map(|v| v.mac);
        let mut delivered = 0u64;
        for &ip in dst_ips {
            let decision = self
                .delivery_set_for(ip)
                .and_then(|idx| self.delivery_decision(idx, src_rewrite));
            if decision.is_some() {
                delivered += 1;
            }
            out.push(decision);
        }
        if delivered > 0 {
            if let Some(entry) = from_neighbor.and_then(|n| self.neighbor_mut(n)) {
                entry.pkts_in += delivered;
            }
        }
    }

    /// The tunnel port of a local experiment.
    pub fn experiment_port(&self, id: ExperimentId) -> Option<PortId> {
        self.experiment(id).map(|e| e.port)
    }

    // ---- inspection (consistency checking) ----

    /// Every neighbor with a routing table at this PoP, sorted.
    pub fn neighbor_ids(&self) -> Vec<NeighborId> {
        let mut ids: Vec<NeighborId> = self.neighbors.iter().flatten().map(|e| e.id).collect();
        ids.sort();
        ids
    }

    /// The `(prefix, refcount)` entries of one neighbor's table. Lazy —
    /// no per-call allocation.
    pub fn table_entries(&self, neighbor: NeighborId) -> impl Iterator<Item = (Prefix, u32)> + '_ {
        self.neighbor(neighbor)
            .into_iter()
            .flat_map(|e| e.table.iter().map(|(p, c)| (p, *c)))
    }

    /// The delivery table as `(prefix, refcount, owner)`; the owner is
    /// `None` for entries relayed across the backbone. Lazy — no per-call
    /// allocation.
    pub fn delivery_entries(
        &self,
    ) -> impl Iterator<Item = (Prefix, u32, Option<ExperimentId>)> + '_ {
        self.delivery.iter().map(|(p, idx)| {
            let set = self.delivery_sets[*idx as usize]
                .as_ref()
                .expect("trie points at live set");
            let total = set.entries.iter().map(|(_, c)| *c).sum();
            let exp = match set.active() {
                Delivery::Local(e) => Some(e),
                Delivery::Remote { .. } => None,
            };
            (p, total, exp)
        })
    }

    /// Local experiments registered with the mux, sorted.
    pub fn experiment_ids(&self) -> Vec<ExperimentId> {
        let mut ids: Vec<ExperimentId> = self.experiments.iter().flatten().map(|e| e.id).collect();
        ids.sort();
        ids
    }

    /// Force-compile every FIB and cross-check it against its source trie:
    /// for each stored prefix, the compiled structure and the trie must
    /// agree on the longest match at the prefix's first and last covered
    /// addresses. Returns one line per divergence; used by the convergence
    /// oracle after chaos quiesces.
    pub fn verify_fast_path(&mut self) -> Vec<String> {
        let mut problems = Vec::new();
        for entry in self.neighbors.iter_mut().flatten() {
            let fib = entry.fib.get_or_insert_with(FlatFib::new);
            if fib.sync(&entry.table) {
                self.stats.note_fib_sync(&self.obs, entry.id.0, fib);
            }
            for (prefix, _) in entry.table.iter() {
                for addr in probe_addrs(&prefix) {
                    let want = entry.table.lookup(addr).map(|(p, _)| p);
                    let got = fib.lookup(addr).map(|(p, _)| p);
                    if want != got {
                        problems.push(format!(
                            "neighbor {}: compiled FIB disagrees at {addr}: trie {want:?}, fib {got:?}",
                            entry.id.0
                        ));
                    }
                }
            }
        }
        let fib = self.delivery_fib.get_or_insert_with(FlatFib::new);
        if fib.sync(&self.delivery) {
            self.stats.note_fib_sync(&self.obs, DELIVERY_TABLE, fib);
        }
        for (prefix, idx) in self.delivery.iter() {
            for addr in probe_addrs(&prefix) {
                let want = self.delivery.lookup(addr).map(|(p, v)| (p, *v));
                let got = fib.lookup(addr);
                if want != got {
                    problems.push(format!(
                        "delivery: compiled FIB disagrees at {addr}: trie {want:?}, fib {got:?}"
                    ));
                }
            }
            if self.delivery_sets[*idx as usize].is_none() {
                problems.push(format!("delivery: {prefix} points at a freed set"));
            }
        }
        problems
    }
}

/// The first and last host addresses a prefix covers (LPM probe points).
fn probe_addrs(prefix: &Prefix) -> [std::net::IpAddr; 2] {
    match prefix {
        Prefix::V4 { addr, len } => {
            let base = u32::from(*addr);
            let mask = if *len == 0 {
                0
            } else {
                u32::MAX << (32 - *len as u32)
            };
            [
                std::net::IpAddr::V4(Ipv4Addr::from(base)),
                std::net::IpAddr::V4(Ipv4Addr::from(base | !mask)),
            ]
        }
        Prefix::V6 { addr, len } => {
            let base = u128::from(*addr);
            let mask = if *len == 0 {
                0
            } else {
                u128::MAX << (128 - *len as u32)
            };
            [
                std::net::IpAddr::V6(std::net::Ipv6Addr::from(base)),
                std::net::IpAddr::V6(std::net::Ipv6Addr::from(base | !mask)),
            ]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::types::prefix;

    const N1: NeighborId = NeighborId(1);
    const N2: NeighborId = NeighborId(2);
    const X1: ExperimentId = ExperimentId(1);

    fn mux() -> VbgpMux {
        let mut m = VbgpMux::new();
        m.add_local_neighbor(N1, PortId(0), MacAddr::from_id(0x11), None);
        m.add_local_neighbor(N2, PortId(1), MacAddr::from_id(0x22), None);
        m
    }

    #[test]
    fn per_neighbor_tables_steer_by_mac() {
        let mut m = mux();
        let p = prefix("192.168.0.0/24");
        // Both neighbors announce the same destination (paper Fig. 1).
        m.install_route(N1, p);
        m.install_route(N2, p);
        let vnh2 = m.vnh(N2).unwrap();
        // A frame addressed to N2's virtual MAC classifies to N2's table...
        assert_eq!(m.classify(vnh2.mac), Some(MuxTarget::NeighborTable(N2)));
        // ...and egresses out N2's port, not N1's.
        let egress = m
            .egress_via_neighbor(N2, "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(1),
                dst_mac: MacAddr::from_id(0x22)
            }
        );
        assert_eq!(m.stats.to_neighbor, 1);
    }

    #[test]
    fn no_route_in_selected_table_drops() {
        let mut m = mux();
        m.install_route(N1, prefix("192.168.0.0/24"));
        // N2's table is empty: steering via N2 fails even though N1 has it.
        assert!(m
            .egress_via_neighbor(N2, "192.168.0.1".parse().unwrap())
            .is_none());
        assert_eq!(m.stats.no_route, 1);
    }

    #[test]
    fn refcounted_routes() {
        let mut m = mux();
        let p = prefix("10.0.0.0/8");
        m.install_route(N1, p);
        m.install_route(N1, p);
        assert_eq!(m.table_len(N1), 1);
        m.remove_route(N1, p);
        assert!(m
            .egress_via_neighbor(N1, "10.1.1.1".parse().unwrap())
            .is_some());
        m.remove_route(N1, p);
        assert!(m
            .egress_via_neighbor(N1, "10.1.1.1".parse().unwrap())
            .is_none());
        assert_eq!(m.total_fib_entries(), 0);
    }

    #[test]
    fn arp_responder_answers_vnh_queries() {
        let mut m = mux();
        let vnh1 = m.vnh(N1).unwrap();
        assert_eq!(m.arp_answer(vnh1.ip), Some(vnh1.mac));
        assert_eq!(m.arp_answer("9.9.9.9".parse().unwrap()), None);
        assert_eq!(m.stats.arp_answered, 1);
    }

    #[test]
    fn global_ownership_answers_backbone_arp() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.0.1".parse().unwrap();
        let vnh = m.add_local_neighbor(NeighborId(3), PortId(2), MacAddr::from_id(0x33), Some(gip));
        assert_eq!(m.arp_answer(gip), Some(vnh.mac));
        // The answering MAC classifies straight to the neighbor's table.
        assert_eq!(
            m.classify(vnh.mac),
            Some(MuxTarget::NeighborTable(NeighborId(3)))
        );
    }

    #[test]
    fn remote_neighbor_resolution_flow() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.0.9".parse().unwrap();
        m.add_remote_neighbor(NeighborId(9), PortId(5), gip);
        m.install_route(NeighborId(9), prefix("192.168.0.0/24"));
        // Unresolved: caller must ARP.
        assert_eq!(
            m.unresolved_globals().collect::<Vec<_>>(),
            vec![(PortId(5), gip)]
        );
        let egress = m
            .egress_via_neighbor(NeighborId(9), "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Unresolved {
                port: PortId(5),
                global_ip: gip
            }
        );
        // Resolution arrives.
        m.note_resolution(gip, MacAddr::from_id(0x99));
        assert!(m.unresolved_globals().next().is_none());
        let egress = m
            .egress_via_neighbor(NeighborId(9), "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(5),
                dst_mac: MacAddr::from_id(0x99)
            }
        );
        assert_eq!(m.stats.to_backbone, 1);
        assert_eq!(m.stats.unresolved, 1);
    }

    #[test]
    fn experiment_delivery_rewrites_source_mac() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        m.install_delivery_local(prefix("184.164.224.0/24"), X1);
        let (egress, src_rewrite, exp) = m
            .deliver_to_experiment("184.164.224.9".parse().unwrap(), Some(N1))
            .unwrap();
        assert_eq!(exp, X1);
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(7),
                dst_mac: MacAddr::from_id(0x77)
            }
        );
        // The source MAC is the ingress neighbor's virtual MAC (§3.2.2).
        assert_eq!(src_rewrite, Some(m.vnh(N1).unwrap().mac));
        // Unknown ingress → no rewrite hint.
        let (_, src_rewrite, _) = m
            .deliver_to_experiment("184.164.224.9".parse().unwrap(), None)
            .unwrap();
        assert_eq!(src_rewrite, None);
    }

    #[test]
    fn remote_delivery_goes_over_backbone() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.1.1".parse().unwrap();
        m.install_delivery_remote(prefix("184.164.226.0/24"), PortId(4), gip);
        let (egress, _, _) = m
            .deliver_to_experiment("184.164.226.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(
            egress,
            Egress::Unresolved {
                port: PortId(4),
                global_ip: gip
            }
        );
        m.note_resolution(gip, MacAddr::from_id(0xAA));
        let (egress, _, _) = m
            .deliver_to_experiment("184.164.226.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(4),
                dst_mac: MacAddr::from_id(0xAA)
            }
        );
    }

    #[test]
    fn delivery_refcounts_and_removal() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        let p = prefix("184.164.224.0/24");
        let d = m.install_delivery_local(p, X1);
        m.install_delivery_local(p, X1);
        m.remove_delivery(p, &d);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
        m.remove_delivery(p, &d);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_none());
    }

    #[test]
    fn local_delivery_outranks_backbone_and_survives_partial_withdraw() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        let p = prefix("184.164.224.0/24");
        // Backbone copy learned first, then the experiment's own tunnel.
        let remote = m.install_delivery_remote(p, PortId(2), "100.125.0.1".parse().unwrap());
        let local = m.install_delivery_local(p, X1);
        // Local wins regardless of install order.
        let (egress, _, exp) = m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(exp, X1);
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(7),
                dst_mac: MacAddr::from_id(0x77)
            }
        );
        // Withdrawing the backbone copy must not tear down local delivery.
        m.remove_delivery(p, &remote);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
        // And vice versa: after the tunnel route goes, the backbone copy
        // (re-installed) still delivers.
        m.remove_delivery(p, &local);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_none());
        m.install_delivery_remote(p, PortId(2), "100.125.0.1".parse().unwrap());
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
    }

    #[test]
    fn remove_neighbor_cleans_up() {
        let mut m = mux();
        let vnh = m.vnh(N1).unwrap();
        m.install_route(N1, prefix("10.0.0.0/8"));
        m.remove_neighbor(N1);
        assert_eq!(m.classify(vnh.mac), None);
        assert_eq!(m.arp_answer(vnh.ip), None);
        assert!(m
            .egress_via_neighbor(N1, "10.0.0.1".parse().unwrap())
            .is_none());
    }

    #[test]
    fn remove_experiment_cleans_up() {
        let mut m = mux();
        let dmac = m.add_experiment(
            X1,
            PortId(7),
            MacAddr::from_id(0x77),
            Some("127.127.2.2".parse().unwrap()),
        );
        assert_eq!(m.classify(dmac), Some(MuxTarget::ExperimentDelivery(X1)));
        m.remove_experiment(X1);
        assert_eq!(m.classify(dmac), None);
        assert_eq!(m.arp_answer("127.127.2.2".parse().unwrap()), None);
    }

    #[test]
    fn fast_and_slow_paths_agree_under_churn() {
        let mut m = mux();
        let prefixes = [
            "0.0.0.0/0",
            "10.0.0.0/8",
            "10.1.0.0/16",
            "10.1.2.0/24",
            "10.1.2.128/25",
            "10.1.2.200/32",
        ];
        let probes: Vec<Ipv4Addr> = [
            "10.1.2.200",
            "10.1.2.127",
            "10.1.2.129",
            "10.9.9.9",
            "192.0.2.1",
        ]
        .iter()
        .map(|a| a.parse().unwrap())
        .collect();
        for p in prefixes {
            m.install_route(N1, prefix(p));
            for &probe in &probes {
                m.set_fast_path(true);
                let fast = m.egress_via_neighbor(N1, probe);
                m.set_fast_path(false);
                let slow = m.egress_via_neighbor(N1, probe);
                assert_eq!(fast, slow, "probe {probe} after install {p}");
            }
        }
        for p in prefixes {
            m.remove_route(N1, prefix(p));
            for &probe in &probes {
                m.set_fast_path(true);
                let fast = m.egress_via_neighbor(N1, probe);
                m.set_fast_path(false);
                let slow = m.egress_via_neighbor(N1, probe);
                assert_eq!(fast, slow, "probe {probe} after remove {p}");
            }
        }
        assert!(m.verify_fast_path().is_empty());
    }

    #[test]
    fn batch_matches_singles() {
        let mut m = mux();
        m.install_route(N1, prefix("10.0.0.0/8"));
        m.install_route(N1, prefix("10.1.0.0/16"));
        let ips: Vec<Ipv4Addr> = ["10.1.0.1", "10.2.0.1", "11.0.0.1", "10.1.0.1"]
            .iter()
            .map(|a| a.parse().unwrap())
            .collect();
        let mut batched = Vec::new();
        m.egress_via_neighbor_batch(N1, &ips, &mut batched);
        let singles: Vec<_> = ips
            .iter()
            .map(|&ip| m.egress_via_neighbor(N1, ip))
            .collect();
        assert_eq!(batched, singles);

        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        m.install_delivery_local(prefix("184.164.224.0/24"), X1);
        let dips: Vec<Ipv4Addr> = ["184.164.224.9", "184.164.225.9", "184.164.224.1"]
            .iter()
            .map(|a| a.parse().unwrap())
            .collect();
        let mut dbatched = Vec::new();
        m.deliver_to_experiment_batch(&dips, Some(N1), &mut dbatched);
        let dsingles: Vec<_> = dips
            .iter()
            .map(|&ip| m.deliver_to_experiment(ip, Some(N1)))
            .collect();
        assert_eq!(dbatched, dsingles);
    }

    #[test]
    fn flow_cache_serves_repeats_and_invalidates_on_change() {
        let mut m = mux();
        m.install_route(N1, prefix("10.0.0.0/8"));
        let ip: Ipv4Addr = "10.1.1.1".parse().unwrap();
        assert!(m.egress_via_neighbor(N1, ip).is_some()); // compile + miss
        let before = m.stats.flow_cache_hits;
        assert!(m.egress_via_neighbor(N1, ip).is_some());
        assert_eq!(m.stats.flow_cache_hits, before + 1);
        // A more specific install must invalidate the cached answer.
        m.install_route(N1, prefix("10.1.0.0/16"));
        m.remove_route(N1, prefix("10.0.0.0/8"));
        assert!(m.egress_via_neighbor(N1, ip).is_some()); // via the /16 now
        assert!(m
            .egress_via_neighbor(N1, "10.2.0.1".parse().unwrap())
            .is_none());
        assert!(m.verify_fast_path().is_empty());
    }
}
