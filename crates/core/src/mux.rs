//! The vBGP data-plane mux (paper §3.2.2 and §4.4, Fig. 2b).
//!
//! Pure state machine — no simulator types beyond addresses — so every
//! behaviour is unit-testable, per the paper's argument for decoupling
//! (§3.3). The mux owns:
//!
//! * the virtual next-hop allocator and the **MAC → routing-table**
//!   classification that turns an experiment's frame into a per-neighbor
//!   forwarding decision (Fig. 2b steps 8–10);
//! * one routing table per neighbor (refcounted prefixes fed from the
//!   control plane);
//! * the ARP responder for virtual next-hop IPs (steps 6–7) and for
//!   global-pool addresses owned by this PoP (§4.4);
//! * the delivery table that maps experiment prefixes to tunnels (local)
//!   or across the backbone (remote), including the **source-MAC rewrite**
//!   that tells experiments which neighbor delivered a packet.

use std::collections::HashMap;
use std::net::Ipv4Addr;

use peering_bgp::trie::PrefixTrie;
use peering_bgp::types::Prefix;
use peering_netsim::{MacAddr, PortId};

use crate::ids::{ExperimentId, NeighborId};
use crate::vnh::{Vnh, VnhAllocator};

/// MAC namespace tag for experiment-delivery MACs (answers to backbone ARP
/// for an experiment tunnel's global address).
const MAC_TAG_EXP: u32 = 0x4500_0000;

/// What a destination MAC classifies to (Fig. 2b step 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MuxTarget {
    /// Look the packet up in this neighbor's routing table.
    NeighborTable(NeighborId),
    /// Deliver down this experiment's tunnel.
    ExperimentDelivery(ExperimentId),
}

/// How to reach a neighbor on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum NeighborFwd {
    /// Directly attached: out `port` with the neighbor router's MAC.
    Local { port: PortId, dst_mac: MacAddr },
    /// At another PoP: out the backbone `port` toward the neighbor's
    /// global-pool address (MAC resolved by backbone ARP, §4.4).
    Remote { port: PortId, global_ip: Ipv4Addr },
}

/// A concrete forwarding decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Egress {
    /// Transmit out `port` with the given destination MAC.
    Frame {
        /// Egress port.
        port: PortId,
        /// Destination MAC.
        dst_mac: MacAddr,
    },
    /// The neighbor is remote and its global address is not yet resolved;
    /// the caller should trigger an ARP for it and drop/queue the packet.
    Unresolved {
        /// Backbone port to resolve over.
        port: PortId,
        /// The global-pool address to ARP for.
        global_ip: Ipv4Addr,
    },
}

/// Where traffic for an experiment prefix should go.
///
/// The variant order is load-bearing: `Ord` ranks `Local` ahead of
/// `Remote`, and [`DeliverySet::active`] picks the minimum — a packet is
/// always handed down a local tunnel when one exists rather than relayed
/// across the backbone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Delivery {
    /// Down a local tunnel.
    Local(ExperimentId),
    /// Across the backbone toward the owning PoP's global address.
    Remote {
        /// Backbone port to send out of.
        port: PortId,
        /// The global-pool address to ARP for.
        global_ip: Ipv4Addr,
    },
}

/// Refcounted delivery options for one prefix. Several control-plane
/// routes can make the same prefix deliverable at once — its own tunnel
/// plus copies re-advertised across the backbone — and the data plane must
/// keep serving the best remaining option as individual routes come and
/// go, not just the most recently installed one.
struct DeliverySet {
    entries: Vec<(Delivery, u32)>,
}

impl DeliverySet {
    fn active(&self) -> Delivery {
        self.entries
            .iter()
            .map(|(d, _)| *d)
            .min()
            .expect("delivery sets are removed when emptied")
    }
}

/// Mux counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct MuxStats {
    /// Frames forwarded to a neighbor.
    pub to_neighbor: u64,
    /// Frames delivered to a local experiment.
    pub to_experiment: u64,
    /// Frames relayed across the backbone.
    pub to_backbone: u64,
    /// Drops: destination not in the selected neighbor table.
    pub no_route: u64,
    /// Drops: remote neighbor's MAC not yet resolved.
    pub unresolved: u64,
    /// ARP queries answered.
    pub arp_answered: u64,
}

struct ExperimentEntry {
    port: PortId,
    mac: MacAddr,
    delivery_mac: MacAddr,
}

/// The mux.
pub struct VbgpMux {
    alloc: VnhAllocator,
    targets: HashMap<MacAddr, MuxTarget>,
    neighbor_fwd: HashMap<NeighborId, NeighborFwd>,
    tables: HashMap<NeighborId, PrefixTrie<u32>>,
    experiments: HashMap<ExperimentId, ExperimentEntry>,
    delivery: PrefixTrie<DeliverySet>,
    /// ARP: global/virtual IPs this PoP answers for → answering MAC.
    owned_ips: HashMap<Ipv4Addr, MacAddr>,
    /// Backbone ARP cache: global IP → remote MAC.
    resolved: HashMap<Ipv4Addr, MacAddr>,
    /// Counters.
    pub stats: MuxStats,
}

impl Default for VbgpMux {
    fn default() -> Self {
        Self::new()
    }
}

impl VbgpMux {
    /// An empty mux.
    pub fn new() -> Self {
        VbgpMux {
            alloc: VnhAllocator::new(),
            targets: HashMap::new(),
            neighbor_fwd: HashMap::new(),
            tables: HashMap::new(),
            experiments: HashMap::new(),
            delivery: PrefixTrie::new(),
            owned_ips: HashMap::new(),
            resolved: HashMap::new(),
            stats: MuxStats::default(),
        }
    }

    /// Register a directly-attached neighbor. `global_ip`, when set, makes
    /// this PoP answer backbone ARP for it so other PoPs can steer traffic
    /// out this neighbor (§4.4).
    pub fn add_local_neighbor(
        &mut self,
        id: NeighborId,
        port: PortId,
        neighbor_mac: MacAddr,
        global_ip: Option<Ipv4Addr>,
    ) -> Vnh {
        let vnh = self.alloc.allocate(id);
        self.targets.insert(vnh.mac, MuxTarget::NeighborTable(id));
        self.neighbor_fwd.insert(
            id,
            NeighborFwd::Local {
                port,
                dst_mac: neighbor_mac,
            },
        );
        self.tables.entry(id).or_default();
        self.owned_ips.insert(vnh.ip, vnh.mac);
        if let Some(gip) = global_ip {
            self.owned_ips.insert(gip, vnh.mac);
        }
        vnh
    }

    /// Register a neighbor that lives at another PoP, reached over the
    /// backbone via its global-pool address. Experiments here still get a
    /// local virtual next hop for it (§4.4's local-pool rewrite).
    pub fn add_remote_neighbor(
        &mut self,
        id: NeighborId,
        backbone_port: PortId,
        global_ip: Ipv4Addr,
    ) -> Vnh {
        let vnh = self.alloc.allocate(id);
        self.targets.insert(vnh.mac, MuxTarget::NeighborTable(id));
        self.neighbor_fwd.insert(
            id,
            NeighborFwd::Remote {
                port: backbone_port,
                global_ip,
            },
        );
        self.tables.entry(id).or_default();
        self.owned_ips.insert(vnh.ip, vnh.mac);
        vnh
    }

    /// Remove a neighbor entirely.
    pub fn remove_neighbor(&mut self, id: NeighborId) {
        if let Some(vnh) = self.alloc.release(id) {
            self.targets.remove(&vnh.mac);
            self.owned_ips.remove(&vnh.ip);
            self.owned_ips.retain(|_, m| *m != vnh.mac);
        }
        self.neighbor_fwd.remove(&id);
        self.tables.remove(&id);
    }

    /// The virtual next hop assigned to a neighbor.
    pub fn vnh(&self, id: NeighborId) -> Option<Vnh> {
        self.alloc.get(id)
    }

    /// The neighbor owning a virtual next-hop IP (classifying learned
    /// routes back to their tables).
    pub fn vnh_neighbor(&self, ip: Ipv4Addr) -> Option<NeighborId> {
        self.alloc.neighbor_of_ip(ip)
    }

    /// Register a local experiment tunnel. `global_ip`, when set, lets
    /// other PoPs deliver traffic for the experiment across the backbone.
    pub fn add_experiment(
        &mut self,
        id: ExperimentId,
        port: PortId,
        experiment_mac: MacAddr,
        global_ip: Option<Ipv4Addr>,
    ) -> MacAddr {
        let delivery_mac = MacAddr::from_id(MAC_TAG_EXP | id.0);
        self.targets
            .insert(delivery_mac, MuxTarget::ExperimentDelivery(id));
        if let Some(gip) = global_ip {
            self.owned_ips.insert(gip, delivery_mac);
        }
        self.experiments.insert(
            id,
            ExperimentEntry {
                port,
                mac: experiment_mac,
                delivery_mac,
            },
        );
        delivery_mac
    }

    /// Remove an experiment.
    pub fn remove_experiment(&mut self, id: ExperimentId) {
        if let Some(entry) = self.experiments.remove(&id) {
            self.targets.remove(&entry.delivery_mac);
            self.owned_ips.retain(|_, m| *m != entry.delivery_mac);
        }
        // Delivery entries for its prefixes are withdrawn by the control
        // plane as the session drops.
    }

    // ---- control-plane feed ----

    /// A route for `prefix` via `neighbor` was installed (refcounted: one
    /// per (path, session) the control plane holds).
    pub fn install_route(&mut self, neighbor: NeighborId, prefix: Prefix) {
        if let Some(table) = self.tables.get_mut(&neighbor) {
            match table.get_mut(&prefix) {
                Some(count) => *count += 1,
                None => {
                    table.insert(prefix, 1);
                }
            }
        }
    }

    /// A route for `prefix` via `neighbor` was removed.
    pub fn remove_route(&mut self, neighbor: NeighborId, prefix: Prefix) {
        if let Some(table) = self.tables.get_mut(&neighbor) {
            if let Some(count) = table.get_mut(&prefix) {
                *count -= 1;
                if *count == 0 {
                    table.remove(&prefix);
                }
            }
        }
    }

    /// Number of FIB entries for a neighbor.
    pub fn table_len(&self, neighbor: NeighborId) -> usize {
        self.tables.get(&neighbor).map(|t| t.len()).unwrap_or(0)
    }

    /// Total FIB entries across all per-neighbor tables (the
    /// "per-interconnection data plane" overhead of Fig. 6a).
    pub fn total_fib_entries(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// An experiment prefix became deliverable down a local tunnel.
    /// Returns the installed entry so the caller can remove exactly it
    /// when the backing route is withdrawn.
    pub fn install_delivery_local(&mut self, prefix: Prefix, exp: ExperimentId) -> Delivery {
        let delivery = Delivery::Local(exp);
        self.install_delivery(prefix, delivery);
        delivery
    }

    /// An experiment prefix became deliverable across the backbone.
    /// Returns the installed entry so the caller can remove exactly it
    /// when the backing route is withdrawn.
    pub fn install_delivery_remote(
        &mut self,
        prefix: Prefix,
        port: PortId,
        global_ip: Ipv4Addr,
    ) -> Delivery {
        let delivery = Delivery::Remote { port, global_ip };
        self.install_delivery(prefix, delivery);
        delivery
    }

    fn install_delivery(&mut self, prefix: Prefix, delivery: Delivery) {
        match self.delivery.get_mut(&prefix) {
            Some(set) => {
                if let Some(entry) = set.entries.iter_mut().find(|(d, _)| *d == delivery) {
                    entry.1 += 1;
                } else {
                    set.entries.push((delivery, 1));
                }
            }
            None => {
                self.delivery.insert(
                    prefix,
                    DeliverySet {
                        entries: vec![(delivery, 1)],
                    },
                );
            }
        }
    }

    /// One backing route for a delivery entry was withdrawn. The prefix
    /// stays deliverable as long as any other backing route remains.
    pub fn remove_delivery(&mut self, prefix: Prefix, delivery: &Delivery) {
        let Some(set) = self.delivery.get_mut(&prefix) else {
            return;
        };
        let Some(pos) = set.entries.iter().position(|(d, _)| d == delivery) else {
            return;
        };
        set.entries[pos].1 -= 1;
        if set.entries[pos].1 == 0 {
            set.entries.remove(pos);
        }
        if set.entries.is_empty() {
            self.delivery.remove(&prefix);
        }
    }

    // ---- ARP ----

    /// Answer an ARP query: the MAC owning `ip` at this PoP, if any
    /// (virtual next hops and owned global addresses).
    pub fn arp_answer(&mut self, ip: Ipv4Addr) -> Option<MacAddr> {
        let mac = self.owned_ips.get(&ip).copied();
        if mac.is_some() {
            self.stats.arp_answered += 1;
        }
        mac
    }

    /// Record a backbone ARP resolution (global IP → remote PoP's MAC).
    pub fn note_resolution(&mut self, global_ip: Ipv4Addr, mac: MacAddr) {
        self.resolved.insert(global_ip, mac);
    }

    /// All remote global addresses that still need resolving (prefetched by
    /// the router at configuration time).
    pub fn unresolved_globals(&self) -> Vec<(PortId, Ipv4Addr)> {
        self.neighbor_fwd
            .values()
            .filter_map(|f| match f {
                NeighborFwd::Remote { port, global_ip }
                    if !self.resolved.contains_key(global_ip) =>
                {
                    Some((*port, *global_ip))
                }
                _ => None,
            })
            .collect()
    }

    // ---- forwarding ----

    /// Classify a frame's destination MAC (Fig. 2b step 9).
    pub fn classify(&self, dst_mac: MacAddr) -> Option<MuxTarget> {
        self.targets.get(&dst_mac).copied()
    }

    /// Forward a packet that an experiment steered into `neighbor`'s table:
    /// longest-prefix-match in that table, then resolve the wire egress
    /// (Fig. 2b steps 10–11). Returns `None` if the table has no route.
    pub fn egress_via_neighbor(
        &mut self,
        neighbor: NeighborId,
        dst_ip: Ipv4Addr,
    ) -> Option<Egress> {
        let table = self.tables.get(&neighbor)?;
        if table.lookup(dst_ip.into()).is_none() {
            self.stats.no_route += 1;
            return None;
        }
        match self.neighbor_fwd.get(&neighbor)? {
            NeighborFwd::Local { port, dst_mac } => {
                self.stats.to_neighbor += 1;
                Some(Egress::Frame {
                    port: *port,
                    dst_mac: *dst_mac,
                })
            }
            NeighborFwd::Remote { port, global_ip } => match self.resolved.get(global_ip) {
                Some(mac) => {
                    self.stats.to_backbone += 1;
                    Some(Egress::Frame {
                        port: *port,
                        dst_mac: *mac,
                    })
                }
                None => {
                    self.stats.unresolved += 1;
                    Some(Egress::Unresolved {
                        port: *port,
                        global_ip: *global_ip,
                    })
                }
            },
        }
    }

    /// Deliver inbound traffic toward whatever experiment owns `dst_ip`.
    /// `from_neighbor` names the ingress neighbor when known; the returned
    /// source MAC is then that neighbor's virtual MAC so the experiment can
    /// see who delivered the packet (paper §3.2.2 "Routing traffic to
    /// experiments").
    pub fn deliver_to_experiment(
        &mut self,
        dst_ip: Ipv4Addr,
        from_neighbor: Option<NeighborId>,
    ) -> Option<(Egress, Option<MacAddr>, ExperimentId)> {
        let (_, set) = self.delivery.lookup(dst_ip.into())?;
        match set.active() {
            Delivery::Local(exp) => {
                let entry = self.experiments.get(&exp)?;
                let src_rewrite = from_neighbor.and_then(|n| self.alloc.get(n)).map(|v| v.mac);
                self.stats.to_experiment += 1;
                Some((
                    Egress::Frame {
                        port: entry.port,
                        dst_mac: entry.mac,
                    },
                    src_rewrite,
                    exp,
                ))
            }
            Delivery::Remote { port, global_ip } => {
                let exp = ExperimentId(u32::MAX); // unknown at this PoP
                match self.resolved.get(&global_ip) {
                    Some(mac) => {
                        self.stats.to_backbone += 1;
                        Some((
                            Egress::Frame {
                                port,
                                dst_mac: *mac,
                            },
                            None,
                            exp,
                        ))
                    }
                    None => {
                        self.stats.unresolved += 1;
                        Some((Egress::Unresolved { port, global_ip }, None, exp))
                    }
                }
            }
        }
    }

    /// The tunnel port of a local experiment.
    pub fn experiment_port(&self, id: ExperimentId) -> Option<PortId> {
        self.experiments.get(&id).map(|e| e.port)
    }

    // ---- inspection (consistency checking) ----

    /// Every neighbor with a routing table at this PoP, sorted.
    pub fn neighbor_ids(&self) -> Vec<NeighborId> {
        let mut ids: Vec<NeighborId> = self.tables.keys().copied().collect();
        ids.sort();
        ids
    }

    /// The `(prefix, refcount)` entries of one neighbor's table.
    pub fn table_entries(&self, neighbor: NeighborId) -> Vec<(Prefix, u32)> {
        self.tables
            .get(&neighbor)
            .map(|t| t.iter().map(|(p, c)| (p, *c)).collect())
            .unwrap_or_default()
    }

    /// The delivery table as `(prefix, refcount, owner)`; the owner is
    /// `None` for entries relayed across the backbone.
    pub fn delivery_entries(&self) -> Vec<(Prefix, u32, Option<ExperimentId>)> {
        self.delivery
            .iter()
            .map(|(p, set)| {
                let total = set.entries.iter().map(|(_, c)| *c).sum();
                let exp = match set.active() {
                    Delivery::Local(e) => Some(e),
                    Delivery::Remote { .. } => None,
                };
                (p, total, exp)
            })
            .collect()
    }

    /// Local experiments registered with the mux, sorted.
    pub fn experiment_ids(&self) -> Vec<ExperimentId> {
        let mut ids: Vec<ExperimentId> = self.experiments.keys().copied().collect();
        ids.sort();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peering_bgp::types::prefix;

    const N1: NeighborId = NeighborId(1);
    const N2: NeighborId = NeighborId(2);
    const X1: ExperimentId = ExperimentId(1);

    fn mux() -> VbgpMux {
        let mut m = VbgpMux::new();
        m.add_local_neighbor(N1, PortId(0), MacAddr::from_id(0x11), None);
        m.add_local_neighbor(N2, PortId(1), MacAddr::from_id(0x22), None);
        m
    }

    #[test]
    fn per_neighbor_tables_steer_by_mac() {
        let mut m = mux();
        let p = prefix("192.168.0.0/24");
        // Both neighbors announce the same destination (paper Fig. 1).
        m.install_route(N1, p);
        m.install_route(N2, p);
        let vnh2 = m.vnh(N2).unwrap();
        // A frame addressed to N2's virtual MAC classifies to N2's table...
        assert_eq!(m.classify(vnh2.mac), Some(MuxTarget::NeighborTable(N2)));
        // ...and egresses out N2's port, not N1's.
        let egress = m
            .egress_via_neighbor(N2, "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(1),
                dst_mac: MacAddr::from_id(0x22)
            }
        );
        assert_eq!(m.stats.to_neighbor, 1);
    }

    #[test]
    fn no_route_in_selected_table_drops() {
        let mut m = mux();
        m.install_route(N1, prefix("192.168.0.0/24"));
        // N2's table is empty: steering via N2 fails even though N1 has it.
        assert!(m
            .egress_via_neighbor(N2, "192.168.0.1".parse().unwrap())
            .is_none());
        assert_eq!(m.stats.no_route, 1);
    }

    #[test]
    fn refcounted_routes() {
        let mut m = mux();
        let p = prefix("10.0.0.0/8");
        m.install_route(N1, p);
        m.install_route(N1, p);
        assert_eq!(m.table_len(N1), 1);
        m.remove_route(N1, p);
        assert!(m
            .egress_via_neighbor(N1, "10.1.1.1".parse().unwrap())
            .is_some());
        m.remove_route(N1, p);
        assert!(m
            .egress_via_neighbor(N1, "10.1.1.1".parse().unwrap())
            .is_none());
        assert_eq!(m.total_fib_entries(), 0);
    }

    #[test]
    fn arp_responder_answers_vnh_queries() {
        let mut m = mux();
        let vnh1 = m.vnh(N1).unwrap();
        assert_eq!(m.arp_answer(vnh1.ip), Some(vnh1.mac));
        assert_eq!(m.arp_answer("9.9.9.9".parse().unwrap()), None);
        assert_eq!(m.stats.arp_answered, 1);
    }

    #[test]
    fn global_ownership_answers_backbone_arp() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.0.1".parse().unwrap();
        let vnh = m.add_local_neighbor(NeighborId(3), PortId(2), MacAddr::from_id(0x33), Some(gip));
        assert_eq!(m.arp_answer(gip), Some(vnh.mac));
        // The answering MAC classifies straight to the neighbor's table.
        assert_eq!(
            m.classify(vnh.mac),
            Some(MuxTarget::NeighborTable(NeighborId(3)))
        );
    }

    #[test]
    fn remote_neighbor_resolution_flow() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.0.9".parse().unwrap();
        m.add_remote_neighbor(NeighborId(9), PortId(5), gip);
        m.install_route(NeighborId(9), prefix("192.168.0.0/24"));
        // Unresolved: caller must ARP.
        assert_eq!(m.unresolved_globals(), vec![(PortId(5), gip)]);
        let egress = m
            .egress_via_neighbor(NeighborId(9), "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Unresolved {
                port: PortId(5),
                global_ip: gip
            }
        );
        // Resolution arrives.
        m.note_resolution(gip, MacAddr::from_id(0x99));
        assert!(m.unresolved_globals().is_empty());
        let egress = m
            .egress_via_neighbor(NeighborId(9), "192.168.0.1".parse().unwrap())
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(5),
                dst_mac: MacAddr::from_id(0x99)
            }
        );
        assert_eq!(m.stats.to_backbone, 1);
        assert_eq!(m.stats.unresolved, 1);
    }

    #[test]
    fn experiment_delivery_rewrites_source_mac() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        m.install_delivery_local(prefix("184.164.224.0/24"), X1);
        let (egress, src_rewrite, exp) = m
            .deliver_to_experiment("184.164.224.9".parse().unwrap(), Some(N1))
            .unwrap();
        assert_eq!(exp, X1);
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(7),
                dst_mac: MacAddr::from_id(0x77)
            }
        );
        // The source MAC is the ingress neighbor's virtual MAC (§3.2.2).
        assert_eq!(src_rewrite, Some(m.vnh(N1).unwrap().mac));
        // Unknown ingress → no rewrite hint.
        let (_, src_rewrite, _) = m
            .deliver_to_experiment("184.164.224.9".parse().unwrap(), None)
            .unwrap();
        assert_eq!(src_rewrite, None);
    }

    #[test]
    fn remote_delivery_goes_over_backbone() {
        let mut m = mux();
        let gip: Ipv4Addr = "127.127.1.1".parse().unwrap();
        m.install_delivery_remote(prefix("184.164.226.0/24"), PortId(4), gip);
        let (egress, _, _) = m
            .deliver_to_experiment("184.164.226.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(
            egress,
            Egress::Unresolved {
                port: PortId(4),
                global_ip: gip
            }
        );
        m.note_resolution(gip, MacAddr::from_id(0xAA));
        let (egress, _, _) = m
            .deliver_to_experiment("184.164.226.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(4),
                dst_mac: MacAddr::from_id(0xAA)
            }
        );
    }

    #[test]
    fn delivery_refcounts_and_removal() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        let p = prefix("184.164.224.0/24");
        let d = m.install_delivery_local(p, X1);
        m.install_delivery_local(p, X1);
        m.remove_delivery(p, &d);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
        m.remove_delivery(p, &d);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_none());
    }

    #[test]
    fn local_delivery_outranks_backbone_and_survives_partial_withdraw() {
        let mut m = mux();
        m.add_experiment(X1, PortId(7), MacAddr::from_id(0x77), None);
        let p = prefix("184.164.224.0/24");
        // Backbone copy learned first, then the experiment's own tunnel.
        let remote = m.install_delivery_remote(p, PortId(2), "100.125.0.1".parse().unwrap());
        let local = m.install_delivery_local(p, X1);
        // Local wins regardless of install order.
        let (egress, _, exp) = m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .unwrap();
        assert_eq!(exp, X1);
        assert_eq!(
            egress,
            Egress::Frame {
                port: PortId(7),
                dst_mac: MacAddr::from_id(0x77)
            }
        );
        // Withdrawing the backbone copy must not tear down local delivery.
        m.remove_delivery(p, &remote);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
        // And vice versa: after the tunnel route goes, the backbone copy
        // (re-installed) still delivers.
        m.remove_delivery(p, &local);
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_none());
        m.install_delivery_remote(p, PortId(2), "100.125.0.1".parse().unwrap());
        assert!(m
            .deliver_to_experiment("184.164.224.1".parse().unwrap(), None)
            .is_some());
    }

    #[test]
    fn remove_neighbor_cleans_up() {
        let mut m = mux();
        let vnh = m.vnh(N1).unwrap();
        m.install_route(N1, prefix("10.0.0.0/8"));
        m.remove_neighbor(N1);
        assert_eq!(m.classify(vnh.mac), None);
        assert_eq!(m.arp_answer(vnh.ip), None);
        assert!(m
            .egress_via_neighbor(N1, "10.0.0.1".parse().unwrap())
            .is_none());
    }

    #[test]
    fn remove_experiment_cleans_up() {
        let mut m = mux();
        let dmac = m.add_experiment(
            X1,
            PortId(7),
            MacAddr::from_id(0x77),
            Some("127.127.2.2".parse().unwrap()),
        );
        assert_eq!(m.classify(dmac), Some(MuxTarget::ExperimentDelivery(X1)));
        m.remove_experiment(X1);
        assert_eq!(m.classify(dmac), None);
        assert_eq!(m.arp_answer("127.127.2.2".parse().unwrap()), None);
    }
}
