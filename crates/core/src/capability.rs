//! The per-experiment capability framework (paper §4.7).
//!
//! Following the principle of least privilege, experiments default to
//! "basic" announcements — originate your allocated prefixes from your
//! allocated ASN, nothing else. Capabilities are granted per experiment at
//! approval time and unlock specific behaviours; everything here maps 1:1
//! to the paper's published capability list.

use std::collections::HashMap;

/// The kinds of capability PEERING grants (paper §4.7's list, plus the 6to4
/// anecdote).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CapabilityKind {
    /// Allow a limited number of poisoned ASes in announcements.
    AsPathPoisoning,
    /// Allow attaching a limited number of BGP communities / large
    /// communities to announcements.
    AttachCommunities,
    /// Allow optional transitive attributes.
    TransitiveAttributes,
    /// Allow announcing routes learned from one network to another
    /// (legitimately providing transit for an experimental prefix).
    ProvideTransit,
    /// Allow announcing 6to4 (2002::/16-derived) IPv6 space.
    Announce6to4,
}

/// A capability grant with an optional numeric limit (e.g. "at most 3
/// poisoned ASes").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// What is allowed.
    pub kind: CapabilityKind,
    /// Limit where meaningful (`u32::MAX` = unlimited).
    pub limit: u32,
}

impl Grant {
    /// An unlimited grant.
    pub fn unlimited(kind: CapabilityKind) -> Self {
        Grant {
            kind,
            limit: u32::MAX,
        }
    }

    /// A limited grant.
    pub fn limited(kind: CapabilityKind, limit: u32) -> Self {
        Grant { kind, limit }
    }
}

/// The capability set attached to one experiment.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CapabilitySet {
    grants: HashMap<CapabilityKind, u32>,
}

impl CapabilitySet {
    /// The default, most-restricted set: basic announcements only.
    pub fn basic() -> Self {
        CapabilitySet::default()
    }

    /// Build from grants.
    pub fn with(grants: &[Grant]) -> Self {
        let mut set = CapabilitySet::default();
        for g in grants {
            set.grant(*g);
        }
        set
    }

    /// Add or widen a grant (admins "simply add the capability on the
    /// approval web form").
    pub fn grant(&mut self, grant: Grant) {
        let entry = self.grants.entry(grant.kind).or_insert(0);
        *entry = (*entry).max(grant.limit);
    }

    /// Revoke a capability entirely.
    pub fn revoke(&mut self, kind: CapabilityKind) {
        self.grants.remove(&kind);
    }

    /// Whether the capability is granted at all.
    pub fn allows(&self, kind: CapabilityKind) -> bool {
        self.grants.contains_key(&kind)
    }

    /// The numeric limit for a capability (0 when not granted).
    pub fn limit(&self, kind: CapabilityKind) -> u32 {
        self.grants.get(&kind).copied().unwrap_or(0)
    }

    /// Number of distinct grants.
    pub fn len(&self) -> usize {
        self.grants.len()
    }

    /// Whether no capabilities are granted (the default posture).
    pub fn is_empty(&self) -> bool {
        self.grants.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_allows_nothing() {
        let set = CapabilitySet::basic();
        assert!(set.is_empty());
        assert!(!set.allows(CapabilityKind::AsPathPoisoning));
        assert_eq!(set.limit(CapabilityKind::AttachCommunities), 0);
    }

    #[test]
    fn grant_and_revoke() {
        let mut set = CapabilitySet::basic();
        set.grant(Grant::limited(CapabilityKind::AsPathPoisoning, 3));
        assert!(set.allows(CapabilityKind::AsPathPoisoning));
        assert_eq!(set.limit(CapabilityKind::AsPathPoisoning), 3);
        set.revoke(CapabilityKind::AsPathPoisoning);
        assert!(!set.allows(CapabilityKind::AsPathPoisoning));
    }

    #[test]
    fn widening_keeps_max_limit() {
        let mut set = CapabilitySet::basic();
        set.grant(Grant::limited(CapabilityKind::AttachCommunities, 5));
        set.grant(Grant::limited(CapabilityKind::AttachCommunities, 2));
        assert_eq!(set.limit(CapabilityKind::AttachCommunities), 5);
        set.grant(Grant::unlimited(CapabilityKind::AttachCommunities));
        assert_eq!(set.limit(CapabilityKind::AttachCommunities), u32::MAX);
    }

    #[test]
    fn with_builds_full_set() {
        let set = CapabilitySet::with(&[
            Grant::limited(CapabilityKind::AsPathPoisoning, 2),
            Grant::unlimited(CapabilityKind::ProvideTransit),
            Grant::unlimited(CapabilityKind::Announce6to4),
        ]);
        assert_eq!(set.len(), 3);
        assert!(set.allows(CapabilityKind::ProvideTransit));
        assert!(set.allows(CapabilityKind::Announce6to4));
        assert!(!set.allows(CapabilityKind::TransitiveAttributes));
    }
}
