//! The complete vBGP edge router as a simulator node (paper §3, Fig. 3).
//!
//! [`VbgpRouter`] composes the pieces exactly as the paper's architecture
//! does:
//!
//! * the **routing engine** — a [`peering_bgp::Speaker`] wrapped in a
//!   [`BgpHost`] (the BIRD role), with per-session generated policies from
//!   [`crate::policies`];
//! * the **control-plane enforcement engine** — interposed between
//!   experiment sessions and the routing engine via the transport's
//!   interposition hook (the ExaBGP role, §3.3);
//! * the **data-plane enforcement engine** — consulted on every packet an
//!   experiment sends (the eBPF role, §3.3);
//! * the **mux** — per-neighbor tables, MAC classification, the virtual
//!   next-hop ARP responder, and source-MAC rewriting (§3.2.2, §4.4).
//!
//! The router makes no routing decisions of its own: experiments do
//! (§3.2.2 "Because all routing decisions are delegated to experiments").

use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr};

use peering_bgp::policy::Policy;
use peering_bgp::rib::{PeerId, Route};
use peering_bgp::speaker::{PeerConfig, Speaker, SpeakerConfig};
use peering_bgp::types::{Asn, PathId, Prefix, RouterId};
use peering_netsim::arp::{ArpOp, ArpPacket};
use peering_netsim::{
    Bytes, Ctx, EtherFrame, EtherType, IcmpPacket, IpPacket, IpProto, MacAddr, Node, PortId,
    SimDuration,
};

use peering_obs::{EventKind as ObsEvent, Obs};

use crate::communities::ControlCommunities;
use crate::enforcement::control::{ControlEnforcer, ExperimentPolicy, RateLedger};
use crate::enforcement::data::{DataEnforcer, DataVerdict, ExperimentDataPolicy, TokenBucket};
use crate::enforcement::pprog::PacketView;
use crate::fasthash::FastHashMap;
use crate::ids::{ExperimentId, NeighborId, PopId};
use crate::mux::{Delivery, Egress, MuxTarget, VbgpMux};
use crate::policies;
use crate::transport::{BgpHost, Endpoint, HostEvent};
use crate::vnh::{self, global_ip};

/// The relationship with a neighbor (paper §4.2's interconnection types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NeighborKind {
    /// A transit provider (full table, reaches everything).
    Transit,
    /// A bilateral peer (its customer cone).
    Peer,
    /// An IXP route server (multilateral peering).
    RouteServer,
}

/// Configuration for one directly-attached BGP neighbor.
#[derive(Debug, Clone)]
pub struct NeighborConfig {
    /// Platform-wide neighbor id (also the community steering handle).
    pub id: NeighborId,
    /// The neighbor's ASN.
    pub asn: Asn,
    /// Interconnection type.
    pub kind: NeighborKind,
    /// Port the neighbor is reached on (dedicated or shared IXP fabric).
    pub port: PortId,
    /// The neighbor router's MAC.
    pub remote_mac: MacAddr,
    /// Our address on the session.
    pub local_addr: Ipv4Addr,
    /// The neighbor's address (its real next hop, e.g. `1.1.1.1` in Fig. 2).
    pub remote_addr: Ipv4Addr,
    /// Platform-global index for the §4.4 pool (`127.127/16`).
    pub global_index: u16,
    /// Open passively.
    pub passive: bool,
}

/// Configuration for one experiment attachment (a VPN tunnel in the paper).
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// The experiment.
    pub id: ExperimentId,
    /// The experiment's ASN.
    pub asn: Asn,
    /// The tunnel port.
    pub port: PortId,
    /// The experiment router's MAC.
    pub remote_mac: MacAddr,
    /// Our tunnel-side address.
    pub local_addr: Ipv4Addr,
    /// The experiment's tunnel-side address.
    pub remote_addr: Ipv4Addr,
    /// Platform-global index for delivering its traffic across the
    /// backbone (`None` for single-PoP experiments).
    pub global_index: Option<u16>,
    /// Control-plane allocations/capabilities.
    pub policy: ExperimentPolicy,
    /// Data-plane policy (anti-spoof sources, shaping).
    pub data: ExperimentDataPolicy,
}

/// A neighbor at another PoP, reachable over a backbone session (§4.4).
#[derive(Debug, Clone, Copy)]
pub struct RemoteNeighbor {
    /// Its platform-wide id.
    pub id: NeighborId,
    /// Its global-pool index.
    pub global_index: u16,
}

/// Configuration for a backbone (iBGP mesh) session to another PoP.
#[derive(Debug, Clone)]
pub struct BackboneConfig {
    /// Backbone port for this PoP pair.
    pub port: PortId,
    /// The remote vBGP router's MAC on that segment.
    pub remote_mac: MacAddr,
    /// Our backbone address.
    pub local_addr: Ipv4Addr,
    /// The remote router's backbone address.
    pub remote_addr: Ipv4Addr,
    /// The neighbors attached at the remote PoP (intent-based central
    /// config, §5).
    pub remote_neighbors: Vec<RemoteNeighbor>,
    /// Open passively (one side of each pair initiates).
    pub passive: bool,
}

/// What a learned route was installed as in the mux.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Installed {
    NeighborRoute(NeighborId),
    DeliveryEntry(Delivery),
}

/// Router counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouterStats {
    /// Packets dropped by the data-plane enforcement engine.
    pub data_blocked: u64,
    /// Inbound packets dropped by the ingress serving pipeline (uRPF,
    /// ingress program, flood budget) before delivery to an experiment.
    pub ingress_blocked: u64,
    /// Packets passed with a packet-program header rewrite applied.
    pub data_transformed: u64,
    /// Rate-ledger gossip frames sent to backbone peers.
    pub ledger_gossip_tx: u64,
    /// Rate-ledger gossip frames received and applied.
    pub ledger_gossip_rx: u64,
    /// Packets dropped for TTL expiry.
    pub ttl_expired: u64,
    /// Packets dropped with no matching route or delivery entry.
    pub no_route: u64,
    /// Updates dropped (fully) by the control-plane engine.
    pub updates_blocked: u64,
    /// Updates passed (possibly partially) to the routing engine.
    pub updates_passed: u64,
    /// ICMP error messages generated.
    pub icmp_sent: u64,
    /// ICMP errors suppressed because the offending packet was itself an
    /// ICMP error (RFC 1122 §3.2.2).
    pub icmp_suppressed_error: u64,
    /// ICMP errors suppressed by the per-router rate limit.
    pub icmp_rate_limited: u64,
}

const TOKEN_ARP_RETRY: u64 = 1;

/// Timer token for the rate-ledger housekeeping/gossip tick. The timer is
/// armed lazily (first ledger activity) and re-armed only while the ledger
/// holds state, so an idle platform still quiesces.
const TOKEN_LEDGER: u64 = 2;

/// Ledger gossip / housekeeping period. One period is also the
/// reconciliation bound after a backbone partition heals.
const LEDGER_GOSSIP_SECS: u64 = 60;

/// EtherType for ledger gossip frames on backbone segments (an
/// experimental-range value; [`BgpHost`] ignores non-BGP ethertypes, so
/// these coexist with the iBGP mesh on the same links).
const LEDGER_ETHERTYPE: u16 = 0x88B5;

/// Leading magic of a gossip payload ("PLGR").
const LEDGER_MAGIC: u32 = 0x504C_4752;

/// Gossip payload version.
const LEDGER_VERSION: u8 = 2;

/// ICMP error generation rate limit (RFC 1812 §4.3.2.8): sustained
/// messages per second and burst depth. Bucket tokens are whole messages.
const ICMP_ERRORS_PER_SEC: u64 = 100;
const ICMP_ERROR_BURST: u64 = 50;

/// ICMP message types that are themselves error reports (destination
/// unreachable, source quench, redirect, time exceeded, parameter
/// problem). RFC 1122 §3.2.2: an ICMP error message must never be sent in
/// response to one of these. A raw first-byte peek suffices — a packet
/// too mangled to classify gets no error either way.
fn icmp_is_error(payload: &[u8]) -> bool {
    matches!(payload.first(), Some(3 | 4 | 5 | 11 | 12))
}

/// How long the routing engine retains routes learned from a neighbor or
/// backbone session after it drops, giving the peer a chance to
/// re-establish and refresh them before they are flushed. Experiment
/// sessions get no retention: a dead tunnel must lose its routes at once
/// so announcements never outlive the experiment's connectivity.
const SESSION_RETENTION_SECS: u16 = 30;

/// The virtualized edge router.
pub struct VbgpRouter {
    pop: PopId,
    asn: Asn,
    cc: ControlCommunities,
    /// The routing engine + transport.
    pub host: BgpHost,
    /// The data-plane mux.
    pub mux: VbgpMux,
    /// Control-plane enforcement.
    pub control: ControlEnforcer,
    /// Data-plane enforcement.
    pub data: DataEnforcer,
    /// Counters.
    pub stats: RouterStats,
    /// Observability (journal events live, counters mirrored by
    /// [`VbgpRouter::publish_obs`]).
    obs: Obs,
    /// Per-router ICMP error-generation limiter (RFC 1812 §4.3.2.8).
    icmp_bucket: TokenBucket,
    // The two maps on the per-packet path use the fast hasher; the rest are
    // control-plane-rate only.
    port_macs: FastHashMap<PortId, MacAddr>,
    iface_ips: HashMap<Ipv4Addr, (PortId, MacAddr)>,
    neighbor_peers: HashMap<PeerId, NeighborId>,
    exp_peers: HashMap<PeerId, ExperimentId>,
    exp_ports: FastHashMap<PortId, ExperimentId>,
    exp_tunnel_addr: HashMap<ExperimentId, Ipv4Addr>,
    exp_global: HashMap<ExperimentId, Ipv4Addr>,
    backbone_peers: HashSet<PeerId>,
    /// `(port, remote MAC)` of every backbone segment — where ledger
    /// gossip frames go.
    backbone_links: Vec<(PortId, MacAddr)>,
    /// Whether a [`TOKEN_LEDGER`] timer is outstanding.
    ledger_timer_armed: bool,
    /// Last day index the ledger was pruned at (housekeeping runs once per
    /// simulated day).
    last_pruned_day: u64,
    /// Last flood window the ledger was pruned at (flood windows roll much
    /// faster than days, so they get their own prune trigger).
    last_pruned_window: u64,
    ingress_neighbor: FastHashMap<(PortId, MacAddr), NeighborId>,
    local_neighbor_globals: Vec<(Ipv4Addr, Ipv4Addr)>, // (vnh local, global)
    installed: HashMap<(PeerId, Prefix, PathId), Installed>,
    next_peer: u32,
    started: bool,
    // Reused batch scratch (cleared by each callee).
    egress_scratch: Vec<Option<Egress>>,
    delivery_scratch: Vec<Option<(Egress, Option<MacAddr>, ExperimentId)>>,
    verdict_scratch: Vec<DataVerdict>,
}

/// How a run of same-instant IPv4 frames will be forwarded; consecutive
/// frames sharing a plan are processed as one batch.
#[derive(Clone, Copy, PartialEq, Eq)]
enum IpPlan {
    Neighbor(NeighborId),
    Delivery(Option<NeighborId>),
}

impl VbgpRouter {
    /// Create a router for a PoP.
    pub fn new(
        pop: PopId,
        asn: Asn,
        router_id: RouterId,
        control: ControlEnforcer,
        data: DataEnforcer,
    ) -> Self {
        assert!(asn.is_2byte(), "platform ASN must fit the community scheme");
        let cc = ControlCommunities::new(asn.0 as u16);
        let speaker = Speaker::new(SpeakerConfig { asn, router_id });
        VbgpRouter {
            pop,
            asn,
            cc,
            host: BgpHost::new(speaker),
            mux: VbgpMux::new(),
            control,
            data,
            stats: RouterStats::default(),
            obs: Obs::new(),
            icmp_bucket: TokenBucket::new(ICMP_ERRORS_PER_SEC, ICMP_ERROR_BURST),
            port_macs: FastHashMap::default(),
            iface_ips: HashMap::new(),
            neighbor_peers: HashMap::new(),
            exp_peers: HashMap::new(),
            exp_ports: FastHashMap::default(),
            exp_tunnel_addr: HashMap::new(),
            exp_global: HashMap::new(),
            backbone_peers: HashSet::new(),
            backbone_links: Vec::new(),
            ledger_timer_armed: false,
            last_pruned_day: 0,
            last_pruned_window: 0,
            ingress_neighbor: FastHashMap::default(),
            local_neighbor_globals: Vec::new(),
            installed: HashMap::new(),
            next_peer: 0,
            started: false,
            egress_scratch: Vec::new(),
            delivery_scratch: Vec::new(),
            verdict_scratch: Vec::new(),
        }
    }

    /// The PoP this router serves.
    pub fn pop(&self) -> PopId {
        self.pop
    }

    /// Attach a shared observability handle (typically scoped per PoP by
    /// the platform) and cascade it into the mux and the routing engine.
    pub fn set_obs(&mut self, obs: Obs) {
        self.mux.set_obs(obs.clone());
        self.host.set_obs(obs.clone());
        self.control.set_obs(obs.clone());
        self.data.set_obs(obs.clone());
        self.obs = obs;
    }

    /// Mirror this router's plain-integer counters (and those of its mux,
    /// enforcement engines and routing engine) into the metrics registry.
    /// Called at snapshot points, never on the forwarding hot path.
    pub fn publish_obs(&self) {
        let o = &self.obs;
        let s = &self.stats;
        o.counter("router.data_blocked").set(s.data_blocked);
        o.counter("router.ingress_blocked").set(s.ingress_blocked);
        o.counter("router.data_transformed").set(s.data_transformed);
        o.counter("router.ledger_gossip_tx").set(s.ledger_gossip_tx);
        o.counter("router.ledger_gossip_rx").set(s.ledger_gossip_rx);
        o.counter("router.ttl_expired").set(s.ttl_expired);
        o.counter("router.no_route").set(s.no_route);
        o.counter("router.updates_blocked").set(s.updates_blocked);
        o.counter("router.updates_passed").set(s.updates_passed);
        o.counter("router.icmp_sent").set(s.icmp_sent);
        o.counter("router.icmp_suppressed_error")
            .set(s.icmp_suppressed_error);
        o.counter("router.icmp_rate_limited")
            .set(s.icmp_rate_limited);
        let cs = &self.control.stats;
        o.counter("control.evaluated").set(cs.evaluated);
        o.counter("control.accepted").set(cs.accepted);
        for (r, n) in &cs.rejected {
            o.counter(&format!("control.rejected{{reason={}}}", r.code()))
                .set(*n);
        }
        let ds = &self.data.stats;
        o.counter("data.evaluated").set(ds.evaluated);
        o.counter("data.allowed").set(ds.allowed);
        o.counter("data.prog_runs").set(ds.prog_runs);
        o.counter("data.prog_cache_hits").set(ds.prog_cache_hits);
        for (label, n) in &ds.blocked {
            o.counter(&format!("data.blocked{{policy={label}}}"))
                .set(*n);
        }
        o.counter("data.ingress_evaluated")
            .set(ds.ingress_evaluated);
        o.counter("data.ingress_allowed").set(ds.ingress_allowed);
        for (label, n) in &ds.ingress_blocked {
            o.counter(&format!("data.ingress_blocked{{policy={label}}}"))
                .set(*n);
        }
        self.mux.publish_obs();
        self.host.publish_obs();
    }

    /// The platform ASN.
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// The control-community codec.
    pub fn control_communities(&self) -> ControlCommunities {
        self.cc
    }

    /// Declare a port and the MAC this router uses on it.
    pub fn set_port_mac(&mut self, port: PortId, mac: MacAddr) {
        self.port_macs.insert(port, mac);
    }

    fn port_mac(&self, port: PortId) -> MacAddr {
        self.port_macs
            .get(&port)
            .copied()
            .unwrap_or_else(|| panic!("port {port:?} has no MAC configured"))
    }

    fn alloc_peer(&mut self) -> PeerId {
        let id = PeerId(self.next_peer);
        self.next_peer += 1;
        id
    }

    /// Register a directly-attached neighbor.
    pub fn add_neighbor(&mut self, cfg: NeighborConfig) -> PeerId {
        let local_mac = self.port_mac(cfg.port);
        let vnh = self.mux.add_local_neighbor(
            cfg.id,
            cfg.port,
            cfg.remote_mac,
            Some(global_ip(cfg.global_index)),
        );
        self.local_neighbor_globals
            .push((vnh.ip, global_ip(cfg.global_index)));
        let peer = self.alloc_peer();
        let mut peer_cfg = PeerConfig::ebgp(cfg.asn, cfg.remote_addr.into(), cfg.local_addr.into())
            .with_retention(SESSION_RETENTION_SECS)
            .with_import(policies::neighbor_import(self.cc.platform_asn, vnh.ip))
            .with_export(policies::neighbor_export(&self.cc, cfg.id));
        if cfg.passive {
            peer_cfg = peer_cfg.with_passive();
        }
        self.host.add_session(
            peer,
            peer_cfg,
            Endpoint {
                port: cfg.port,
                local_mac,
                remote_mac: cfg.remote_mac,
            },
            false,
        );
        self.neighbor_peers.insert(peer, cfg.id);
        self.iface_ips.insert(cfg.local_addr, (cfg.port, local_mac));
        self.ingress_neighbor
            .insert((cfg.port, cfg.remote_mac), cfg.id);
        peer
    }

    /// Attach an experiment (its session is interposed by the control-plane
    /// enforcement engine).
    pub fn add_experiment(&mut self, cfg: ExperimentConfig) -> PeerId {
        let local_mac = self.port_mac(cfg.port);
        let global = cfg.global_index.map(global_ip);
        self.mux
            .add_experiment(cfg.id, cfg.port, cfg.remote_mac, global);
        if let Some(g) = global {
            self.exp_global.insert(cfg.id, g);
        }
        self.control.set_experiment(cfg.id, cfg.policy);
        self.data.set_experiment(cfg.id, cfg.data);
        let peer = self.alloc_peer();
        let peer_cfg = PeerConfig::ebgp(cfg.asn, cfg.remote_addr.into(), cfg.local_addr.into())
            .with_all_paths()
            .with_next_hop_unchanged()
            .with_passive()
            .with_import(policies::experiment_import(self.cc.platform_asn))
            .with_export(policies::experiment_export(self.cc.platform_asn));
        self.host.add_session(
            peer,
            peer_cfg,
            Endpoint {
                port: cfg.port,
                local_mac,
                remote_mac: cfg.remote_mac,
            },
            true,
        );
        self.exp_peers.insert(peer, cfg.id);
        self.exp_ports.insert(cfg.port, cfg.id);
        self.exp_tunnel_addr.insert(cfg.id, cfg.remote_addr);
        self.iface_ips.insert(cfg.local_addr, (cfg.port, local_mac));
        self.refresh_backbone_exports();
        peer
    }

    /// Deconfigure a directly-attached neighbor at runtime (the §5
    /// interconnection-management operation): the session is closed, the
    /// virtual next hop released, and the neighbor's routes leave every
    /// experiment's view through normal withdrawal processing.
    pub fn remove_neighbor(&mut self, ctx: &mut Ctx<'_>, id: NeighborId) {
        let Some((&peer, _)) = self.neighbor_peers.iter().find(|(_, n)| **n == id) else {
            return;
        };
        let events = self.host.remove_session(ctx, peer);
        self.process_events(ctx, events);
        self.neighbor_peers.remove(&peer);
        self.ingress_neighbor.retain(|_, n| *n != id);
        if let Some(vnh) = self.mux.vnh(id) {
            self.local_neighbor_globals.retain(|(l, _)| *l != vnh.ip);
        }
        self.mux.remove_neighbor(id);
    }

    /// Detach an experiment (tunnel closed / allocation ended).
    pub fn remove_experiment(&mut self, ctx: &mut Ctx<'_>, id: ExperimentId) {
        let Some((&peer, _)) = self.exp_peers.iter().find(|(_, e)| **e == id) else {
            return;
        };
        let events = self.host.remove_session(ctx, peer);
        self.process_events(ctx, events);
        self.exp_peers.remove(&peer);
        self.exp_ports.retain(|_, e| *e != id);
        self.exp_tunnel_addr.remove(&id);
        self.exp_global.remove(&id);
        self.mux.remove_experiment(id);
        self.control.remove_experiment(id);
        self.data.remove_experiment(id);
        self.refresh_backbone_exports();
    }

    /// Register a backbone session to another PoP.
    pub fn add_backbone_peer(&mut self, cfg: BackboneConfig) -> PeerId {
        let local_mac = self.port_mac(cfg.port);
        let mut import_map = Vec::new();
        for rn in &cfg.remote_neighbors {
            let gip = global_ip(rn.global_index);
            let vnh = self.mux.add_remote_neighbor(rn.id, cfg.port, gip);
            import_map.push((gip, vnh.ip));
        }
        let peer = self.alloc_peer();
        // iBGP: the remote PoP shares the platform ASN.
        let mut peer_cfg =
            PeerConfig::ebgp(self.asn, cfg.remote_addr.into(), cfg.local_addr.into())
                .with_all_paths()
                .with_next_hop_unchanged()
                .with_retention(SESSION_RETENTION_SECS)
                .with_import(policies::backbone_import(&import_map))
                .with_export(self.backbone_export_policy());
        if cfg.passive {
            peer_cfg = peer_cfg.with_passive();
        }
        self.host.add_session(
            peer,
            peer_cfg,
            Endpoint {
                port: cfg.port,
                local_mac,
                remote_mac: cfg.remote_mac,
            },
            false,
        );
        self.backbone_peers.insert(peer);
        self.backbone_links.push((cfg.port, cfg.remote_mac));
        self.iface_ips.insert(cfg.local_addr, (cfg.port, local_mac));
        peer
    }

    fn backbone_export_policy(&self) -> Policy {
        let mut mappings = self.local_neighbor_globals.clone();
        for (exp, global) in &self.exp_global {
            if let Some(tunnel) = self.exp_tunnel_addr.get(exp) {
                mappings.push((*tunnel, *global));
            }
        }
        policies::backbone_export(self.cc.platform_asn, &mappings)
    }

    fn refresh_backbone_exports(&mut self) {
        let policy = self.backbone_export_policy();
        let peers: Vec<PeerId> = self.backbone_peers.iter().copied().collect();
        for peer in peers {
            // Outputs (re-advertisements) are applied next time the node
            // runs in a ctx; here we only swap policies for future routes.
            // The platform attaches experiments before starting sessions,
            // so in practice nothing has been advertised yet.
            let _ = self.host.speaker.set_export_policy(peer, policy.clone());
        }
    }

    /// Start one session (used when sessions are added after [`Self::start`],
    /// e.g. an experiment attaching to a running PoP — §4.6's "without
    /// disrupting ongoing experiments or running BGP sessions").
    pub fn start_session(&mut self, ctx: &mut Ctx<'_>, peer: PeerId) {
        let events = self.host.start(ctx, peer);
        self.process_events(ctx, events);
    }

    /// Start every configured session and prefetch backbone ARP bindings.
    /// Call once, via [`peering_netsim::Simulator::with_node_ctx`].
    pub fn start(&mut self, ctx: &mut Ctx<'_>) {
        self.started = true;
        let peers = self.host.speaker.peer_ids();
        for peer in peers {
            let events = self.host.start(ctx, peer);
            self.process_events(ctx, events);
        }
        self.arp_prefetch(ctx);
    }

    fn arp_prefetch(&mut self, ctx: &mut Ctx<'_>) {
        let mut pending = false;
        for (port, gip) in self.mux.unresolved_globals() {
            pending = true;
            let mac = self.port_mac(port);
            let req = ArpPacket::request(mac, Ipv4Addr::UNSPECIFIED, gip);
            ctx.send_frame(
                port,
                EtherFrame::new(MacAddr::BROADCAST, mac, EtherType::Arp, req.encode()),
            );
        }
        if pending {
            ctx.set_timer(SimDuration::from_secs(1), TOKEN_ARP_RETRY);
        }
    }

    fn process_events(&mut self, ctx: &mut Ctx<'_>, events: Vec<HostEvent>) {
        for event in events {
            match event {
                HostEvent::InterposedUpdate(peer, update) => {
                    let Some(&exp) = self.exp_peers.get(&peer) else {
                        continue;
                    };
                    let (compliant, rejections) =
                        self.control.check_update(exp, &update, ctx.now());
                    for (_, r) in &rejections {
                        self.obs.record(ObsEvent::EnforcementReject {
                            experiment: exp.0,
                            reason: r.code(),
                        });
                    }
                    if compliant.announce.is_empty()
                        && compliant.withdrawn.is_empty()
                        && !update.is_end_of_rib()
                        && !rejections.is_empty()
                    {
                        self.stats.updates_blocked += 1;
                        continue;
                    }
                    self.stats.updates_passed += 1;
                    // The update charged the rate ledger: make sure the
                    // housekeeping/gossip tick is running.
                    self.ensure_ledger_timer(ctx);
                    let more = self.host.deliver(ctx, peer, compliant);
                    self.process_events(ctx, more);
                }
                HostEvent::RouteLearned(peer, route) => self.on_route_learned(ctx, peer, route),
                HostEvent::RouteWithdrawn(peer, prefix, path_id) => {
                    self.on_route_withdrawn(peer, prefix, path_id)
                }
                HostEvent::SessionUp(_) | HostEvent::SessionDown(_, _) => {}
            }
        }
    }

    fn on_route_learned(&mut self, ctx: &mut Ctx<'_>, peer: PeerId, route: Route) {
        let key = (peer, route.prefix, route.path_id);
        // Replacement: remove the previous installation first.
        if let Some(old) = self.installed.remove(&key) {
            self.uninstall(old, route.prefix);
        }
        let installed = if let Some(&exp) = self.exp_peers.get(&peer) {
            let delivery = self.mux.install_delivery_local(route.prefix, exp);
            Some(Installed::DeliveryEntry(delivery))
        } else {
            match route.attrs.next_hop {
                Some(std::net::IpAddr::V4(nh)) if vnh::is_local(nh) => {
                    // A neighbor route (local or backbone-mapped): steer into
                    // the owning neighbor's table.
                    self.mux.vnh_neighbor(nh).map(|nbr| {
                        self.mux.install_route(nbr, route.prefix);
                        Installed::NeighborRoute(nbr)
                    })
                }
                Some(std::net::IpAddr::V4(nh)) if vnh::is_global(nh) => {
                    // A remote experiment's prefix: deliverable across the
                    // backbone. Prefetch the global address's MAC so the
                    // first delivered packet is not lost to resolution.
                    let port = self
                        .host
                        .endpoint(peer)
                        .map(|ep| ep.port)
                        .unwrap_or(PortId(0));
                    let delivery = self.mux.install_delivery_remote(route.prefix, port, nh);
                    let mac = self.port_mac(port);
                    let req = ArpPacket::request(mac, Ipv4Addr::UNSPECIFIED, nh);
                    ctx.send_frame(
                        port,
                        EtherFrame::new(MacAddr::BROADCAST, mac, EtherType::Arp, req.encode()),
                    );
                    Some(Installed::DeliveryEntry(delivery))
                }
                _ => None,
            }
        };
        if let Some(installed) = installed {
            self.installed.insert(key, installed);
        }
    }

    fn on_route_withdrawn(&mut self, peer: PeerId, prefix: Prefix, path_id: PathId) {
        if let Some(installed) = self.installed.remove(&(peer, prefix, path_id)) {
            self.uninstall(installed, prefix);
        }
    }

    fn uninstall(&mut self, installed: Installed, prefix: Prefix) {
        match installed {
            Installed::NeighborRoute(nbr) => self.mux.remove_route(nbr, prefix),
            Installed::DeliveryEntry(delivery) => self.mux.remove_delivery(prefix, &delivery),
        }
    }

    /// The experiment attached over a peer session, if any.
    pub fn experiment_of_peer(&self, peer: PeerId) -> Option<ExperimentId> {
        self.exp_peers.get(&peer).copied()
    }

    /// The neighbor on a peer session, if any.
    pub fn neighbor_of_peer(&self, peer: PeerId) -> Option<NeighborId> {
        self.neighbor_peers.get(&peer).copied()
    }

    /// Whether a peer session is a backbone (inter-PoP) session.
    pub fn is_backbone_peer(&self, peer: PeerId) -> bool {
        self.backbone_peers.contains(&peer)
    }

    /// Fault hook for the chaos harness's self-test: when enabled, the
    /// routing engine skips replaying its Adj-RIB-Out when a session
    /// re-establishes (the resync bug the convergence oracle must catch).
    pub fn set_fault_skip_session_up_replay(&mut self, on: bool) {
        self.host.speaker.set_fault_skip_session_up_replay(on);
    }

    /// Cross-check this router's layers against each other: the mux's
    /// per-neighbor tables and delivery table against the control plane's
    /// installation bookkeeping, that bookkeeping against the routing
    /// engine's Adj-RIBs-In, dead experiment tunnels against retained
    /// routes, and the enforcement engines against attached experiments.
    /// Returns one human-readable line per violation; empty means
    /// consistent. Used by the convergence oracle after chaos quiesces.
    pub fn verify_consistency(&self) -> Vec<String> {
        let mut problems = Vec::new();

        // What the mux should hold, recomputed from scratch.
        let mut want_tables: HashMap<(NeighborId, Prefix), u32> = HashMap::new();
        let mut want_delivery: HashMap<Prefix, u32> = HashMap::new();
        for ((_, prefix, _), what) in &self.installed {
            match what {
                Installed::NeighborRoute(nbr) => {
                    *want_tables.entry((*nbr, *prefix)).or_insert(0) += 1
                }
                Installed::DeliveryEntry(_) => *want_delivery.entry(*prefix).or_insert(0) += 1,
            }
        }

        let mut seen_tables: HashMap<(NeighborId, Prefix), u32> = HashMap::new();
        for nbr in self.mux.neighbor_ids() {
            for (prefix, count) in self.mux.table_entries(nbr) {
                seen_tables.insert((nbr, prefix), count);
            }
        }
        for (key, want) in &want_tables {
            match seen_tables.get(key) {
                Some(got) if got == want => {}
                Some(got) => problems.push(format!(
                    "{}: neighbor {} table {}: mux refcount {got}, {want} installed",
                    self.pop, key.0 .0, key.1
                )),
                None => problems.push(format!(
                    "{}: neighbor {} table missing {} ({want} installed)",
                    self.pop, key.0 .0, key.1
                )),
            }
        }
        for (key, got) in &seen_tables {
            if !want_tables.contains_key(key) {
                problems.push(format!(
                    "{}: neighbor {} table has orphan {} (refcount {got})",
                    self.pop, key.0 .0, key.1
                ));
            }
        }

        let mut seen_delivery: HashMap<Prefix, u32> = HashMap::new();
        for (prefix, count, _) in self.mux.delivery_entries() {
            seen_delivery.insert(prefix, count);
        }
        for (prefix, want) in &want_delivery {
            match seen_delivery.get(prefix) {
                Some(got) if got == want => {}
                Some(got) => problems.push(format!(
                    "{}: delivery {prefix}: mux refcount {got}, {want} installed",
                    self.pop
                )),
                None => problems.push(format!(
                    "{}: delivery table missing {prefix} ({want} installed)",
                    self.pop
                )),
            }
        }
        for (prefix, got) in &seen_delivery {
            if !want_delivery.contains_key(prefix) {
                problems.push(format!(
                    "{}: delivery table has orphan {prefix} (refcount {got})",
                    self.pop
                ));
            }
        }

        // Every installation is backed by a path still in an Adj-RIB-In,
        // and every Adj-RIB-In path the mux can place is installed.
        for (peer, prefix, pid) in self.installed.keys() {
            let backed = self
                .host
                .speaker
                .adj_rib_in(*peer)
                .map(|rib| rib.paths(prefix).any(|r| r.path_id == *pid))
                .unwrap_or(false);
            if !backed {
                problems.push(format!(
                    "{}: installed entry {prefix} path {} not in peer {}'s adj-rib-in",
                    self.pop, pid, peer.0
                ));
            }
        }
        for peer in self.host.speaker.peer_ids() {
            let Some(rib) = self.host.speaker.adj_rib_in(peer) else {
                continue;
            };
            for route in rib.iter() {
                let placeable = if self.exp_peers.contains_key(&peer) {
                    true
                } else {
                    match route.attrs.next_hop {
                        Some(std::net::IpAddr::V4(nh)) if vnh::is_local(nh) => {
                            self.mux.vnh_neighbor(nh).is_some()
                        }
                        Some(std::net::IpAddr::V4(nh)) => vnh::is_global(nh),
                        _ => false,
                    }
                };
                if placeable
                    && !self
                        .installed
                        .contains_key(&(peer, route.prefix, route.path_id))
                {
                    problems.push(format!(
                        "{}: adj-rib-in route {} path {} on peer {} not installed in mux",
                        self.pop, route.prefix, route.path_id, peer.0
                    ));
                }
            }
        }

        // A dead tunnel holds no routes (experiments get no retention).
        for (peer, exp) in &self.exp_peers {
            if !self.host.speaker.is_established(*peer) {
                let held = self
                    .host
                    .speaker
                    .adj_rib_in(*peer)
                    .map(|rib| rib.iter().count())
                    .unwrap_or(0);
                if held > 0 {
                    problems.push(format!(
                        "{}: experiment {} session is down but still holds {held} routes",
                        self.pop, exp.0
                    ));
                }
            }
        }

        // Enforcement engines and mux know every attached experiment.
        for exp in self.exp_peers.values() {
            if !self.control.has_experiment(*exp) {
                problems.push(format!(
                    "{}: experiment {} has no control-plane policy",
                    self.pop, exp.0
                ));
            }
            if !self.data.has_experiment(*exp) {
                problems.push(format!(
                    "{}: experiment {} has no data-plane policy",
                    self.pop, exp.0
                ));
            }
            if self.mux.experiment_port(*exp).is_none() {
                problems.push(format!(
                    "{}: experiment {} has no mux delivery entry",
                    self.pop, exp.0
                ));
            }
        }

        problems.sort();
        problems
    }

    fn on_arp(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &EtherFrame) {
        let Some(packet) = ArpPacket::decode(&frame.payload) else {
            return;
        };
        match packet.op {
            ArpOp::Request => {
                let answer = self
                    .mux
                    .arp_answer(packet.target_ip)
                    .or_else(|| self.iface_ips.get(&packet.target_ip).map(|(_, mac)| *mac));
                if let Some(mac) = answer {
                    let reply = ArpPacket::reply_to(&packet, mac);
                    ctx.send_frame(
                        port,
                        EtherFrame::new(packet.sender_mac, mac, EtherType::Arp, reply.encode()),
                    );
                }
            }
            ArpOp::Reply => {
                if vnh::is_global(packet.sender_ip) {
                    self.mux
                        .note_resolution(packet.sender_ip, packet.sender_mac);
                }
            }
        }
    }

    /// RFC 792 time-exceeded, sourced from the ingress interface's address
    /// (the *primary* address, which is exactly why the paper's network
    /// controller repairs address ordering — §5). Deliverable only when the
    /// probe source is an experiment prefix the platform knows.
    fn send_time_exceeded(&mut self, ctx: &mut Ctx<'_>, expired: &IpPacket, ingress: PortId) {
        // RFC 1122 §3.2.2: never answer an ICMP error with another ICMP
        // error — otherwise two misconfigured hops can ping-pong
        // TTL-exceeded-for-TTL-exceeded forever. Informational ICMP (echo
        // probes) still elicits one, which traceroute-over-ICMP needs.
        if expired.header.proto == IpProto::Icmp && icmp_is_error(&expired.payload) {
            self.stats.icmp_suppressed_error += 1;
            self.obs.record(ObsEvent::IcmpSuppressed {
                reason: "error-for-error",
            });
            return;
        }
        let Some((&our_addr, _)) = self.iface_ips.iter().find(|(_, (p, _))| *p == ingress) else {
            return;
        };
        // RFC 1812 §4.3.2.8: bound the error-generation rate per router so
        // a line-rate TTL-expiring flood cannot be amplified into a
        // line-rate ICMP flood toward the (possibly spoofed) source.
        if !self.icmp_bucket.admit(1, ctx.now()) {
            self.stats.icmp_rate_limited += 1;
            self.obs.record(ObsEvent::IcmpSuppressed {
                reason: "rate-limit",
            });
            return;
        }
        let te = IcmpPacket::time_exceeded_for(expired);
        let reply = IpPacket::new(our_addr, expired.header.src, IpProto::Icmp, te.encode());
        match self.mux.deliver_to_experiment(reply.header.dst, None) {
            Some((Egress::Frame { port: out, dst_mac }, _, _)) => {
                let src = self.port_mac(out);
                self.stats.icmp_sent += 1;
                ctx.send_frame(
                    out,
                    EtherFrame::new(dst_mac, src, EtherType::Ipv4, reply.encode()),
                );
            }
            _ => {
                self.stats.no_route += 1;
            }
        }
    }

    /// The plan for one IPv4 frame (which batch it can join).
    fn plan_for(&self, port: PortId, frame: &EtherFrame) -> IpPlan {
        match self.mux.classify(frame.dst) {
            Some(MuxTarget::NeighborTable(nbr)) => IpPlan::Neighbor(nbr),
            // Traffic toward an experiment prefix: from a neighbor (dst is
            // our port MAC), or from the backbone (dst is a delivery MAC).
            Some(MuxTarget::ExperimentDelivery(_)) | None => {
                IpPlan::Delivery(self.ingress_neighbor.get(&(port, frame.src)).copied())
            }
        }
    }

    fn on_ip(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: &EtherFrame) {
        match self.plan_for(port, frame) {
            IpPlan::Neighbor(nbr) => {
                self.forward_via_neighbor(ctx, port, nbr, std::slice::from_ref(frame))
            }
            IpPlan::Delivery(from) => self.deliver_frames(ctx, from, std::slice::from_ref(frame)),
        }
    }

    /// Forward a run of frames that an experiment (or remote PoP) steered
    /// into `nbr`'s table (Fig. 2b steps 8–10). Enforcement, TTL, lookup
    /// and emission run as batch passes — verdicts, stats and the emitted
    /// frame order are identical to handling each frame alone, but the
    /// table selection, FIB sync and wire-egress resolution are paid once.
    fn forward_via_neighbor(
        &mut self,
        ctx: &mut Ctx<'_>,
        port: PortId,
        nbr: NeighborId,
        frames: &[EtherFrame],
    ) {
        // Undecodable frames drop silently, as in the single-frame path.
        let mut pkts: Vec<Option<IpPacket>> = frames
            .iter()
            .map(|f| IpPacket::decode(&f.payload))
            .collect();
        // Data-plane enforcement first: a blocked packet must not consume
        // TTL or trigger resolution. Each decodable packet becomes a
        // header view (ports parsed from the transport header when
        // present) for the enforcement pipeline and the packet programs.
        if let Some(&exp) = self.exp_ports.get(&port) {
            let views: Vec<PacketView> = pkts
                .iter()
                .zip(frames)
                .filter_map(|(p, f)| p.as_ref().map(|p| packet_view(p, f.wire_len())))
                .collect();
            let mut verdicts = std::mem::take(&mut self.verdict_scratch);
            self.data
                .check_egress_batch(exp, &views, Some(nbr), ctx.now(), &mut verdicts);
            let mut vi = 0;
            for p in pkts.iter_mut() {
                let Some(pkt) = p else { continue };
                match verdicts[vi] {
                    DataVerdict::Allow => {}
                    DataVerdict::Transform(rw) => {
                        // Apply the program's header rewrite before TTL
                        // and lookup, so a rewritten destination is
                        // re-routed on its new address.
                        if let Some(ttl) = rw.ttl {
                            pkt.header.ttl = ttl;
                        }
                        if let Some(src) = rw.src {
                            pkt.header.src = src;
                        }
                        if let Some(dst) = rw.dst {
                            pkt.header.dst = dst;
                        }
                        self.stats.data_transformed += 1;
                    }
                    DataVerdict::Block(reason) => {
                        self.stats.data_blocked += 1;
                        self.obs.record(ObsEvent::DataBlocked {
                            experiment: exp.0,
                            reason,
                        });
                        *p = None;
                    }
                }
                vi += 1;
            }
            self.verdict_scratch = verdicts;
        }
        // TTL; expired packets are set aside (their ICMP replies are sent in
        // the emission pass, keeping the single-path frame order) and do not
        // consume a lookup.
        let mut expired: Vec<Option<IpPacket>> = vec![None; pkts.len()];
        let mut dsts: Vec<Ipv4Addr> = Vec::with_capacity(pkts.len());
        for (i, p) in pkts.iter_mut().enumerate() {
            let Some(pkt) = p else { continue };
            if !pkt.decrement_ttl() {
                self.stats.ttl_expired += 1;
                expired[i] = p.take();
                continue;
            }
            dsts.push(pkt.header.dst);
        }
        // One batched lookup for the surviving packets.
        let mut egress = std::mem::take(&mut self.egress_scratch);
        self.mux.egress_via_neighbor_batch(nbr, &dsts, &mut egress);
        // Emission, in original frame order.
        let mut ei = 0;
        for (i, p) in pkts.iter().enumerate() {
            if let Some(ex) = &expired[i] {
                self.send_time_exceeded(ctx, ex, port);
                continue;
            }
            let Some(pkt) = p else { continue };
            match egress[ei] {
                Some(Egress::Frame { port: out, dst_mac }) => {
                    let src = self.port_mac(out);
                    ctx.send_frame(
                        out,
                        EtherFrame::new(dst_mac, src, EtherType::Ipv4, pkt.encode()),
                    );
                }
                Some(Egress::Unresolved {
                    port: out,
                    global_ip,
                }) => {
                    // Trigger resolution; the packet is dropped (the paper's
                    // deployment would also drop pre-ARP).
                    let mac = self.port_mac(out);
                    let req = ArpPacket::request(mac, Ipv4Addr::UNSPECIFIED, global_ip);
                    ctx.send_frame(
                        out,
                        EtherFrame::new(MacAddr::BROADCAST, mac, EtherType::Arp, req.encode()),
                    );
                }
                None => self.stats.no_route += 1,
            }
            ei += 1;
        }
        self.egress_scratch = egress;
    }

    /// Deliver a run of frames toward whatever experiments own their
    /// destinations; `from` names the ingress neighbor (resolved once per
    /// run — it determines the source-MAC rewrite the experiment sees).
    fn deliver_frames(
        &mut self,
        ctx: &mut Ctx<'_>,
        from: Option<NeighborId>,
        frames: &[EtherFrame],
    ) {
        let mut pkts: Vec<Option<IpPacket>> = frames
            .iter()
            .map(|f| IpPacket::decode(&f.payload))
            .collect();
        let mut dsts: Vec<Ipv4Addr> = Vec::with_capacity(pkts.len());
        for p in pkts.iter_mut() {
            let Some(pkt) = p else { continue };
            if !pkt.decrement_ttl() {
                self.stats.ttl_expired += 1;
                *p = None;
                continue;
            }
            dsts.push(pkt.header.dst);
        }
        let mut decisions = std::mem::take(&mut self.delivery_scratch);
        self.mux
            .deliver_to_experiment_batch(&dsts, from, &mut decisions);
        // Ingress serving pipeline: local deliveries toward experiments
        // that opted into ingress policing (uRPF / ingress program / flood
        // budget) are vetted before emission. Experiments that never opted
        // in take the fast path — one `ingress_active` probe per packet,
        // no views, no verdicts. Views are built after the TTL decrement
        // above, so programs see the TTL the experiment would.
        let mut skip: Vec<bool> = Vec::new();
        {
            // (original frame index, delivery index, owner) per policed
            // local delivery; remote deliveries carry the sentinel id and
            // are never policed here (the owning PoP polices them).
            let mut targets: Vec<(usize, usize, ExperimentId)> = Vec::new();
            let mut di = 0usize;
            for (i, p) in pkts.iter().enumerate() {
                if p.is_none() {
                    continue;
                }
                if let Some((_, _, exp)) = decisions[di] {
                    if exp != ExperimentId(u32::MAX) && self.data.ingress_active(exp) {
                        targets.push((i, di, exp));
                    }
                }
                di += 1;
            }
            if !targets.is_empty() {
                skip = vec![false; decisions.len()];
                let mut verdicts = std::mem::take(&mut self.verdict_scratch);
                let mut views: Vec<PacketView> = Vec::new();
                let mut urpf_ok: Vec<bool> = Vec::new();
                let mut any_flood = false;
                let now = ctx.now();
                // Consecutive same-experiment runs share one batch call,
                // mirroring the egress batching.
                let mut start = 0usize;
                while start < targets.len() {
                    let exp = targets[start].2;
                    let mut end = start + 1;
                    while end < targets.len() && targets[end].2 == exp {
                        end += 1;
                    }
                    let run = &targets[start..end];
                    views.clear();
                    for &(i, _, _) in run {
                        let pkt = pkts[i].as_ref().expect("target packets survive");
                        views.push(packet_view(pkt, frames[i].wire_len()));
                    }
                    // uRPF asks the ingress neighbor's own table whether it
                    // covers the claimed source; traffic with no neighbor
                    // context (backbone transit, locally injected) skips it.
                    let urpf = match from {
                        Some(nbr) if self.data.ingress_urpf(exp) => {
                            urpf_ok.clear();
                            for &(i, _, _) in run {
                                let src =
                                    pkts[i].as_ref().expect("target packets survive").header.src;
                                urpf_ok.push(self.mux.source_routable(nbr, src));
                            }
                            Some(urpf_ok.as_slice())
                        }
                        _ => None,
                    };
                    self.data
                        .check_ingress_batch(exp, &views, urpf, now, &mut verdicts);
                    any_flood |= self.data.flood_active(exp);
                    for (k, &(i, di, _)) in run.iter().enumerate() {
                        match verdicts[k] {
                            DataVerdict::Allow => {}
                            DataVerdict::Transform(rw) => {
                                // Ingress rewrites patch headers in place;
                                // the delivery decision is already made, so
                                // a dst rewrite does not re-route.
                                let pkt = pkts[i].as_mut().expect("target packets survive");
                                if let Some(ttl) = rw.ttl {
                                    pkt.header.ttl = ttl;
                                }
                                if let Some(src) = rw.src {
                                    pkt.header.src = src;
                                }
                                if let Some(dst) = rw.dst {
                                    pkt.header.dst = dst;
                                }
                                self.stats.data_transformed += 1;
                            }
                            DataVerdict::Block(reason) => {
                                self.stats.ingress_blocked += 1;
                                self.obs.record(ObsEvent::DataBlocked {
                                    experiment: exp.0,
                                    reason,
                                });
                                skip[di] = true;
                            }
                        }
                    }
                    start = end;
                }
                self.verdict_scratch = verdicts;
                // Flood charges landed in the shared ledger: make sure the
                // gossip/prune tick is running so other PoPs hear about
                // them (and windows eventually expire).
                if any_flood {
                    self.ensure_ledger_timer(ctx);
                }
            }
        }
        for (di, pkt) in pkts.iter().flatten().enumerate() {
            if skip.get(di).copied().unwrap_or(false) {
                continue;
            }
            match decisions[di] {
                Some((Egress::Frame { port: out, dst_mac }, src_rewrite, _exp)) => {
                    let src = src_rewrite.unwrap_or_else(|| self.port_mac(out));
                    ctx.send_frame(
                        out,
                        EtherFrame::new(dst_mac, src, EtherType::Ipv4, pkt.encode()),
                    );
                }
                Some((
                    Egress::Unresolved {
                        port: out,
                        global_ip,
                    },
                    _,
                    _,
                )) => {
                    let mac = self.port_mac(out);
                    let req = ArpPacket::request(mac, Ipv4Addr::UNSPECIFIED, global_ip);
                    ctx.send_frame(
                        out,
                        EtherFrame::new(MacAddr::BROADCAST, mac, EtherType::Arp, req.encode()),
                    );
                }
                None => self.stats.no_route += 1,
            }
        }
        self.delivery_scratch = decisions;
    }

    /// Arm the ledger housekeeping/gossip timer if it is not already
    /// outstanding and the ledger holds state worth ticking for. Armed
    /// lazily (and re-armed only while non-empty) so a platform with no
    /// ledger activity still goes idle.
    fn ensure_ledger_timer(&mut self, ctx: &mut Ctx<'_>) {
        if self.ledger_timer_armed {
            return;
        }
        if self.control.ledger().lock().unwrap().is_empty() {
            return;
        }
        self.ledger_timer_armed = true;
        ctx.set_timer(SimDuration::from_secs(LEDGER_GOSSIP_SECS), TOKEN_LEDGER);
    }

    /// One ledger tick: prune expired day buckets (and flood windows) on
    /// rollover, gossip this PoP's current-day tallies (only when an
    /// AS-wide update budget is configured — without one, remote tallies
    /// are never consulted) and its current-window flood tallies (always,
    /// when present — the ledger cannot see per-experiment flood configs,
    /// and an AS-wide flood limit at any PoP needs every PoP's counts),
    /// then re-arm while the ledger stays non-empty.
    fn on_ledger_timer(&mut self, ctx: &mut Ctx<'_>) {
        self.ledger_timer_armed = false;
        let now = ctx.now();
        let day = RateLedger::day_index(now);
        let window = RateLedger::flood_window(now);
        let ledger = self.control.ledger();
        let mut guard = ledger.lock().unwrap();
        if day > self.last_pruned_day || window > self.last_pruned_window {
            let dropped = guard.prune(now);
            self.last_pruned_day = day;
            self.last_pruned_window = window;
            if dropped > 0 {
                self.obs.record(ObsEvent::LedgerPrune {
                    dropped: dropped as u64,
                });
            }
        }
        let entries = if guard.as_wide_limit().is_some() {
            guard.gossip_entries(self.pop, now)
        } else {
            Vec::new()
        };
        let flood_entries = guard.flood_gossip_entries(self.pop, now);
        let keep_ticking = !guard.is_empty();
        drop(guard);
        if !entries.is_empty() || !flood_entries.is_empty() {
            let payload = encode_ledger_gossip(self.pop, day, &entries, window, &flood_entries);
            let links = self.backbone_links.clone();
            for (port, remote_mac) in links {
                let src = self.port_mac(port);
                ctx.send_frame(
                    port,
                    EtherFrame::new(
                        remote_mac,
                        src,
                        EtherType::Other(LEDGER_ETHERTYPE),
                        payload.clone(),
                    ),
                );
                self.stats.ledger_gossip_tx += 1;
            }
        }
        if keep_ticking {
            self.ledger_timer_armed = true;
            ctx.set_timer(SimDuration::from_secs(LEDGER_GOSSIP_SECS), TOKEN_LEDGER);
        }
    }

    /// Apply one received ledger gossip frame (max-merge; malformed frames
    /// are dropped silently — gossip is advisory, enforcement never
    /// loosens without it).
    fn on_ledger_gossip(&mut self, ctx: &mut Ctx<'_>, frame: &EtherFrame) {
        let Some((origin, day, entries, window, flood_entries)) =
            decode_ledger_gossip(&frame.payload)
        else {
            return;
        };
        if origin == self.pop {
            return;
        }
        self.stats.ledger_gossip_rx += 1;
        {
            let ledger = self.control.ledger();
            let mut guard = ledger.lock().unwrap();
            guard.observe_remote(origin, day, &entries);
            guard.observe_remote_flood(origin, window, &flood_entries);
        }
        self.obs.record(ObsEvent::LedgerGossip {
            from_pop: origin.0,
            entries: (entries.len() + flood_entries.len()) as u32,
        });
        // A receive-only PoP still needs the tick for day-rollover pruning.
        self.ensure_ledger_timer(ctx);
    }

    /// Force-compile the mux's fast-path structures (flat FIBs) and
    /// cross-check them against the source tables they were compiled from.
    /// Returns one line per divergence; the convergence oracle runs this
    /// after chaos quiesces.
    pub fn verify_data_plane(&mut self) -> Vec<String> {
        let pop = self.pop;
        let mut problems: Vec<String> = self
            .mux
            .verify_fast_path()
            .into_iter()
            .map(|p| format!("{pop}: {p}"))
            .collect();
        problems.sort();
        problems
    }
}

/// Decode the header view enforcement (and packet programs) sees for one
/// packet: addresses, protocol, TTL as received, the frame's wire length
/// (what shapers charge), and — for TCP/UDP with enough payload — the
/// transport ports (both headers start `src_port:u16, dst_port:u16`).
fn packet_view(pkt: &IpPacket, wire_len: usize) -> PacketView {
    let (src_port, dst_port) = match pkt.header.proto {
        IpProto::Tcp | IpProto::Udp if pkt.payload.len() >= 4 => (
            u16::from_be_bytes([pkt.payload[0], pkt.payload[1]]),
            u16::from_be_bytes([pkt.payload[2], pkt.payload[3]]),
        ),
        _ => (0, 0),
    };
    PacketView {
        src: IpAddr::V4(pkt.header.src),
        dst: IpAddr::V4(pkt.header.dst),
        proto: pkt.header.proto.to_u8(),
        src_port,
        dst_port,
        len: wire_len as u32,
        ttl: pkt.header.ttl,
    }
}

/// Encode a ledger gossip payload. Fixed header (magic, version, origin
/// PoP, day, entry count) followed by fixed-width update-rate entries,
/// then (since version 2) the flood section: window index, flood entry
/// count, and fixed-width flood entries in the same 26-byte layout.
/// Everything big-endian, entries pre-sorted by the caller so the payload
/// is byte-deterministic.
fn encode_ledger_gossip(
    origin: PopId,
    day: u64,
    entries: &[(ExperimentId, Prefix, u32)],
    window: u64,
    flood_entries: &[(ExperimentId, Prefix, u32)],
) -> Bytes {
    fn put_entries(buf: &mut Vec<u8>, entries: &[(ExperimentId, Prefix, u32)]) {
        for (exp, prefix, used) in entries {
            buf.extend_from_slice(&exp.0.to_be_bytes());
            let (afi, plen, addr) = match prefix {
                Prefix::V4 { addr, len } => {
                    let mut a = [0u8; 16];
                    a[..4].copy_from_slice(&addr.octets());
                    (4u8, *len, a)
                }
                Prefix::V6 { addr, len } => (6u8, *len, addr.octets()),
            };
            buf.push(afi);
            buf.push(plen);
            buf.extend_from_slice(&addr);
            buf.extend_from_slice(&used.to_be_bytes());
        }
    }
    let count = entries.len().min(u16::MAX as usize);
    let fcount = flood_entries.len().min(u16::MAX as usize);
    let mut buf = Vec::with_capacity(29 + (count + fcount) * 26);
    buf.extend_from_slice(&LEDGER_MAGIC.to_be_bytes());
    buf.push(LEDGER_VERSION);
    buf.extend_from_slice(&origin.0.to_be_bytes());
    buf.extend_from_slice(&day.to_be_bytes());
    buf.extend_from_slice(&(count as u16).to_be_bytes());
    put_entries(&mut buf, &entries[..count]);
    buf.extend_from_slice(&window.to_be_bytes());
    buf.extend_from_slice(&(fcount as u16).to_be_bytes());
    put_entries(&mut buf, &flood_entries[..fcount]);
    Bytes::from(buf)
}

/// One decoded gossip tally: how many updates (or flood-window packets)
/// `ExperimentId` spent on `Prefix` at the originating PoP.
type GossipEntry = (ExperimentId, Prefix, u32);

/// Decode a ledger gossip payload; `None` on anything malformed.
#[allow(clippy::type_complexity)]
fn decode_ledger_gossip(
    payload: &[u8],
) -> Option<(PopId, u64, Vec<GossipEntry>, u64, Vec<GossipEntry>)> {
    fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
        if buf.len() < n {
            return None;
        }
        let (head, tail) = buf.split_at(n);
        *buf = tail;
        Some(head)
    }
    fn take_entries(buf: &mut &[u8]) -> Option<Vec<GossipEntry>> {
        let count = u16::from_be_bytes(take(buf, 2)?.try_into().ok()?) as usize;
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let exp = ExperimentId(u32::from_be_bytes(take(buf, 4)?.try_into().ok()?));
            let afi = take(buf, 1)?[0];
            let plen = take(buf, 1)?[0];
            let addr: [u8; 16] = take(buf, 16)?.try_into().ok()?;
            let used = u32::from_be_bytes(take(buf, 4)?.try_into().ok()?);
            let prefix = match afi {
                4 if plen <= 32 => Prefix::V4 {
                    addr: Ipv4Addr::new(addr[0], addr[1], addr[2], addr[3]),
                    len: plen,
                },
                6 if plen <= 128 => Prefix::V6 {
                    addr: addr.into(),
                    len: plen,
                },
                _ => return None,
            };
            entries.push((exp, prefix, used));
        }
        Some(entries)
    }
    let mut buf = payload;
    let magic = u32::from_be_bytes(take(&mut buf, 4)?.try_into().ok()?);
    if magic != LEDGER_MAGIC {
        return None;
    }
    if take(&mut buf, 1)?[0] != LEDGER_VERSION {
        return None;
    }
    let origin = PopId(u32::from_be_bytes(take(&mut buf, 4)?.try_into().ok()?));
    let day = u64::from_be_bytes(take(&mut buf, 8)?.try_into().ok()?);
    let entries = take_entries(&mut buf)?;
    let window = u64::from_be_bytes(take(&mut buf, 8)?.try_into().ok()?);
    let flood_entries = take_entries(&mut buf)?;
    buf.is_empty()
        .then_some((origin, day, entries, window, flood_entries))
}

impl Node for VbgpRouter {
    fn on_frame(&mut self, ctx: &mut Ctx<'_>, port: PortId, frame: EtherFrame) {
        if let Some(events) = self.host.on_frame(ctx, port, &frame) {
            self.process_events(ctx, events);
            return;
        }
        match frame.ethertype {
            EtherType::Arp => self.on_arp(ctx, port, &frame),
            EtherType::Ipv4 => self.on_ip(ctx, port, &frame),
            EtherType::Other(LEDGER_ETHERTYPE) => self.on_ledger_gossip(ctx, &frame),
            _ => {}
        }
    }

    /// Same-instant frames on one port: consecutive IPv4 frames that
    /// classify to the same forwarding plan are handled as one batch;
    /// everything else (BGP transport, ARP) is processed singly, in order.
    /// Plans are computed as each frame is reached, so a control-plane
    /// frame mid-batch still affects the frames behind it.
    fn on_frames(&mut self, ctx: &mut Ctx<'_>, port: PortId, frames: Vec<EtherFrame>) {
        let mut run: Vec<EtherFrame> = Vec::new();
        let mut run_plan: Option<IpPlan> = None;
        for frame in frames {
            let plan = if frame.ethertype == EtherType::Ipv4 {
                Some(self.plan_for(port, &frame))
            } else {
                None
            };
            if plan.is_some() && plan == run_plan {
                run.push(frame);
                continue;
            }
            if let Some(prev) = run_plan.take() {
                match prev {
                    IpPlan::Neighbor(nbr) => self.forward_via_neighbor(ctx, port, nbr, &run),
                    IpPlan::Delivery(from) => self.deliver_frames(ctx, from, &run),
                }
                run.clear();
            }
            match plan {
                Some(p) => {
                    run_plan = Some(p);
                    run.push(frame);
                }
                None => self.on_frame(ctx, port, frame),
            }
        }
        if let Some(prev) = run_plan {
            match prev {
                IpPlan::Neighbor(nbr) => self.forward_via_neighbor(ctx, port, nbr, &run),
                IpPlan::Delivery(from) => self.deliver_frames(ctx, from, &run),
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_>, token: u64) {
        if BgpHost::owns_timer(token) {
            let events = self.host.on_timer(ctx, token);
            self.process_events(ctx, events);
        } else if token == TOKEN_ARP_RETRY {
            self.arp_prefetch(ctx);
        } else if token == TOKEN_LEDGER {
            self.on_ledger_timer(ctx);
        }
    }

    fn label(&self) -> String {
        format!("vbgp-router {} {}", self.pop, self.asn)
    }
}
