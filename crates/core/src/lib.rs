//! # peering-vbgp
//!
//! The paper's core contribution: **vBGP**, a framework that virtualizes the
//! data and control planes of a BGP edge router so that multiple parallel
//! experiments each get control and visibility equivalent to owning the
//! router, while enforcement engines interpose on everything they do (paper
//! §3).
//!
//! The pieces, mapped to the paper:
//!
//! | Module | Paper | What it does |
//! |---|---|---|
//! | [`vnh`] | §3.2.2, §4.4 | Allocates per-neighbor virtual (IP, MAC) pairs from the local `127.65/16` and platform-global `127.127/16` pools |
//! | [`communities`] | §3.2.1 | The control-community scheme experiments use to steer which neighbors receive an announcement |
//! | [`capability`] | §4.7 | The per-experiment capability framework (poisoning, communities, transitive attributes, transit, 6to4) |
//! | [`enforcement`] | §3.3, §4.7 | Control-plane and data-plane enforcement engines, decoupled from the routing engine, stateful, fail-closed |
//! | [`transport`] | §2.2 | BGP-over-simulated-Ethernet session transport shared by vBGP routers, experiments and synthetic Internet ASes |
//! | [`mux`] | §3.2.2 | The data-plane mux: destination-MAC classification onto per-neighbor tables, ARP responder for virtual next hops, source-MAC rewriting toward experiments |
//! | [`policies`] | §3.2, §4.4 | Generated speaker policies: per-neighbor next-hop rewrites on import, community steering + control-community stripping on export, global↔local pool mapping across the backbone |
//! | [`router`] | §3 | [`router::VbgpRouter`]: the complete virtualized edge router as a simulator node |
//!
//! ```
//! use peering_vbgp::{ControlCommunities, NeighborId};
//!
//! // The §3.2.1 steering interface: experiments label announcements with
//! // control communities to pick which neighbors hear them.
//! let cc = ControlCommunities::new(47065);
//! let only_n3 = vec![cc.announce_to(NeighborId(3))];
//! assert!(cc.allows_export(&only_n3, NeighborId(3)));
//! assert!(!cc.allows_export(&only_n3, NeighborId(5)));
//! assert!(cc.allows_export(&[], NeighborId(5))); // no steering → everyone
//! ```

#![warn(missing_docs)]

pub mod capability;
pub mod communities;
pub mod enforcement;
pub mod fasthash;
pub mod ids;
pub mod mux;
pub mod policies;
pub mod router;
pub mod transport;
pub mod vnh;

pub use capability::{CapabilityKind, CapabilitySet, Grant};
pub use communities::ControlCommunities;
pub use enforcement::control::{ControlEnforcer, ExperimentPolicy, Rejection};
pub use enforcement::data::{DataEnforcer, DataVerdict};
pub use fasthash::{FastHashMap, FxHasher};
pub use ids::{ExperimentId, NeighborId, PopId};
pub use mux::{Delivery, Egress, MuxTarget, VbgpMux};
pub use router::{
    BackboneConfig, ExperimentConfig, NeighborConfig, NeighborKind, RemoteNeighbor, VbgpRouter,
};
pub use transport::{BgpHost, HostEvent, ETHERTYPE_BGP};
pub use vnh::{VnhAllocator, GLOBAL_POOL, LOCAL_POOL};
